#!/usr/bin/env python
"""Calibrating a grid simulation with surrogate workloads (the paper's Fig. 2 setting).

The paper motivates surrogate models as a safe source of workload for
optimising job allocation and for calibrating event-based simulations of the
distributed computing system.  This example demonstrates exactly that loop:

1. build a synthetic PanDA trace and hold out a test window,
2. train TabDDPM on the training split and sample a synthetic workload,
3. drive the discrete-event grid simulator with (a) the real held-out jobs
   and (b) the synthetic jobs, under three brokerage policies,
4. report how close the synthetic-driven simulation tracks the real one
   (wait times, utilisation) — i.e. whether the surrogate is good enough to
   stand in for real data when evaluating scheduling policies.

Run with:  python examples/scheduler_calibration.py
"""

from repro.experiments import ExperimentConfig, build_dataset, fig2_scheduler_comparison
from repro.experiments.table1 import build_model
from repro.utils.rng import derive_seed


def main() -> None:
    config = ExperimentConfig.ci()
    data = build_dataset(config)
    print(f"dataset: {data.n_train} train rows, {data.n_test} test rows")

    model = build_model("tabddpm", config)
    model.fit(data.train)
    synthetic = model.sample(data.n_test, seed=derive_seed(config.seed, "scheduler-example"))
    print(f"sampled {len(synthetic)} synthetic jobs from {model.name}")

    result = fig2_scheduler_comparison(config, dataset=data, synthetic=synthetic)
    rows = result["rows"]

    keys = ["workload", "broker", "completed", "mean_wait_h", "p95_wait_h", "mean_utilization"]
    print()
    print(" ".join(f"{k:>18}" for k in keys))
    for row in rows:
        print(" ".join(f"{str(row[k]):>18}" for k in keys))

    # Pair up real vs synthetic per broker and report the calibration gap.
    print()
    print("Real-vs-synthetic calibration gap per brokerage policy:")
    real = {r["broker"]: r for r in rows if r["workload"] == "real"}
    synth = {r["broker"]: r for r in rows if r["workload"] == "synthetic"}
    for broker in real:
        if broker not in synth:
            continue
        wait_gap = abs(real[broker]["mean_wait_h"] - synth[broker]["mean_wait_h"])
        util_gap = abs(real[broker]["mean_utilization"] - synth[broker]["mean_utilization"])
        print(f"  {broker:<14} wait-time gap {wait_gap:7.3f} h   utilisation gap {util_gap:6.4f}")


if __name__ == "__main__":
    main()
