#!/usr/bin/env python
"""Privacy audit of surrogate models: DCR distributions and near-duplicates.

The paper's headline reason to prefer TabDDPM over SMOTE is privacy: SMOTE's
interpolated records sit almost on top of real training records (tiny
Distance-to-Closest-Record), which would leak user activity if the synthetic
trace were shared.  This example digs one level deeper than Table I's single
DCR number:

* the full DCR distribution (mean, median, 5th percentile) per model,
* the fraction of synthetic rows whose nearest real record is closer than a
  tight threshold ("near-duplicates"),
* the fraction of exact duplicates.

Run with:  python examples/privacy_audit.py
"""

import numpy as np

from repro.experiments import ExperimentConfig, build_dataset
from repro.experiments.table1 import build_model, _DISPLAY_NAMES
from repro.metrics.privacy import duplicate_fraction, nearest_record_distances
from repro.utils.rng import derive_seed


def main() -> None:
    config = ExperimentConfig.ci()
    data = build_dataset(config)
    n_synthetic = min(data.n_train, 2000)
    print(f"auditing on {data.n_train} training rows, {n_synthetic} synthetic rows per model")
    print()

    header = f"{'model':<14} {'DCR mean':>10} {'DCR median':>11} {'DCR p05':>9} {'near-dup %':>11} {'exact-dup %':>12}"
    print(header)
    print("-" * len(header))

    for name in ("smote", "tvae", "ctabgan+", "tabddpm"):
        display = _DISPLAY_NAMES[name]
        model = build_model(name, config)
        model.fit(data.train)
        synthetic = model.sample(n_synthetic, seed=derive_seed(config.seed, "privacy", name))

        distances = nearest_record_distances(data.train, synthetic)
        scale = np.sqrt(len(data.train.columns))
        distances = distances / scale
        near_dup = float(np.mean(distances < 0.01)) * 100.0
        exact_dup = duplicate_fraction(data.train, synthetic) * 100.0
        print(
            f"{display:<14} {distances.mean():>10.4f} {np.median(distances):>11.4f} "
            f"{np.percentile(distances, 5):>9.4f} {near_dup:>10.1f}% {exact_dup:>11.2f}%"
        )

    print()
    print("Reading: SMOTE shows the smallest distances and the largest near-duplicate")
    print("fraction — high fidelity, poor privacy.  TabDDPM keeps a healthy distance")
    print("from the training data while (see Table I) matching its distribution.")


if __name__ == "__main__":
    main()
