#!/usr/bin/env python
"""Quickstart: generate a synthetic PanDA trace, train a surrogate, evaluate it.

This is the 2-minute tour of the library:

1. generate a small synthetic ATLAS/PanDA job stream (the stand-in for the
   paper's real 150-day trace) and run the Fig.-3(b) filtering pipeline,
2. split it 80/20,
3. fit the TabDDPM surrogate (the paper's recommended model) with a small
   training budget,
4. sample a synthetic table and print the five Table-I metrics.

Run with:  python examples/quickstart.py
"""

from repro import GeneratorConfig, PandaWorkloadGenerator, create_surrogate
from repro.metrics import evaluate_surrogate_data, format_table
from repro.models.tabddpm import TabDDPMConfig, TabDDPMSurrogate
from repro.tabular import train_test_split


def main() -> None:
    # 1. Synthetic PanDA trace (raw records -> filter funnel -> 9-column table).
    generator = PandaWorkloadGenerator(GeneratorConfig(n_jobs=8000, seed=11))
    table = generator.generate_training_table()
    print(f"filtered job table: {table.n_rows} rows x {table.n_columns} columns")
    for row in table.profile():
        print(f"  {row['name']:<18} {row['kind']:<12} unique={row['n_unique']}")

    # 2. 80/20 split, as in the paper.
    train, test = train_test_split(table, test_fraction=0.2, seed=11)
    print(f"train={len(train)}  test={len(test)}")

    # 3. Fit TabDDPM with a laptop-scale budget.
    model = TabDDPMSurrogate(
        TabDDPMConfig(n_timesteps=50, hidden_dims=(128,), epochs=15, batch_size=256),
        seed=0,
    )
    model.fit(train)
    print(f"trained {model.name}: {model._denoiser.n_parameters()} parameters")

    # 4. Sample and evaluate.
    synthetic = model.sample(len(train), seed=1)
    score = evaluate_surrogate_data("TabDDPM", train, test, synthetic)
    print()
    print(format_table([score]))

    # Baseline for comparison: SMOTE, the non-learning interpolator.
    smote = create_surrogate("smote")
    smote.fit(train)
    smote_score = evaluate_surrogate_data("SMOTE", train, test, smote.sample(len(train), seed=2))
    print()
    print(format_table([score, smote_score]))
    print()
    print("Note how SMOTE's DCR (higher is better for privacy) is far lower: its")
    print("samples interpolate directly between real records.")


if __name__ == "__main__":
    main()
