#!/usr/bin/env python
"""Serving tour: register a fitted surrogate, then serve it sharded.

The production story of the repo in one script:

1. fit a TVAE surrogate on a synthetic PanDA trace (offline, once),
2. register the snapshot in a :class:`~repro.serve.ModelRegistry` — the
   registry warm-starts the packed serving caches, so the first request
   after a (re)start costs the same as the thousandth,
3. serve a burst of concurrent requests through a
   :class:`~repro.serve.SamplingService`: requests queued together coalesce
   into one sharded pass over the worker pool (micro-batching), each request
   keeps its own seed, and throughput/latency come back from ``stats()``,
4. demonstrate the sharding contract: the bytes of a request depend only on
   ``(seed, chunk_size)`` — re-serving the same request on a different
   worker count returns the identical table.

Run with:  python examples/serving_throughput.py
(Set REPRO_WORKERS to pin the worker count; it defaults to the CPUs the
process may actually use.)
"""

import time

from repro import GeneratorConfig, PandaWorkloadGenerator
from repro.models.tvae import TVAEConfig, TVAESurrogate
from repro.serve import ModelRegistry, SamplingService, ShardedSampler
from repro.tabular import train_test_split

CHUNK_SIZE = 8_192
REQUESTS = 8
ROWS_PER_REQUEST = 25_000


def main() -> None:
    # 1. Offline: data + training (serving never retrains in the request path).
    generator = PandaWorkloadGenerator(GeneratorConfig(n_jobs=8000, seed=11))
    train, _test = train_test_split(generator.generate_training_table(), 0.2, seed=11)
    model = TVAESurrogate(
        TVAEConfig(latent_dim=16, hidden_dims=(64,), epochs=10, batch_size=256), seed=0
    ).fit(train)
    print(f"fitted {model.name} on {len(train)} rows")

    # 2. Register the snapshot (versioned, caches warm-started).
    registry = ModelRegistry("registry-demo", warm_chunk_rows=CHUNK_SIZE)
    version = registry.register("tvae-demo", model)
    print(f"registered tvae-demo {version} at {registry.path_of('tvae-demo', version)}")

    # 3. Serve a burst of concurrent requests.  ``submit`` returns handles
    #    immediately; requests queued together share one sharded pool pass.
    with SamplingService(
        registry.get("tvae-demo"), chunk_size=CHUNK_SIZE, max_inflight_rows=500_000
    ) as service:
        start = time.perf_counter()
        requests = [
            service.submit(ROWS_PER_REQUEST, seed=1000 + i, sampling_mode="fast")
            for i in range(REQUESTS)
        ]
        tables = [request.result() for request in requests]
        elapsed = time.perf_counter() - start
        stats = service.stats()
        total = sum(len(t) for t in tables)
        print(
            f"served {total:,d} rows in {elapsed:.2f}s with {service.workers} worker(s): "
            f"{total / elapsed:,.0f} rows/s"
        )
        print(
            f"  latency p50 {stats.p50_latency * 1e3:.1f} ms / "
            f"p95 {stats.p95_latency * 1e3:.1f} ms, queue depth {stats.queue_depth}"
        )

    # 4. The sharding contract: worker count never changes the bytes.
    reference = None
    for workers in (1, 2):
        with ShardedSampler(model, workers=workers, chunk_size=CHUNK_SIZE) as sampler:
            table = sampler.sample(30_000, seed=42, sampling_mode="fast")
        if reference is None:
            reference = table
        else:
            assert table == reference, "sharding must not change the output bytes"
    print("sharding contract holds: 1-worker and 2-worker outputs are identical")


if __name__ == "__main__":
    main()
