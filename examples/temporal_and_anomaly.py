#!/usr/bin/env python
"""Beyond Table I: temporal fidelity and diffusion-based anomaly detection.

The paper's conclusion lists three follow-up directions; this example runs the
two that the library implements as extensions:

1. **Temporal structure** (limitation 1): does the synthetic trace reproduce
   the daily/weekly periodicity and weekend suppression of the real stream?
   (`repro.analysis.temporal`)
2. **Anomaly detection** (limitation 2): a fitted TabDDPM scores how far each
   record sits from the learned data manifold, flagging records with broken
   cross-feature structure.  (`repro.analysis.anomaly`)

Run with:  python examples/temporal_and_anomaly.py
"""

import numpy as np

from repro.analysis.anomaly import DiffusionAnomalyDetector
from repro.analysis.temporal import TemporalProfile, compare_temporal_profiles
from repro.experiments import ExperimentConfig, build_dataset
from repro.experiments.table1 import build_model
from repro.tabular.table import Table


def main() -> None:
    config = ExperimentConfig.ci()
    data = build_dataset(config)
    print(f"dataset: {data.n_train} train rows over {config.n_days:.0f} days")

    # -- 1. temporal fidelity -------------------------------------------------
    model = build_model("tabddpm", config)
    model.fit(data.train)
    synthetic = model.sample(data.n_train, seed=11)

    real_profile = TemporalProfile.from_times(np.asarray(data.train["creationtime"]))
    print()
    print("Real stream temporal profile:")
    print(f"  dominant periods (days): {[round(p, 2) for p in real_profile.dominant_periods_days]}")
    print(f"  weekend suppression:     {real_profile.weekend_suppression:.2f}")

    comparison = compare_temporal_profiles(data.train, synthetic)
    print()
    print("Synthetic (TabDDPM) vs real temporal structure:")
    for key, value in comparison.items():
        print(f"  {key:<35} {value:.3f}")

    # -- 2. anomaly detection -------------------------------------------------
    detector = DiffusionAnomalyDetector(model, n_repeats=2, seed=0)
    detector.calibrate(data.train.sample(min(500, data.n_train), seed=3))

    inliers = data.test.head(200)
    rng = np.random.default_rng(0)
    broken = Table(
        {c: np.asarray(inliers[c])[rng.permutation(len(inliers))] for c in inliers.columns},
        inliers.schema,
    )
    inlier_scores = detector.score(inliers)
    broken_scores = detector.score(broken)
    print()
    print("Diffusion anomaly scores (higher = more anomalous):")
    print(f"  held-out real records:       mean {inlier_scores.mean():.3f}")
    print(f"  column-permuted records:     mean {broken_scores.mean():.3f}")
    flags = detector.is_anomalous(broken, percentile=95.0)
    print(f"  flagged at the 95th pct:     {flags.mean() * 100:.1f}% of permuted records")


if __name__ == "__main__":
    main()
