#!/usr/bin/env python
"""Full model comparison: regenerate the paper's Table I on a synthetic trace.

Trains all four surrogates from the paper (TVAE, CTABGAN+, SMOTE, TabDDPM)
plus the Gaussian-copula extra baseline on the same training split, samples
from each, and prints the Table-I metric grid together with the per-metric
model ranking the paper derives from it.

Run with:  python examples/surrogate_comparison.py [--fast]
"""

import argparse

from repro.experiments import ExperimentConfig, run_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use the CI-sized preset (a couple of minutes) instead of the default laptop-scale run",
    )
    parser.add_argument(
        "--with-copula",
        action="store_true",
        help="also evaluate the Gaussian copula extra baseline",
    )
    args = parser.parse_args()

    config = ExperimentConfig.ci() if args.fast else ExperimentConfig.default()
    if args.with_copula:
        config = config.with_models(tuple(config.models) + ("copula",))

    result = run_table1(config, verbose=True)
    print()
    print(result["formatted"])
    print()
    print("Per-metric ranking (best first):")
    for metric, order in result["ranks"].items():
        print(f"  {metric:>10}: {' > '.join(order)}")
    print()
    print("Training / sampling time per model:")
    for model, timing in result["timings"].items():
        print(f"  {model:<14} fit {timing['fit_seconds']:7.1f}s   sample {timing['sample_seconds']:6.1f}s")


if __name__ == "__main__":
    main()
