#!/usr/bin/env python
"""Observability tour: trace a served request end to end, then export it.

The ``repro.obs`` story in one script:

1. fit a cheap surrogate and serve a few mixed-tenant requests through a
   :class:`~repro.serve.SamplingService` with a
   :class:`~repro.obs.tracing.Tracer` installed,
2. walk one request's span tree — ``request`` → ``admission`` /
   ``queue_wait`` / ``dispatch`` / ``chunk[i]`` → ``attempt[j]`` →
   ``worker_compute`` / ``shm_encode`` / ``shm_decode`` / ``assemble`` /
   ``deliver`` — and show the identity trick that stitched it together:
   trace and span IDs hash the request seed's ``SeedSequence`` identity,
   so worker-side spans land under the parent trace with no context
   header crossing the pool,
3. export the whole run as Chrome ``trace_event`` JSON — open
   ``tracing_demo_trace.json`` at https://ui.perfetto.dev to see every
   worker process as its own lane under the shared timeline,
4. print the Prometheus text page the same run produced (the ``/metrics``
   surface the front door serves in production).

Run with:  python examples/tracing_demo.py
"""

import numpy as np

from repro.models.smote import SMOTESurrogate
from repro.obs.tracing import Tracer, trace_id_from_seed
from repro.serve import RequestSpec, SamplingService
from repro.tabular.schema import TableSchema
from repro.tabular.table import Table

CHUNK_SIZE = 2_048
ROWS_PER_REQUEST = 8_192
TRACE_PATH = "tracing_demo_trace.json"


def training_table(n=4_000, seed=11) -> Table:
    rng = np.random.default_rng(seed)
    data = {
        "cpu_hours": rng.lognormal(2.0, 1.0, n),
        "input_gb": rng.lognormal(1.0, 1.2, n),
        "site": rng.choice([f"site{i:02d}" for i in range(12)], n),
        "status": rng.choice(["finished", "failed", "cancelled"], n, p=[0.8, 0.15, 0.05]),
    }
    return Table(
        data,
        TableSchema.from_columns(
            numerical=["cpu_hours", "input_gb"], categorical=["site", "status"]
        ),
    )


def main() -> None:
    model = SMOTESurrogate(k_neighbors=5).fit(training_table())
    tracer = Tracer()

    # 1. Serve a small mixed-tenant burst with tracing on.  Tracing never
    #    changes the served bytes (tests/test_obs_serving.py asserts it) —
    #    it only records where each request's time went.
    with SamplingService(
        model, workers=2, chunk_size=CHUNK_SIZE, tracer=tracer
    ) as service:
        handles = [
            service.submit(
                RequestSpec(
                    ROWS_PER_REQUEST,
                    seed=100 + i,
                    tenant=("analysis", "production")[i % 2],
                    priority=("interactive", "batch")[i % 2],
                )
            )
            for i in range(4)
        ]
        for handle in handles:
            handle.result()
        metrics_text = service.metrics.render_prometheus()
    print(f"served {len(handles)} requests, recorded {len(tracer)} spans")

    # 2. Walk the first request's tree.  Its trace ID is a pure function of
    #    the request seed — anyone holding seed 100 can find this trace.
    trace = trace_id_from_seed(100)
    spans = tracer.traces()[trace]
    print(f"\ntrace {trace} (request seed=100): {len(spans)} spans")
    by_id = {span.span_id: span for span in spans}
    for span in spans:
        depth = 0
        parent = span.parent_id
        while parent in by_id:
            depth += 1
            parent = by_id[parent].parent_id
        origin = "worker" if span.name in ("worker_compute", "shm_encode") else "parent"
        print(
            f"  {'  ' * depth}{span.name:<16} {span.duration * 1e3:8.3f} ms "
            f"[{origin} pid {span.pid}]"
        )

    # 3. Export for Perfetto.  *.json selects the Chrome trace_event format;
    #    a .jsonl path would write one JSON object per span instead.
    exported = tracer.export(TRACE_PATH)
    print(f"\nwrote {exported} spans to {TRACE_PATH} — open it at https://ui.perfetto.dev")

    # 4. The same run's metrics, as the /metrics page would serve them.
    wanted = ("repro_serve_requests_total", "repro_serve_rows_total")
    print("\nmetrics (excerpt of the Prometheus text page):")
    for line in metrics_text.splitlines():
        if line.startswith(wanted):
            print(f"  {line}")


if __name__ == "__main__":
    main()
