"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that ``pip install -e .`` keeps working on environments whose setuptools
predates full PEP 660 editable-install support (and without the ``wheel``
package available offline), via the legacy ``--no-use-pep517`` path.
"""

from setuptools import setup

setup()
