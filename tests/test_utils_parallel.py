"""Tests for repro.utils.parallel."""

import os

import pytest

from repro.utils.parallel import (
    WORKERS_ENV,
    WorkerPool,
    WorkerPoolBroken,
    available_workers,
    parallel_map,
    visible_cpus,
)


def _square(x):
    return x * x


class TestVisibleCpus:
    def test_prefers_affinity_mask(self):
        # On Linux the affinity mask is the container/CI truth; elsewhere the
        # helper falls back to cpu_count.
        if hasattr(os, "sched_getaffinity"):
            assert visible_cpus() == max(1, len(os.sched_getaffinity(0)))
        else:
            assert visible_cpus() == (os.cpu_count() or 1)

    def test_at_least_one(self):
        assert visible_cpus() >= 1


class TestAvailableWorkers:
    def test_default_is_visible_budget(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert available_workers(None) == visible_cpus()

    def test_requested_capped(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert available_workers(10_000) <= visible_cpus()

    def test_at_least_one(self):
        assert available_workers(0) >= 1

    def test_env_override_is_the_budget(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert available_workers(None) == 3
        assert available_workers(2) == 2
        # The override is an explicit operator decision: it is not capped by
        # the visible CPUs (CI forces 2 on one-core runners).
        assert available_workers(8) == 3

    def test_env_override_floor_is_one(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert available_workers(None) == 1

    def test_invalid_env_override_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            available_workers(None)


class TestParallelMap:
    def test_serial_matches_map(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=1) == [x * x for x in items]

    def test_preserves_order(self):
        items = [5, 3, 1, 4]
        assert parallel_map(_square, items, workers=1) == [25, 9, 1, 16]

    def test_empty_input(self):
        assert parallel_map(_square, [], workers=1) == []

    def test_single_item_short_circuits(self):
        assert parallel_map(_square, [7], workers=4) == [49]

    def test_multiprocess_matches_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        items = list(range(8))
        expected = [x * x for x in items]
        assert parallel_map(_square, items, workers=2) == expected

    def test_accepts_generator_input(self):
        assert parallel_map(_square, (i for i in range(4)), workers=1) == [0, 1, 4, 9]


def _pool_init(value):
    global _POOL_PAYLOAD
    _POOL_PAYLOAD = value * 2


def _pool_task(x):
    return _POOL_PAYLOAD + x


def _failing_init():
    raise RuntimeError("worker init boom")


class TestWorkerPool:
    def test_initializer_runs_per_worker(self):
        with WorkerPool(2, initializer=_pool_init, initargs=(21,)) as pool:
            futures = [pool.submit(_pool_task, i) for i in range(6)]
            assert sorted(f.result() for f in futures) == [42 + i for i in range(6)]

    def test_start_is_eager_and_idempotent(self):
        pool = WorkerPool(2, initializer=_pool_init, initargs=(0,))
        assert not pool.is_running
        assert pool.start() is pool
        assert pool.is_running
        assert pool.start() is pool
        pool.close()
        assert not pool.is_running
        pool.close()  # idempotent

    def test_submit_lazily_starts(self):
        pool = WorkerPool(1, initializer=_pool_init, initargs=(1,))
        try:
            assert pool.submit(_pool_task, 0).result() == 2
            assert pool.is_running
        finally:
            pool.close()

    def test_initializer_failure_surfaces_at_start(self):
        pool = WorkerPool(1, initializer=_failing_init)
        with pytest.raises(Exception):
            pool.start()
        pool.close()

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="at least 1"):
            WorkerPool(0)


def _die_once(latch_path):
    """Crash the worker the first time only (a cross-process once-latch)."""
    try:
        fd = os.open(latch_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return os.getpid()
    os.close(fd)
    os._exit(87)


def _die_always():
    os._exit(87)


class TestWorkerPoolSupervision:
    """A worker death must cost a restart, never a queued task."""

    def test_crash_recovers_and_resubmits_queued_tasks(self, tmp_path):
        latch = str(tmp_path / "crash.latch")
        with WorkerPool(2, initializer=_pool_init, initargs=(21,)) as pool:
            doomed = pool.submit(_die_once, latch)
            queued = [pool.submit(_pool_task, i) for i in range(6)]
            # The crash poisons the whole executor; supervision rebuilds it,
            # re-runs the initializer and replays every unresolved future.
            assert doomed.result(timeout=60) > 0
            assert sorted(f.result(timeout=60) for f in queued) == [
                42 + i for i in range(6)
            ]
            assert pool.restarts >= 1
            assert not pool.is_broken
            # The pool stays serviceable after recovery.
            assert pool.submit(_pool_task, 100).result(timeout=60) == 142

    def test_resubmission_counter_records_replays(self, tmp_path):
        latch = str(tmp_path / "replay.latch")
        with WorkerPool(2) as pool:
            doomed = pool.submit(_die_once, latch)
            assert doomed.result(timeout=60) > 0
            assert doomed.resubmissions >= 1

    def test_restart_budget_exhaustion_breaks_the_pool(self):
        pool = WorkerPool(2, max_restarts=0)
        try:
            future = pool.submit(_die_always)
            with pytest.raises(WorkerPoolBroken):
                future.result(timeout=60)
            assert pool.is_broken
            with pytest.raises(WorkerPoolBroken):
                pool.submit(_square, 3)
            with pytest.raises(WorkerPoolBroken):
                pool.start()
        finally:
            pool.close()

    def test_close_resets_the_broken_state(self):
        pool = WorkerPool(2, max_restarts=0)
        try:
            with pytest.raises(WorkerPoolBroken):
                pool.submit(_die_always).result(timeout=60)
            assert pool.is_broken
            pool.close()
            assert not pool.is_broken
            # A fresh start after close is a brand-new supervision budget.
            assert pool.submit(_square, 4).result(timeout=60) == 16
        finally:
            pool.close()

    def test_rejects_negative_restart_budget(self):
        with pytest.raises(ValueError, match="max_restarts"):
            WorkerPool(1, max_restarts=-1)
