"""Tests for repro.utils.parallel."""

import os

from repro.utils.parallel import available_workers, parallel_map


def _square(x):
    return x * x


class TestAvailableWorkers:
    def test_default_is_cpu_count(self):
        assert available_workers(None) == (os.cpu_count() or 1)

    def test_requested_capped(self):
        assert available_workers(10_000) <= (os.cpu_count() or 1)

    def test_at_least_one(self):
        assert available_workers(0) >= 1


class TestParallelMap:
    def test_serial_matches_map(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=1) == [x * x for x in items]

    def test_preserves_order(self):
        items = [5, 3, 1, 4]
        assert parallel_map(_square, items, workers=1) == [25, 9, 1, 16]

    def test_empty_input(self):
        assert parallel_map(_square, [], workers=1) == []

    def test_single_item_short_circuits(self):
        assert parallel_map(_square, [7], workers=4) == [49]

    def test_multiprocess_matches_serial(self):
        items = list(range(8))
        expected = [x * x for x in items]
        assert parallel_map(_square, items, workers=2) == expected

    def test_accepts_generator_input(self):
        assert parallel_map(_square, (i for i in range(4)), workers=1) == [0, 1, 4, 9]
