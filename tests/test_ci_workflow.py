"""Validate the hosted CI pipeline definition.

The workflow file is executable configuration: a malformed document or a
renamed job silently disables the test/perf/lint gates, so tier-1 keeps a
structural check on it.  PyYAML is optional everywhere else, hence the
import guard.
"""

import os

import pytest

yaml = pytest.importorskip("yaml")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
WORKFLOW = os.path.join(REPO_ROOT, ".github", "workflows", "ci.yml")


@pytest.fixture(scope="module")
def workflow():
    with open(WORKFLOW, "r", encoding="utf-8") as fh:
        document = yaml.safe_load(fh)
    assert isinstance(document, dict)
    return document


class TestWorkflowDocument:
    def test_file_exists(self):
        assert os.path.exists(WORKFLOW)

    def test_triggers_on_push_and_pull_request(self, workflow):
        # PyYAML parses the bare `on:` key as boolean True.
        triggers = workflow.get("on", workflow.get(True))
        assert "pull_request" in triggers
        assert "push" in triggers

    def test_has_separate_lint_test_and_perf_jobs(self, workflow):
        jobs = workflow["jobs"]
        assert {"lint", "tests", "perf-gate"} <= set(jobs)

    def test_test_job_runs_python_matrix(self, workflow):
        matrix = workflow["jobs"]["tests"]["strategy"]["matrix"]
        assert matrix["python-version"] == ["3.10", "3.11", "3.12"]

    def test_test_job_runs_pytest(self, workflow):
        steps = workflow["jobs"]["tests"]["steps"]
        commands = " ".join(step.get("run", "") for step in steps)
        assert "pytest" in commands

    def test_test_job_gates_serving_and_degenerate_suites(self, workflow):
        steps = workflow["jobs"]["tests"]["steps"]
        commands = " ".join(step.get("run", "") for step in steps)
        for suite in ("tests/test_serving_modes.py", "tests/test_degenerate_inputs.py"):
            assert suite in commands
            assert os.path.exists(os.path.join(REPO_ROOT, suite))

    def test_test_job_gates_serve_suites_with_forced_workers(self, workflow):
        # The serve suites run as their own named step with REPRO_WORKERS=2,
        # so the multi-process sharding path is exercised on hosted runners
        # regardless of how many CPUs they expose.
        steps = workflow["jobs"]["tests"]["steps"]
        serve_steps = [
            step
            for step in steps
            if "tests/test_serve_sharded.py" in step.get("run", "")
            and "tests/test_serve_service.py" in step.get("run", "")
        ]
        assert serve_steps, "no named step runs the tests/test_serve*.py suites"
        env = serve_steps[0].get("env") or {}
        assert str(env.get("REPRO_WORKERS")) == "2"
        for suite in ("tests/test_serve_sharded.py", "tests/test_serve_service.py"):
            assert os.path.exists(os.path.join(REPO_ROOT, suite))

    def test_test_job_gates_shm_transport_with_forced_workers(self, workflow):
        # The shm transport suite runs as its own named step with the
        # transport forced on (REPRO_SHM=1) and REPRO_WORKERS=2: transport
        # invariance and segment hygiene only mean anything when the
        # shared-memory path genuinely carries the chunks of a real pool.
        steps = workflow["jobs"]["tests"]["steps"]
        shm_steps = [
            step for step in steps if "tests/test_serve_shm.py" in step.get("run", "")
        ]
        assert shm_steps, "no named step runs tests/test_serve_shm.py"
        step = shm_steps[0]
        assert step.get("name"), "the shm transport step must be named"
        assert "tests/test_serve_sharded.py" in step["run"]
        env = step.get("env") or {}
        assert str(env.get("REPRO_SHM")) == "1"
        assert str(env.get("REPRO_WORKERS")) == "2"
        assert env.get("PYTHONPATH") == "src"
        assert os.path.exists(os.path.join(REPO_ROOT, "tests", "test_serve_shm.py"))

    def test_test_job_gates_fault_injection_with_forced_workers(self, workflow):
        # The chaos suite must run as its own named step with REPRO_WORKERS=2:
        # supervision, retry/timeout/hedging and degraded mode only mean
        # anything over a real multi-process pool.
        steps = workflow["jobs"]["tests"]["steps"]
        fault_steps = [
            step for step in steps if "tests/test_serve_faults.py" in step.get("run", "")
        ]
        assert fault_steps, "no named step runs tests/test_serve_faults.py"
        assert fault_steps[0].get("name"), "the fault-injection step must be named"
        env = fault_steps[0].get("env") or {}
        assert str(env.get("REPRO_WORKERS")) == "2"
        assert os.path.exists(os.path.join(REPO_ROOT, "tests", "test_serve_faults.py"))

    def test_test_job_runs_scenario_smoke_with_forced_workers(self, workflow):
        # One short fixed-seed chaos-drift scenario runs through the real
        # CLI as its own named step: the full drift -> retrain -> canary ->
        # promote loop plus a worker kill, on every matrix version, with
        # REPRO_WORKERS=2 forcing the genuine multi-process recovery path.
        steps = workflow["jobs"]["tests"]["steps"]
        scenario_steps = [
            step
            for step in steps
            if "repro.experiments.cli scenario" in step.get("run", "")
        ]
        assert scenario_steps, "no named step runs the scenario smoke"
        step = scenario_steps[0]
        assert step.get("name"), "the scenario smoke step must be named"
        assert "chaos-drift" in step["run"]
        assert "--seed" in step["run"], "the smoke must pin its seed"
        env = step.get("env") or {}
        assert str(env.get("REPRO_WORKERS")) == "2"
        assert env.get("PYTHONPATH") == "src"

    def test_test_job_runs_front_door_smoke_with_forced_workers(self, workflow):
        # The async front door runs end to end as its own named step: the
        # HTTP endpoint over a live service, 200 mixed-tenant requests
        # replayed through POST /sample, every remote fingerprint asserted
        # byte-identical to the in-process table (the CLI exits nonzero on
        # a mismatch).  REPRO_WORKERS=2 forces the real pool underneath.
        steps = workflow["jobs"]["tests"]["steps"]
        smoke_steps = [
            step
            for step in steps
            if "repro.experiments.cli serve" in step.get("run", "")
            and "--http" in step.get("run", "")
        ]
        assert smoke_steps, "no named step runs the HTTP front-door smoke"
        step = smoke_steps[0]
        assert step.get("name"), "the front-door smoke step must be named"
        assert "--requests 200" in step["run"]
        assert "--json" in step["run"]
        env = step.get("env") or {}
        assert str(env.get("REPRO_WORKERS")) == "2"
        assert env.get("PYTHONPATH") == "src"

    def test_front_door_smoke_scrapes_metrics(self, workflow):
        # The smoke also scrapes GET /metrics over the live endpoint and
        # validates the Prometheus text page (the CLI exits nonzero when a
        # required repro_serve_* series is missing or the content type is
        # wrong), so the exposition surface is exercised on every push.
        steps = workflow["jobs"]["tests"]["steps"]
        smoke_steps = [
            step
            for step in steps
            if "repro.experiments.cli serve" in step.get("run", "")
            and "--http" in step.get("run", "")
        ]
        assert smoke_steps, "no named step runs the HTTP front-door smoke"
        assert "--check-metrics" in smoke_steps[0]["run"]

    def test_perf_gate_required_kernels_cover_the_serving_stack(self):
        # The committed baseline must keep measuring the serving kernels: a
        # refactor that silently drops them should fail the perf gate, not
        # shrink its coverage.
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_regression", os.path.join(REPO_ROOT, "benchmarks", "check_regression.py")
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert {
            "serve_sharded_tvae",
            "serve_sharded_tabddpm",
            "serve_sharded_tvae_faulty",
            "serve_front_door",
            "encode_categorical_codes",
            "serve_sharded_shm",
            "serve_traced",
        } <= module.REQUIRED_KERNELS
        import json

        with open(os.path.join(REPO_ROOT, "benchmarks", "BENCH_hotpaths.json")) as fh:
            baseline = json.load(fh)
        recorded = {rec["kernel"] for rec in baseline["records"]}
        assert module.REQUIRED_KERNELS <= recorded

    def test_perf_baseline_records_shm_ipc_bytes_reduction(self):
        # The committed baseline is also the transport's data-movement
        # contract: every serve_sharded_shm record carries the bytes one
        # chunk moves over the pool pipe, and the shm envelope must be at
        # least 5x smaller than the pickled chunk table it replaced.
        import json

        with open(os.path.join(REPO_ROOT, "benchmarks", "BENCH_hotpaths.json")) as fh:
            baseline = json.load(fh)
        by_variant = {}
        for rec in baseline["records"]:
            if rec["kernel"] == "serve_sharded_shm":
                assert "ipc_bytes_per_chunk" in rec.get("extra", {}), rec
                by_variant.setdefault(rec["variant"], []).append(rec["extra"]["ipc_bytes_per_chunk"])
        assert by_variant.get("seed") and by_variant.get("optimized")
        assert max(by_variant["optimized"]) * 5 <= min(by_variant["seed"])

    def test_perf_baseline_bounds_tracing_overhead(self):
        # The committed baseline is the observability plane's cost contract:
        # the serve_traced kernel times the identical serving request with
        # and without a Tracer installed, and the traced path must stay
        # within 5% of the untraced one.
        import json

        with open(os.path.join(REPO_ROOT, "benchmarks", "BENCH_hotpaths.json")) as fh:
            baseline = json.load(fh)
        by_variant = {}
        for rec in baseline["records"]:
            if rec["kernel"] == "serve_traced":
                by_variant[rec["variant"]] = rec
        assert by_variant.get("seed") and by_variant.get("optimized")
        untraced = by_variant["seed"]["seconds"]
        traced = by_variant["optimized"]["seconds"]
        assert untraced * 1.05 >= traced, (
            f"tracing overhead exceeds 5%: untraced {untraced:.4f}s vs traced {traced:.4f}s"
        )
        # The baseline also documents the span volume one request produces.
        assert by_variant["optimized"]["extra"]["spans_per_request"] > 0

    def test_perf_gate_runs_benchmarks_ci_with_loose_factor(self, workflow):
        steps = workflow["jobs"]["perf-gate"]["steps"]
        commands = " ".join(step.get("run", "") for step in steps)
        assert "benchmarks.ci" in commands
        assert "--factor" in commands

    def test_perf_gate_writes_job_summary(self, workflow):
        steps = workflow["jobs"]["perf-gate"]["steps"]
        commands = " ".join(step.get("run", "") for step in steps)
        assert "GITHUB_STEP_SUMMARY" in commands

    def test_lint_job_runs_ruff_check_and_format(self, workflow):
        steps = workflow["jobs"]["lint"]["steps"]
        commands = " ".join(step.get("run", "") for step in steps)
        assert "ruff check" in commands
        assert "ruff format --check" in commands

    def test_jobs_use_pip_caching(self, workflow):
        cached = 0
        for job in workflow["jobs"].values():
            for step in job["steps"]:
                with_block = step.get("with") or {}
                if with_block.get("cache") == "pip":
                    cached += 1
        assert cached >= 2

    def test_requirements_file_exists(self):
        path = os.path.join(REPO_ROOT, ".github", "workflows", "requirements-ci.txt")
        assert os.path.exists(path)
