"""Tests for repro.tabular.transforms, including round-trip property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tabular.transforms import (
    GaussianQuantileTransform,
    IdentityTransform,
    LogTransform,
    MinMaxScaler,
    StandardScaler,
    TransformPipeline,
)

finite_columns = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=5, max_value=200),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
)


class TestIdentityTransform:
    def test_roundtrip(self):
        x = np.array([1.0, -2.0, 3.5])
        tf = IdentityTransform().fit(x)
        np.testing.assert_array_equal(tf.inverse_transform(tf.transform(x)), x)

    def test_returns_copy(self):
        x = np.array([1.0, 2.0])
        out = IdentityTransform().fit(x).transform(x)
        out[0] = 99.0
        assert x[0] == 1.0


class TestStandardScaler:
    def test_zero_mean_unit_std(self):
        x = np.random.default_rng(0).normal(5.0, 3.0, size=500)
        z = StandardScaler().fit_transform(x)
        assert abs(z.mean()) < 1e-9
        assert abs(z.std() - 1.0) < 1e-9

    def test_roundtrip(self):
        x = np.array([3.0, 7.0, -1.0, 4.0])
        tf = StandardScaler().fit(x)
        np.testing.assert_allclose(tf.inverse_transform(tf.transform(x)), x)

    def test_constant_column_safe(self):
        x = np.full(10, 2.0)
        z = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(z))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.array([1.0]))

    @given(finite_columns)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, x):
        tf = StandardScaler().fit(x)
        np.testing.assert_allclose(tf.inverse_transform(tf.transform(x)), x, rtol=1e-9, atol=1e-6)


class TestMinMaxScaler:
    def test_range(self):
        x = np.array([2.0, 4.0, 8.0])
        z = MinMaxScaler().fit_transform(x)
        assert z.min() == 0.0 and z.max() == 1.0

    def test_custom_range(self):
        x = np.array([0.0, 1.0])
        z = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(x)
        np.testing.assert_allclose(z, [-1.0, 1.0])

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 0.0))

    def test_roundtrip(self):
        x = np.array([5.0, -2.0, 9.0, 0.0])
        tf = MinMaxScaler().fit(x)
        np.testing.assert_allclose(tf.inverse_transform(tf.transform(x)), x)

    def test_constant_column_safe(self):
        z = MinMaxScaler().fit_transform(np.full(5, 3.0))
        assert np.all(np.isfinite(z))


class TestLogTransform:
    def test_positive_data_roundtrip(self):
        x = np.array([1.0, 10.0, 100.0, 1000.0])
        tf = LogTransform().fit(x)
        np.testing.assert_allclose(tf.inverse_transform(tf.transform(x)), x, rtol=1e-9)

    def test_handles_zero_and_negative(self):
        x = np.array([-5.0, 0.0, 5.0])
        tf = LogTransform().fit(x)
        z = tf.transform(x)
        assert np.all(np.isfinite(z))
        np.testing.assert_allclose(tf.inverse_transform(z), x, atol=1e-6)

    def test_compresses_tail(self):
        x = np.array([1.0, 1e9])
        z = LogTransform().fit_transform(x)
        assert z[1] - z[0] < 25.0


class TestGaussianQuantileTransform:
    def test_output_is_roughly_standard_normal(self):
        x = np.random.default_rng(0).exponential(5.0, size=2000)
        z = GaussianQuantileTransform().fit_transform(x)
        assert abs(np.mean(z)) < 0.1
        assert 0.8 < np.std(z) < 1.2

    def test_monotonicity(self):
        x = np.random.default_rng(1).lognormal(0.0, 2.0, size=500)
        tf = GaussianQuantileTransform().fit(x)
        sorted_x = np.sort(x)
        z = tf.transform(sorted_x)
        assert np.all(np.diff(z) >= -1e-12)

    def test_roundtrip_within_range(self):
        x = np.random.default_rng(2).normal(10.0, 3.0, size=800)
        tf = GaussianQuantileTransform().fit(x)
        recovered = tf.inverse_transform(tf.transform(x))
        # Round trip is exact up to interpolation error away from the extremes.
        inner = (x > np.quantile(x, 0.01)) & (x < np.quantile(x, 0.99))
        np.testing.assert_allclose(recovered[inner], x[inner], rtol=0.05, atol=0.1)

    def test_out_of_range_clipped(self):
        x = np.linspace(0.0, 1.0, 100)
        tf = GaussianQuantileTransform().fit(x)
        z = tf.transform(np.array([-10.0, 10.0]))
        assert np.all(np.isfinite(z))

    def test_inverse_maps_prior_samples_into_data_range(self):
        x = np.random.default_rng(3).gamma(2.0, 3.0, size=500)
        tf = GaussianQuantileTransform().fit(x)
        samples = tf.inverse_transform(np.random.default_rng(4).standard_normal(200))
        assert samples.min() >= x.min() - 1e-9
        assert samples.max() <= x.max() + 1e-9

    def test_constant_column(self):
        x = np.full(50, 7.0)
        tf = GaussianQuantileTransform().fit(x)
        z = tf.transform(x)
        assert np.all(np.isfinite(z))
        np.testing.assert_allclose(tf.inverse_transform(z), x)

    def test_requires_two_quantiles(self):
        with pytest.raises(ValueError):
            GaussianQuantileTransform(n_quantiles=1)

    @given(finite_columns)
    @settings(max_examples=25, deadline=None)
    def test_transform_always_finite(self, x):
        tf = GaussianQuantileTransform(n_quantiles=100).fit(x)
        assert np.all(np.isfinite(tf.transform(x)))


class TestTransformPipeline:
    def test_compose_roundtrip(self):
        x = np.random.default_rng(5).lognormal(2.0, 1.0, size=300)
        pipeline = TransformPipeline([LogTransform(), StandardScaler()])
        pipeline.fit(x)
        np.testing.assert_allclose(pipeline.inverse_transform(pipeline.transform(x)), x, rtol=1e-6)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            TransformPipeline([])

    def test_order_matters(self):
        x = np.array([1.0, 10.0, 100.0])
        log_then_scale = TransformPipeline([LogTransform(), MinMaxScaler()]).fit(x).transform(x)
        assert log_then_scale.max() == pytest.approx(1.0)
