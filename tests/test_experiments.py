"""Tests for the experiment harness (configs, dataset bundle, Table I, figures,
ablations and the CLI)."""

import dataclasses
import json

import numpy as np
import pytest

from repro.experiments.ablations import ablate_smote_k
from repro.experiments.cli import main as cli_main
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import build_dataset
from repro.experiments.figures import (
    fig1_data_volume,
    fig2_scheduler_comparison,
    fig3_dataset_profile,
    fig4_distributions,
    fig5_correlations,
)
from repro.experiments.table1 import build_model, run_table1
from repro.models.smote import SMOTESurrogate
from repro.models.tabddpm import TabDDPMSurrogate
from repro.models.tvae import TVAESurrogate


@pytest.fixture(scope="module")
def tiny_config():
    base = ExperimentConfig.ci()
    return dataclasses.replace(
        base,
        n_raw_jobs=2500,
        n_synthetic=500,
        models=("smote",),
        mlef=dataclasses.replace(base.mlef, n_estimators=10),
    )


@pytest.fixture(scope="module")
def tiny_dataset(tiny_config):
    return build_dataset(tiny_config)


class TestConfig:
    def test_presets_exist(self):
        assert ExperimentConfig.ci().n_raw_jobs < ExperimentConfig.default().n_raw_jobs
        assert ExperimentConfig.paper_scale().n_raw_jobs > 1_000_000

    def test_with_models(self):
        config = ExperimentConfig.ci().with_models(["smote"])
        assert config.models == ("smote",)

    def test_build_model_dispatch(self):
        config = ExperimentConfig.ci()
        assert isinstance(build_model("tvae", config), TVAESurrogate)
        assert isinstance(build_model("smote", config), SMOTESurrogate)
        assert isinstance(build_model("tabddpm", config), TabDDPMSurrogate)

    def test_build_model_seeds_differ_per_model(self):
        config = ExperimentConfig.ci()
        a = build_model("tvae", config)
        b = build_model("tabddpm", config)
        assert a._seed != b._seed


class TestDatasetBundle:
    def test_bundle_consistency(self, tiny_dataset):
        assert tiny_dataset.n_train + tiny_dataset.n_test == len(tiny_dataset.table)
        assert tiny_dataset.filter_report.final_records == len(tiny_dataset.table)
        assert len(tiny_dataset.raw) == 2500

    def test_deterministic_given_config(self, tiny_config):
        a = build_dataset(tiny_config)
        b = build_dataset(tiny_config)
        assert a.table == b.table
        assert a.train == b.train


class TestTable1:
    def test_smoke_single_model(self, tiny_config, tiny_dataset):
        result = run_table1(tiny_config, dataset=tiny_dataset, compute_mlef=True)
        scores = result["scores"]
        assert len(scores) == 1
        score = scores[0]
        assert score.model == "SMOTE"
        assert 0.0 <= score.wd < 0.5
        assert 0.0 <= score.jsd < 0.5
        assert np.isfinite(score.diff_mlef)
        assert "SMOTE" in result["formatted"]
        assert result["ranks"]["WD"][0] == "SMOTE"
        assert result["timings"]["SMOTE"]["fit_seconds"] >= 0.0

    def test_skip_mlef(self, tiny_config, tiny_dataset):
        result = run_table1(tiny_config, dataset=tiny_dataset, compute_mlef=False)
        assert np.isnan(result["scores"][0].diff_mlef)


class TestFigures:
    def test_fig1_series(self, tiny_config, tiny_dataset):
        series = fig1_data_volume(tiny_config, dataset=tiny_dataset)
        assert np.all(np.diff(series["cumulative_bytes"]) >= 0)
        assert series["total_petabytes"][0] > 0

    def test_fig2_rows(self, tiny_config, tiny_dataset):
        result = fig2_scheduler_comparison(
            tiny_config, dataset=tiny_dataset, brokers=("random", "least_loaded"), max_jobs=300
        )
        rows = result["rows"]
        assert len(rows) == 2
        assert {r["broker"] for r in rows} == {"random", "least_loaded"}
        assert all(r["workload"] == "real" for r in rows)

    def test_fig2_with_synthetic(self, tiny_config, tiny_dataset):
        synthetic = SMOTESurrogate().fit(tiny_dataset.train).sample(300, seed=0)
        result = fig2_scheduler_comparison(
            tiny_config, dataset=tiny_dataset, synthetic=synthetic,
            brokers=("least_loaded",), max_jobs=300,
        )
        labels = {r["workload"] for r in result["rows"]}
        assert labels == {"real", "synthetic"}

    def test_fig3_profile_and_funnel(self, tiny_config, tiny_dataset):
        result = fig3_dataset_profile(tiny_config, dataset=tiny_dataset)
        names = {row["name"] for row in result["profile"]}
        assert {"workload", "computingsite", "datatype"} <= names
        funnel_rows = [r["rows"] for r in result["funnel"]]
        assert funnel_rows[0] == 2500
        assert all(a >= b for a, b in zip(funnel_rows, funnel_rows[1:]))

    def test_fig4_structure(self, tiny_config, tiny_dataset):
        synthetic = {"SMOTE": SMOTESurrogate().fit(tiny_dataset.train).sample(400, seed=1)}
        result = fig4_distributions(tiny_config, dataset=tiny_dataset, synthetic_tables=synthetic)
        assert set(result["numerical"]) == set(tiny_dataset.train.schema.numerical)
        assert set(result["categorical"]) == set(tiny_dataset.train.schema.categorical)
        series = result["numerical"]["workload"]["SMOTE"]
        assert series["real"].shape == series["synthetic"].shape

    def test_fig5_structure(self, tiny_config, tiny_dataset):
        synthetic = {"SMOTE": SMOTESurrogate().fit(tiny_dataset.train).sample(400, seed=2)}
        result = fig5_correlations(tiny_config, dataset=tiny_dataset, synthetic_tables=synthetic)
        k = len(result["columns"])
        assert result["ground_truth"].shape == (k, k)
        assert result["models"]["SMOTE"]["difference"].shape == (k, k)
        assert result["models"]["SMOTE"]["diff_corr"] >= 0.0


class TestAblations:
    def test_smote_k_sweep(self, tiny_config, tiny_dataset):
        rows = ablate_smote_k(tiny_config, tiny_dataset, ks=(1, 5))
        assert len(rows) == 2
        assert rows[0]["k"] == 1.0 and rows[1]["k"] == 5.0
        assert all(np.isfinite(row["WD"]) for row in rows)


class TestCLI:
    def test_fig3_text_output(self, capsys):
        exit_code = cli_main(["fig3", "--preset", "ci", "--raw-jobs", "2000", "--seed", "1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "filtering funnel" in out.lower()
        assert "workload" in out

    def test_fig1_json_output(self, capsys):
        exit_code = cli_main(["fig1", "--preset", "ci", "--raw-jobs", "2000", "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "cumulative_bytes" in payload

    def test_table1_smoke(self, capsys):
        exit_code = cli_main(
            ["table1", "--preset", "ci", "--raw-jobs", "2000", "--models", "smote", "--no-mlef"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "SMOTE" in out and "WD" in out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["table7"])
