"""The front door's contract: one RequestSpec, many doors, same bytes.

Four layers, bottom up:

* :class:`RequestSpec` — the unified request contract every entry point
  accepts (validation, JSON payload parsing, the ``rows`` alias);
* the deprecation shim — the legacy positional ``submit(n, seed=...)``
  surface warns but returns byte-identical tables;
* :class:`BackendRouter` — least-loaded placement across named backends,
  pinning, slot release;
* :class:`FrontDoor` — multi-backend routing plus the stdlib HTTP
  endpoint: a served table round-trips through JSON byte-identically
  (same fingerprint), admission rejections surface as ``429`` with a
  ``Retry-After`` header, malformed requests as ``400``.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.models.tvae import TVAEConfig, TVAESurrogate
from repro.scheduler.broker import BackendRouter
from repro.serve import (
    PRIORITY_CLASSES,
    AdmissionPolicy,
    FrontDoor,
    RequestSpec,
    SamplingService,
    priority_weight,
    table_fingerprint,
)
from repro.tabular.schema import TableSchema
from repro.tabular.table import Table

CHUNK = 50


def _table(n=400, seed=29):
    rng = np.random.default_rng(seed)
    data = {
        "x": rng.normal(size=n) * 3.0,
        "cat": rng.choice(["a", "b", "c"], n),
        "site": rng.choice([f"s{i}" for i in range(9)], n),
    }
    return Table(
        data, TableSchema.from_columns(numerical=["x"], categorical=["cat", "site"])
    )


@pytest.fixture(scope="module")
def tvae():
    return TVAESurrogate(TVAEConfig.fast(), seed=5).fit(_table())


@pytest.fixture(scope="module")
def service(tvae):
    with SamplingService(tvae, workers=2, chunk_size=CHUNK) as svc:
        yield svc


def _post(address, path, payload, timeout=30.0):
    host, port = address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read().decode("utf-8")), response.headers


def _get(address, path, timeout=30.0):
    host, port = address
    with urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=timeout) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestRequestSpec:
    def test_defaults_and_weight(self):
        spec = RequestSpec(100, seed=7)
        assert (spec.sampling_mode, spec.tenant, spec.priority) == ("fast", "default", "normal")
        assert spec.deadline is None
        assert spec.weight == PRIORITY_CLASSES["normal"].weight == 2
        assert priority_weight("interactive") == 4
        assert priority_weight("batch") == 1
        with pytest.raises(KeyError, match="interactive"):
            priority_weight("urgent")

    def test_validation(self):
        with pytest.raises(ValueError, match="negative"):
            RequestSpec(-1)
        with pytest.raises(ValueError, match="sampling mode"):
            RequestSpec(10, sampling_mode="warp")
        with pytest.raises(ValueError, match="tenant"):
            RequestSpec(10, tenant="")
        with pytest.raises(ValueError, match="priority"):
            RequestSpec(10, priority="urgent")
        with pytest.raises(ValueError, match="deadline"):
            RequestSpec(10, deadline=0.0)

    def test_from_payload_accepts_rows_alias_and_rejects_unknown_keys(self):
        spec = RequestSpec.from_payload(
            {"rows": 64, "seed": 3, "tenant": "acme", "priority": "batch", "deadline": 2.5}
        )
        assert spec == RequestSpec(64, seed=3, tenant="acme", priority="batch", deadline=2.5)
        with pytest.raises(ValueError, match="unknown request field"):
            RequestSpec.from_payload({"n": 10, "rws": 10})
        with pytest.raises(ValueError, match="'n'"):
            RequestSpec.from_payload({"seed": 1})

    def test_to_dict_round_trips_through_from_payload(self):
        spec = RequestSpec(128, seed=11, sampling_mode="exact", tenant="t0", priority="interactive")
        assert RequestSpec.from_payload(spec.to_dict()) == spec


class TestDeprecationShim:
    def test_positional_submit_warns_and_serves_identical_bytes(self, service):
        spec = RequestSpec(120, seed=13, sampling_mode="fast")
        reference = service.sample(spec)
        with pytest.warns(DeprecationWarning, match="RequestSpec"):
            handle = service.submit(120, 13, "fast")
        assert handle.result() == reference
        # The keyword convenience form is supported, not deprecated.
        assert service.sample(120, seed=13, sampling_mode="fast") == reference

    def test_positional_sample_warns_and_serves_identical_bytes(self, service):
        reference = service.sample(RequestSpec(90, seed=17))
        with pytest.warns(DeprecationWarning, match="RequestSpec"):
            legacy = service.sample(90, 17)
        assert legacy == reference
        assert table_fingerprint(legacy) == table_fingerprint(reference)


class TestBackendRouter:
    def test_least_loaded_spreads_and_release_rebalances(self):
        router = BackendRouter({"prod": 1, "canary": 1})
        first = router.acquire(rows=100)
        second = router.acquire(rows=100)
        assert {first, second} == {"prod", "canary"}
        assert router.load() == {"prod": 1, "canary": 1}
        router.release(first)
        assert router.load()[first] == 0
        # The freed backend is the least loaded again.
        assert router.acquire(rows=100) == first

    def test_pinning_counts_load_and_unknown_names_raise(self):
        router = BackendRouter({"prod": 2, "canary": 2})
        for _ in range(3):
            assert router.acquire(backend="canary") == "canary"
        assert router.load() == {"prod": 0, "canary": 3}
        # Unpinned traffic avoids the loaded backend.
        assert router.acquire() == "prod"
        with pytest.raises(KeyError):
            router.acquire(backend="staging")

    def test_release_is_idempotent_at_idle(self):
        router = BackendRouter({"prod": 1})
        router.release("prod")  # nothing held: stays idle, no underflow
        assert router.load() == {"prod": 0}


class TestFrontDoor:
    def test_routing_never_changes_bytes(self, tvae, service):
        with SamplingService(tvae, workers=1, chunk_size=CHUNK) as canary:
            door = FrontDoor({"prod": service, "canary": canary})
            assert door.models == ["prod", "canary"]
            spec = RequestSpec(110, seed=23)
            direct = service.sample(spec)
            assert door.sample(spec, model="prod") == direct
            assert door.sample(spec, model="canary") == direct
            assert door.sample(spec) == direct  # broker-routed, same bytes
            door.close()

    def test_stats_tree_and_unknown_model(self, service):
        door = FrontDoor(service)
        door.sample(RequestSpec(60, seed=3, tenant="acme"))
        tree = door.stats()
        assert set(tree) == {"models", "router"}
        model_tree = tree["models"]["default"]
        for key in ("throughput", "queue", "latency", "workers", "faults", "admission", "tenants"):
            assert key in model_tree, f"stats tree missing {key!r}"
        assert "acme" in model_tree["tenants"]
        assert tree["router"]["in_flight"] == {"default": 0}
        with pytest.raises(KeyError, match="unknown model"):
            door.submit(RequestSpec(10), model="nope")
        door.close()


class TestHttpEndpoint:
    @pytest.fixture(scope="class")
    def door(self, service):
        door = FrontDoor({"prod": service})
        door.start_http()
        yield door
        door.stop_http()

    def test_sample_round_trips_byte_identically(self, door, service):
        spec = RequestSpec(80, seed=41, tenant="acme", priority="interactive")
        status, payload, _ = _post(door.address, "/sample", dict(spec.to_dict(), model="prod"))
        assert status == 200
        local = service.sample(spec)
        assert payload["rows"] == local.n_rows
        assert payload["model"] == "prod"
        assert payload["tenant"] == "acme"
        assert payload["fingerprint"] == table_fingerprint(local)
        # Rebuilding the table from the JSON columns reproduces the bytes.
        rebuilt = Table(
            {name: np.asarray(values) for name, values in payload["columns"].items()},
            local.schema,
        )
        assert table_fingerprint(rebuilt) == payload["fingerprint"]

    def test_fingerprint_only_omits_columns(self, door, service):
        spec = RequestSpec(70, seed=5)
        status, payload, _ = _post(
            door.address, "/sample", dict(spec.to_dict(), fingerprint_only=True)
        )
        assert status == 200
        assert "columns" not in payload
        assert payload["fingerprint"] == table_fingerprint(service.sample(spec))

    def test_rows_alias_matches_n(self, door):
        status_n, by_n, _ = _post(
            door.address, "/sample", {"n": 40, "seed": 9, "fingerprint_only": True}
        )
        status_rows, by_rows, _ = _post(
            door.address, "/sample", {"rows": 40, "seed": 9, "fingerprint_only": True}
        )
        assert status_n == status_rows == 200
        assert by_n["fingerprint"] == by_rows["fingerprint"]

    def test_get_routes(self, door):
        status, health = _get(door.address, "/healthz")
        assert (status, health["status"]) == (200, "ok")
        status, models = _get(door.address, "/models")
        assert status == 200
        assert models["models"]["prod"]["workers"] == 2
        status, stats = _get(door.address, "/stats")
        assert status == 200
        assert "prod" in stats["models"]
        assert "in_flight" in stats["router"]

    def test_error_statuses(self, door):
        with pytest.raises(urllib.error.HTTPError) as bad_spec:
            _post(door.address, "/sample", {"n": 10, "bogus_knob": 1})
        assert bad_spec.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as bad_model:
            _post(door.address, "/sample", {"n": 10, "model": "nope"})
        assert bad_model.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as not_found:
            _get(door.address, "/no-such-route")
        assert not_found.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as wrong_method:
            _get(door.address, "/sample")
        assert wrong_method.value.code == 405

    def test_admission_rejection_maps_to_429_with_retry_after(self, tvae):
        # max_queue_depth=0 rejects every request up front: the clean way to
        # exercise the 429 path without racing a real backlog.
        with SamplingService(
            tvae,
            workers=1,
            chunk_size=CHUNK,
            admission=AdmissionPolicy(max_queue_depth=0),
        ) as svc:
            door = FrontDoor({"prod": svc})
            door.start_http()
            try:
                with pytest.raises(urllib.error.HTTPError) as rejected:
                    _post(door.address, "/sample", {"n": 10, "seed": 1})
                assert rejected.value.code == 429
                assert int(rejected.value.headers["Retry-After"]) >= 1
                body = json.loads(rejected.value.read().decode("utf-8"))
                assert body["reason"] == "queue_depth"
                # The slot the rejected request briefly held was released.
                assert door.stats()["router"]["in_flight"] == {"prod": 0}
            finally:
                door.stop_http()

    def test_stop_http_is_idempotent_and_restartable(self, service):
        door = FrontDoor({"prod": service})
        first = door.start_http()
        door.stop_http()
        door.stop_http()
        second = door.start_http()
        assert first != second or first[1] != 0  # fresh ephemeral bind
        status, health = _get(door.address, "/healthz")
        assert status == 200 and health["models"] == ["prod"]
        door.stop_http()
