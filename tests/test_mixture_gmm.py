"""Tests for the 1-D Gaussian mixture model and k-means initialiser."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mixture.gmm import GaussianMixture, kmeans_1d


@pytest.fixture()
def bimodal():
    rng = np.random.default_rng(0)
    return np.concatenate([rng.normal(-5.0, 0.5, 800), rng.normal(5.0, 0.5, 800)])


class TestKMeans1D:
    def test_finds_two_clusters(self, bimodal):
        centers = kmeans_1d(bimodal, 2)
        assert centers.size == 2
        assert centers[0] < 0 < centers[1]
        assert abs(centers[0] + 5.0) < 0.5
        assert abs(centers[1] - 5.0) < 0.5

    def test_k_capped_by_unique_values(self):
        centers = kmeans_1d(np.array([1.0, 1.0, 2.0]), 10)
        assert centers.size <= 2

    def test_sorted_output(self, bimodal):
        centers = kmeans_1d(bimodal, 4)
        assert np.all(np.diff(centers) >= 0)

    def test_single_cluster(self):
        centers = kmeans_1d(np.array([3.0, 3.1, 2.9]), 1)
        assert centers.size == 1
        assert abs(centers[0] - 3.0) < 0.2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.array([]), 2)


class TestGaussianMixtureFitting:
    def test_recovers_bimodal_means(self, bimodal):
        gmm = GaussianMixture(n_components=5, seed=0).fit(bimodal)
        means = np.sort(gmm.params_.means)
        # The two dominant components should sit near ±5.
        assert np.any(np.abs(means + 5.0) < 0.5)
        assert np.any(np.abs(means - 5.0) < 0.5)

    def test_weights_sum_to_one(self, bimodal):
        gmm = GaussianMixture(n_components=4, seed=0).fit(bimodal)
        assert gmm.params_.weights.sum() == pytest.approx(1.0)

    def test_prunes_low_weight_components(self):
        # 97% of the mass in one tight mode, 3% in another: with a 10% weight
        # threshold the minor component(s) must be pruned away.
        rng = np.random.default_rng(3)
        data = np.concatenate([rng.normal(0.0, 0.1, 970), rng.normal(8.0, 0.1, 30)])
        gmm = GaussianMixture(n_components=2, weight_threshold=0.10, seed=0).fit(data)
        assert gmm.n_active_components == 1

    def test_pruning_keeps_weights_normalised(self, bimodal):
        gmm = GaussianMixture(n_components=10, weight_threshold=0.02, seed=0).fit(bimodal)
        assert gmm.n_active_components <= 10
        assert gmm.params_.weights.sum() == pytest.approx(1.0)

    def test_single_component_data(self):
        data = np.random.default_rng(1).normal(2.0, 1.0, 500)
        gmm = GaussianMixture(n_components=3, seed=0).fit(data)
        assert abs(gmm.params_.means[np.argmax(gmm.params_.weights)] - 2.0) < 0.3

    def test_constant_data_safe(self):
        gmm = GaussianMixture(n_components=3, seed=0).fit(np.full(100, 4.0))
        assert gmm.n_active_components == 1
        assert np.isfinite(gmm.params_.stds).all()

    def test_invalid_components(self):
        with pytest.raises(ValueError):
            GaussianMixture(n_components=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GaussianMixture().responsibilities(np.array([1.0]))

    def test_log_likelihood_improves_over_bad_model(self, bimodal):
        good = GaussianMixture(n_components=4, seed=0).fit(bimodal)
        single = GaussianMixture(n_components=1, seed=0).fit(bimodal)
        assert good.log_likelihood(bimodal) > single.log_likelihood(bimodal)


class TestGaussianMixtureInference:
    def test_responsibilities_rows_sum_to_one(self, bimodal):
        gmm = GaussianMixture(n_components=4, seed=0).fit(bimodal)
        resp = gmm.responsibilities(bimodal[:100])
        np.testing.assert_allclose(resp.sum(axis=1), 1.0, rtol=1e-9)

    def test_predict_component_separates_modes(self, bimodal):
        gmm = GaussianMixture(n_components=2, seed=0).fit(bimodal)
        low = gmm.predict_component(np.array([-5.0]))[0]
        high = gmm.predict_component(np.array([5.0]))[0]
        assert low != high

    def test_sample_component_deterministic_with_rng(self, bimodal):
        gmm = GaussianMixture(n_components=3, seed=0).fit(bimodal)
        a = gmm.sample_component(bimodal[:50], np.random.default_rng(1))
        b = gmm.sample_component(bimodal[:50], np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_samples_cover_both_modes(self, bimodal):
        gmm = GaussianMixture(n_components=3, seed=0).fit(bimodal)
        draws = gmm.sample(2000, np.random.default_rng(2))
        assert (draws < 0).mean() > 0.3
        assert (draws > 0).mean() > 0.3

    def test_normalize_denormalize_roundtrip(self, bimodal):
        gmm = GaussianMixture(n_components=3, seed=0).fit(bimodal)
        values = bimodal[:200]
        comp = gmm.predict_component(values)
        alpha = gmm.normalize(values, comp)
        recovered = gmm.denormalize(alpha, comp)
        # Exact unless the value was clipped at ±1 (beyond 4 sigma of its mode).
        not_clipped = np.abs(alpha) < 1.0
        np.testing.assert_allclose(recovered[not_clipped], values[not_clipped], rtol=1e-9)

    def test_normalize_clips_to_unit_interval(self, bimodal):
        gmm = GaussianMixture(n_components=2, seed=0).fit(bimodal)
        alpha = gmm.normalize(np.array([100.0]), np.array([0]))
        assert -1.0 <= alpha[0] <= 1.0

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_fit_never_produces_invalid_parameters(self, k):
        rng = np.random.default_rng(k)
        data = rng.lognormal(0.0, 1.0, size=300)
        gmm = GaussianMixture(n_components=k, seed=k).fit(data)
        assert np.all(gmm.params_.stds > 0)
        assert np.all(gmm.params_.weights > 0)
        assert gmm.params_.weights.sum() == pytest.approx(1.0)
