"""The scenario engine's acceptance contract (repro.scenarios).

The headline test runs the ``chaos-drift`` proving-ground scenario —
gradual drift plus worker kills armed mid-traffic — twice at one seed and
asserts the two :meth:`ScenarioReport.deterministic_dict` cores are
*identical*, that the full drift -> retrain -> canary -> promote timeline
happened, and that not a single request was lost, degraded or cancelled
while workers were being killed.  The rest of the module covers the
deterministic building blocks: the catalog, the window/traffic streams and
the report fingerprint.
"""

import json

import numpy as np
import pytest

from repro.metrics.distribution import DriftConfig
from repro.scenarios import (
    DriftPhase,
    ScenarioEngine,
    ScenarioSpec,
    TrafficModel,
    WindowStream,
    get_scenario,
    scenario_names,
    table_fingerprint,
)
from repro.panda.generator import GeneratorConfig

#: The CI smoke's scaling of the proving-ground scenario: short horizon,
#: small windows, kills still armed inside the drift/retrain region.
CHAOS_DRIFT_SMALL = get_scenario("chaos-drift").scaled(
    ticks=8,
    window_rows=256,
    train_rows=1024,
    canary_rows=512,
    fault_arm_ticks=(3,),
)


@pytest.fixture(scope="module")
def chaos_reports():
    """The same scaled chaos-drift scenario run twice at seed 7, 2 workers."""
    def run():
        return ScenarioEngine(CHAOS_DRIFT_SMALL, seed=7, workers=2).run()

    return run(), run()


class TestChaosDriftAcceptance:
    def test_deterministic_core_is_identical_across_runs(self, chaos_reports):
        first, second = chaos_reports
        assert first.deterministic_dict() == second.deterministic_dict()
        assert first.output_fingerprint  # a real digest, not the empty default

    def test_full_drift_to_promotion_loop_ran(self, chaos_reports):
        report, _ = chaos_reports
        events = [entry["event"] for entry in report.timeline]
        for expected in (
            "faults_armed",
            "drift_detected",
            "retrain_started",
            "canary_registered",
            "canary_comparison",
            "promoted",
        ):
            assert expected in events, f"timeline missing {expected!r}: {events}"
        # The loop stages happen in causal order.
        assert events.index("drift_detected") < events.index("retrain_started")
        assert events.index("retrain_started") < events.index("canary_registered")
        assert events.index("canary_registered") < events.index("canary_comparison")
        assert events.index("canary_comparison") < events.index("promoted")
        assert report.retrains >= 1
        assert report.promotions >= 1
        assert report.drift_events
        assert report.final_prod_version != report.initial_version

    def test_zero_lost_requests_under_chaos(self, chaos_reports):
        report, _ = chaos_reports
        assert report.faults_armed == 1
        assert report.pool_restarts >= 1  # the armed kill really landed
        assert report.requests_served == report.requests_submitted
        assert report.request_errors == 0
        assert report.degraded_passes == 0
        assert report.cancelled_requests == 0
        assert report.rows_served == report.rows_requested
        assert report.windows_observed == CHAOS_DRIFT_SMALL.ticks

    def test_report_json_round_trips(self, chaos_reports):
        report, _ = chaos_reports
        decoded = json.loads(report.to_json())
        assert decoded["scenario"] == "chaos-drift"
        assert decoded["output_fingerprint"] == report.output_fingerprint
        assert "timing" in decoded  # operator layer rides along in as_dict
        assert "timing" not in report.deterministic_dict()
        assert "chaos-drift" in report.summary()


class TestCatalog:
    def test_catalog_names_and_lookup(self):
        names = scenario_names()
        assert "chaos-drift" in names
        assert "steady-diurnal" in names
        for name in names:
            assert get_scenario(name).name == name

    def test_unknown_scenario_lists_known_names(self):
        with pytest.raises(KeyError, match="steady-diurnal"):
            get_scenario("no-such-scenario")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="ticks"):
            ScenarioSpec(name="x", description="d", ticks=0)
        with pytest.raises(ValueError, match="fault_arm_ticks"):
            ScenarioSpec(name="x", description="d", fault_arm_ticks=(1,))
        with pytest.raises(ValueError, match="fault_arm_ticks"):
            ScenarioSpec(
                name="x",
                description="d",
                ticks=4,
                fault_plan="kill@1",
                fault_arm_ticks=(9,),
            )

    def test_scaled_overrides_without_mutating_catalog(self):
        base = get_scenario("gradual-drift")
        scaled = base.scaled(ticks=6, window_rows=128)
        assert (scaled.ticks, scaled.window_rows) == (6, 128)
        assert get_scenario("gradual-drift").ticks == base.ticks


def _stream(**overrides):
    kwargs = {
        "window_rows": 192,
        "seed": 11,
        "generator": GeneratorConfig(n_jobs=1200, seed=3),
    }
    kwargs.update(overrides)
    return WindowStream(**kwargs)


class TestWindowStream:
    def test_windows_replay_identically_and_differ_across_ticks(self):
        a, b = _stream(), _stream()
        assert table_fingerprint(a.window(4)) == table_fingerprint(b.window(4))
        assert table_fingerprint(a.window(4)) != table_fingerprint(a.window(5))

    def test_holdout_is_independent_of_the_live_window(self):
        stream = _stream()
        assert table_fingerprint(stream.window(3)) != table_fingerprint(
            stream.holdout_window(3)
        )
        assert stream.holdout_window(3, rows=64).n_rows == 64

    def test_mean_shift_phase_moves_the_column(self):
        phase = DriftPhase(column="workload", kind="mean_shift", magnitude=2.0, start=3)
        plain, drifted = _stream(), _stream(drift_phases=(phase,))
        tick = 6
        before = np.asarray(plain.window(tick)["workload"], dtype=np.float64)
        after = np.asarray(drifted.window(tick)["workload"], dtype=np.float64)
        assert after.mean() > before.mean() + 1.5 * before.std()
        # Before the phase starts the streams are byte-identical.
        assert table_fingerprint(plain.window(1)) == table_fingerprint(drifted.window(1))

    def test_degenerate_windows(self):
        stream = _stream(degenerate_ticks={2: "constant", 3: "tiny", 4: "single_category"})
        constant = stream.window(2)
        for name in constant.schema.numerical:
            assert np.unique(np.asarray(constant[name])).size == 1
        assert stream.window(3).n_rows == 8
        single = stream.window(4)
        for name in single.schema.categorical:
            assert np.unique(np.asarray(single[name]).astype(str)).size == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="window_rows"):
            _stream(window_rows=0)
        with pytest.raises(ValueError, match="degenerate"):
            _stream(degenerate_ticks={1: "explode"})
        with pytest.raises(ValueError, match="drift kind"):
            DriftPhase(column="workload", kind="teleport", magnitude=1.0, start=0)


class TestTrafficModel:
    def test_requests_are_deterministic_and_bounded(self):
        def build():
            return TrafficModel(
                seed=5, ticks=12, requests_per_tick=4, base_rows=256,
                min_rows=64, max_rows=512, n_tenants=3, n_users=24,
            )

        a, b = build(), build()
        tenants = {f"project{i:02d}" for i in range(3)}
        for tick in range(12):
            batch = a.requests(tick)
            assert batch == b.requests(tick)
            for request in batch:
                assert 64 <= request.rows <= 512
                assert request.tenant in tenants
        assert a.total_requests() == sum(len(a.requests(t)) for t in range(12))

    def test_validation(self):
        with pytest.raises(IndexError):
            TrafficModel(seed=1, ticks=2).requests(2)
        with pytest.raises(ValueError, match="min_rows"):
            TrafficModel(seed=1, ticks=2, min_rows=0)


#: The front-door proving ground at CI scale: prod + canary stages serving
#: concurrently behind the broker-routed FrontDoor, priorities/deadlines on.
MULTI_TENANT_SLO_SMALL = get_scenario("multi-tenant-slo").scaled(
    ticks=4,
    requests_per_tick=4,
    window_rows=256,
    train_rows=1024,
)


class TestMultiTenantSLOFrontDoor:
    @pytest.fixture(scope="class")
    def slo_reports(self):
        """The scaled multi-tenant-slo run twice at 2 workers and once at 1."""
        def run(workers):
            return ScenarioEngine(MULTI_TENANT_SLO_SMALL, seed=7, workers=workers).run()

        return run(2), run(2), run(1)

    def test_core_invariant_across_reruns_and_worker_counts(self, slo_reports):
        two_a, two_b, one = slo_reports
        assert two_a.deterministic_dict() == two_b.deterministic_dict()
        assert two_a.output_fingerprint
        # Worker count is recorded but must not leak into anything else:
        # autoscaling/routing may change wall clock, never bytes.
        core_two, core_one = two_a.deterministic_dict(), one.deterministic_dict()
        assert (core_two.pop("workers"), core_one.pop("workers")) == (2, 1)
        assert core_two == core_one

    def test_both_stages_serve_and_admission_rejects_nothing(self, slo_reports):
        report = slo_reports[0]
        assert set(report.requests_by_stage) == {"canary", "prod"}
        assert report.requests_by_stage["canary"] >= 1
        assert sum(report.requests_by_stage.values()) == report.requests_served
        assert report.requests_rejected == 0
        assert report.request_errors == 0
        assert report.requests_served == report.requests_submitted
        assert report.rows_served == report.rows_requested

    def test_front_door_stats_ride_along(self, slo_reports):
        report = slo_reports[0]
        assert set(report.service_stats["models"]) == {"prod", "canary"}
        assert "router" in report.service_stats
        # Every tenant that sent traffic has its wait percentiles recorded.
        assert set(report.tenant_waits) == set(report.requests_by_tenant)
        assert sum(w["requests"] for w in report.tenant_waits.values()) == (
            report.requests_served
        )


class TestMultiTenantBurstFairness:
    def test_no_tenant_p95_wait_exceeds_its_weight_fair_share(self):
        spec = get_scenario("multi-tenant-burst").scaled(
            ticks=6, window_rows=256, train_rows=1024
        )
        report = ScenarioEngine(spec, seed=13, workers=2).run()
        assert report.requests_rejected == 0
        assert report.tenant_waits
        # All burst tenants ride the same (normal) class, so the weight-fair
        # share of each is the aggregate p95; 3x that (with a 50 ms floor
        # against timer granularity) is the starvation bound the weighted
        # fair queue must hold even while request sizes whipsaw.
        bound = 3.0 * max(report.p95_latency, 0.05)
        for tenant, waits in sorted(report.tenant_waits.items()):
            assert waits["p95_wait_s"] <= bound, (
                f"{tenant} p95 wait {waits['p95_wait_s']:.3f}s exceeds "
                f"the fair-share bound {bound:.3f}s"
            )


class TestSteadyScenarioStaysQuiet:
    def test_no_drift_no_faults_no_events(self):
        spec = get_scenario("steady-diurnal").scaled(
            ticks=6, window_rows=256, train_rows=1024, drift=DriftConfig()
        )
        report = ScenarioEngine(spec, seed=11, workers=2).run()
        assert report.drift_events == []
        assert report.retrains == 0
        assert report.request_errors == 0
        assert report.faults_armed == 0
        assert report.final_prod_version == report.initial_version
