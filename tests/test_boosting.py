"""Tests for the gradient-boosting stack (binner, tree, GBDT, target encoding)."""

import numpy as np
import pytest

from repro.boosting.gbdt import GradientBoostingRegressor, TabularBoostingRegressor
from repro.boosting.target_encoding import OrderedTargetEncoder
from repro.boosting.tree import FeatureBinner, RegressionTree


@pytest.fixture()
def regression_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(600, 4))
    y = 3.0 * X[:, 0] - 2.0 * X[:, 1] + np.sin(2.0 * X[:, 2]) + 0.1 * rng.normal(size=600)
    return X, y


class TestFeatureBinner:
    def test_bins_within_range(self, regression_data):
        X, _ = regression_data
        binner = FeatureBinner(max_bins=16)
        binned = binner.fit_transform(X)
        assert binned.dtype == np.uint8
        assert binned.max() < 16

    def test_monotone_binning(self):
        x = np.linspace(0, 1, 100)[:, None]
        binned = FeatureBinner(max_bins=8).fit_transform(x)[:, 0]
        assert np.all(np.diff(binned.astype(int)) >= 0)

    def test_transform_unseen_values_clipped(self):
        binner = FeatureBinner(max_bins=8).fit(np.linspace(0, 1, 50)[:, None])
        binned = binner.transform(np.array([[-10.0], [10.0]]))
        assert binned[0, 0] == 0
        assert binned[1, 0] == binner.n_bins(0) - 1

    def test_wrong_feature_count(self, regression_data):
        X, _ = regression_data
        binner = FeatureBinner().fit(X)
        with pytest.raises(ValueError):
            binner.transform(X[:, :2])

    def test_invalid_max_bins(self):
        with pytest.raises(ValueError):
            FeatureBinner(max_bins=1)

    def test_constant_feature(self):
        binned = FeatureBinner(max_bins=8).fit_transform(np.full((20, 1), 2.0))
        assert np.unique(binned).size == 1


class TestRegressionTree:
    def test_reduces_error_over_mean(self, regression_data):
        X, y = regression_data
        binner = FeatureBinner(max_bins=32)
        binned = binner.fit_transform(X)
        n_bins = [binner.n_bins(j) for j in range(X.shape[1])]
        tree = RegressionTree(max_depth=4, min_samples_leaf=5).fit(binned, y - y.mean(), n_bins)
        pred = tree.predict(binned) + y.mean()
        assert np.mean((pred - y) ** 2) < 0.5 * np.var(y)

    def test_respects_max_depth(self, regression_data):
        X, y = regression_data
        binner = FeatureBinner(max_bins=16)
        binned = binner.fit_transform(X)
        n_bins = [binner.n_bins(j) for j in range(X.shape[1])]
        tree = RegressionTree(max_depth=2, min_samples_leaf=5).fit(binned, y, n_bins)
        assert tree.depth() <= 2

    def test_min_samples_leaf(self, regression_data):
        X, y = regression_data
        binner = FeatureBinner(max_bins=16)
        binned = binner.fit_transform(X)
        n_bins = [binner.n_bins(j) for j in range(X.shape[1])]
        tree = RegressionTree(max_depth=8, min_samples_leaf=100).fit(binned, y, n_bins)
        assert all(n.n_samples >= 100 for n in tree.nodes_ if n.is_leaf and n.n_samples > 0)

    def test_constant_target_single_leaf(self):
        binned = np.random.default_rng(0).integers(0, 8, size=(100, 2)).astype(np.uint8)
        tree = RegressionTree(max_depth=3).fit(binned, np.zeros(100), [8, 8])
        assert tree.n_leaves == 1

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((2, 2), dtype=np.uint8))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)


class TestGradientBoostingRegressor:
    def test_beats_constant_baseline(self, regression_data):
        X, y = regression_data
        model = GradientBoostingRegressor(n_estimators=40, learning_rate=0.2, max_depth=4, seed=0)
        model.fit(X, y)
        mse = model.score_mse(X, y)
        assert mse < 0.2 * np.var(y)

    def test_generalises(self, regression_data):
        X, y = regression_data
        model = GradientBoostingRegressor(n_estimators=40, learning_rate=0.2, max_depth=3, seed=0)
        model.fit(X[:400], y[:400])
        assert model.score_mse(X[400:], y[400:]) < 0.5 * np.var(y[400:])

    def test_training_loss_decreases(self, regression_data):
        X, y = regression_data
        model = GradientBoostingRegressor(n_estimators=30, learning_rate=0.2, seed=0).fit(X, y)
        assert model.train_losses_[-1] < model.train_losses_[0]

    def test_subsample(self, regression_data):
        X, y = regression_data
        model = GradientBoostingRegressor(n_estimators=20, subsample=0.5, seed=0).fit(X, y)
        assert model.score_mse(X, y) < np.var(y)

    def test_more_estimators_fit_better(self, regression_data):
        X, y = regression_data
        small = GradientBoostingRegressor(n_estimators=5, learning_rate=0.1, seed=0).fit(X, y)
        large = GradientBoostingRegressor(n_estimators=60, learning_rate=0.1, seed=0).fit(X, y)
        assert large.score_mse(X, y) < small.score_mse(X, y)

    def test_shape_validation(self, regression_data):
        X, y = regression_data
        with pytest.raises(ValueError):
            GradientBoostingRegressor().fit(X, y[:-1])

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0)

    def test_unfitted_predict_raises(self, regression_data):
        X, _ = regression_data
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(X)


class TestOrderedTargetEncoder:
    def test_full_statistics_capture_category_means(self):
        cats = np.array(["a"] * 50 + ["b"] * 50)
        y = np.concatenate([np.full(50, 1.0), np.full(50, 5.0)])
        enc = OrderedTargetEncoder(smoothing=0.0, seed=0).fit(cats, y)
        encoded = enc.transform(np.array(["a", "b"]))
        assert encoded[0] == pytest.approx(1.0)
        assert encoded[1] == pytest.approx(5.0)

    def test_smoothing_shrinks_rare_categories(self):
        cats = np.array(["common"] * 99 + ["rare"])
        y = np.concatenate([np.zeros(99), np.array([100.0])])
        enc = OrderedTargetEncoder(smoothing=10.0, seed=0).fit(cats, y)
        assert enc.transform(np.array(["rare"]))[0] < 50.0

    def test_unseen_category_gets_prior(self):
        enc = OrderedTargetEncoder(seed=0).fit(np.array(["a", "b"]), np.array([0.0, 2.0]))
        assert enc.transform(np.array(["zzz"]))[0] == pytest.approx(1.0)

    def test_ordered_encoding_differs_from_full(self):
        rng = np.random.default_rng(0)
        cats = rng.choice(["a", "b", "c"], size=200)
        y = rng.normal(size=200)
        enc = OrderedTargetEncoder(seed=0)
        ordered = enc.fit_transform_ordered(cats, y)
        full = enc.transform(cats)
        assert not np.allclose(ordered, full)

    def test_ordered_encoding_no_self_leakage(self):
        # With one row per category, the ordered encoding must equal the prior.
        cats = np.array(["a", "b", "c"])
        y = np.array([10.0, 20.0, 30.0])
        enc = OrderedTargetEncoder(smoothing=1.0, seed=0)
        ordered = enc.fit_transform_ordered(cats, y)
        np.testing.assert_allclose(ordered, np.full(3, y.mean()))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            OrderedTargetEncoder().fit(np.array(["a"]), np.array([1.0, 2.0]))


class TestTabularBoostingRegressor:
    def test_fits_mixed_table(self, train_table, test_table):
        model = TabularBoostingRegressor(
            target_column="workload", n_estimators=20, learning_rate=0.3, max_depth=4,
            log_target=True, seed=0,
        )
        model.fit(train_table)
        mse = model.score_mse(test_table)
        log_target = np.log(np.maximum(test_table["workload"], 1e-12))
        assert mse < np.var(log_target)

    def test_unknown_target_column(self, train_table):
        with pytest.raises(KeyError):
            TabularBoostingRegressor(target_column="nope").fit(train_table)

    def test_predict_before_fit(self, train_table):
        with pytest.raises(RuntimeError):
            TabularBoostingRegressor(target_column="workload").predict(train_table)

    def test_prediction_shape(self, train_table, test_table):
        model = TabularBoostingRegressor(
            target_column="workload", n_estimators=10, learning_rate=0.3, log_target=True, seed=0
        ).fit(train_table)
        assert model.predict(test_table).shape == (len(test_table),)


class TestBinnerVectorizedEquivalence:
    """Single stacked searchsorted vs the per-feature loop it replaced."""

    def _loop_transform(self, binner, X):
        binned = np.empty(X.shape, dtype=np.uint8)
        for j, edges in enumerate(binner.bin_edges_):
            binned[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return binned

    def test_matches_per_feature_loop(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(3_000, 9)) * rng.uniform(0.1, 50.0, size=9)
        X[:, 0] = np.round(X[:, 0])  # heavy ties
        X[:, 1] = 7.0                # constant column
        for max_bins in (2, 16, 64, 256):
            binner = FeatureBinner(max_bins=max_bins).fit(X)
            np.testing.assert_array_equal(binner.transform(X), self._loop_transform(binner, X))
            query = rng.normal(size=(500, 9)) * 100.0
            np.testing.assert_array_equal(
                binner.transform(query), self._loop_transform(binner, query)
            )

    def test_duplicate_edges_across_features(self):
        # Identical columns produce identical (tied) edge values across
        # features; the stacked rank table must keep them separated.
        x = np.linspace(0.0, 1.0, 200)
        X = np.column_stack([x, x, x[::-1]])
        binner = FeatureBinner(max_bins=8).fit(X)
        np.testing.assert_array_equal(binner.transform(X), self._loop_transform(binner, X))

    def test_wide_matrix_fallback_path(self, monkeypatch):
        # Above the rank-table memory cap, transform must fall back to the
        # per-feature loop with identical results.
        monkeypatch.setattr(FeatureBinner, "_MAX_RANK_TABLE_BYTES", 100)
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 6))
        binner = FeatureBinner(max_bins=16).fit(X)
        assert binner._rank_to_bin_ is None
        np.testing.assert_array_equal(binner.transform(X), self._loop_transform(binner, X))
