"""The shared-memory chunk transport: invariant bytes, zero leaked segments.

Two contracts are proven here:

* **Transport invariance** — the served bytes (and scenario report
  fingerprints) are identical whether chunks cross the pool as shm
  envelopes or pickled tables, for workers {1, 2}, both sampling modes.
* **Segment hygiene** — after runs that include injected worker kills,
  chunk timeouts and hedge losers (the PR-6 ``FaultPlan`` harness), no
  shared-memory segment remains linked and the transport's spool directory
  is gone.
"""

import os

import numpy as np
import pytest

from repro.models.smote import SMOTESurrogate
from repro.models.tvae import TVAEConfig, TVAESurrogate
from repro.scenarios import ScenarioEngine, get_scenario
from repro.serve import ChunkPolicy, FaultPlan, ShardedSampler
from repro.serve.api import table_fingerprint
from repro.serve.shm import (
    SEGMENT_PREFIX,
    ChunkEncoder,
    ChunkEnvelope,
    ShmSession,
    resolve_transport,
    shm_available,
)
from repro.tabular.schema import TableSchema
from repro.tabular.table import Table

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)

N_ROWS = 130
CHUNK = 40  # chunk plan (40, 40, 40, 10)
SEED = 17
MODES = ("exact", "fast")
TRANSPORTS = ("pickle", "shm")


def _serving_table(n=400, seed=23):
    rng = np.random.default_rng(seed)
    data = {
        "x0": np.round(rng.lognormal(1.0, 0.7, n), 2),
        "x1": rng.normal(size=n) * 4.0,
        "cat_a": rng.choice(["a", "b"], n, p=[0.7, 0.3]),
        "cat_wide": rng.choice([f"s{i}" for i in range(11)], n),
    }
    return Table(
        data,
        TableSchema.from_columns(
            numerical=["x0", "x1"], categorical=["cat_a", "cat_wide"]
        ),
    )


def _linked_segments():
    """Names of currently linked transport segments (POSIX: /dev/shm)."""
    if not os.path.isdir("/dev/shm"):
        return set()
    return {n for n in os.listdir("/dev/shm") if n.startswith(SEGMENT_PREFIX)}


@pytest.fixture(scope="module")
def table():
    return _serving_table()


@pytest.fixture(scope="module")
def models(table):
    return {
        "tvae": TVAESurrogate(TVAEConfig.fast(), seed=3).fit(table),
        "smote": SMOTESurrogate(k_neighbors=3).fit(table),
    }


class TestTransportResolution:
    def test_explicit_values(self):
        assert resolve_transport("shm") == "shm"
        assert resolve_transport("pickle") == "pickle"
        assert resolve_transport("auto") == "shm"

    def test_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "pickle")
        assert resolve_transport() == "pickle"
        monkeypatch.setenv("REPRO_SHM", "1")
        assert resolve_transport() == "shm"
        monkeypatch.delenv("REPRO_SHM")
        assert resolve_transport() == "shm"

    def test_unknown_value_rejected(self):
        with pytest.raises(ValueError):
            resolve_transport("carrier-pigeon")

    def test_sampler_records_its_transport(self, models):
        for transport in TRANSPORTS:
            sampler = ShardedSampler(models["smote"], workers=2, transport=transport)
            assert sampler.transport == transport


class TestEnvelopeRoundTrip:
    """The encoder/decoder pair in-process: exact bytes, exact lifecycle."""

    def test_chunk_round_trips_byte_identically(self, models):
        model = models["tvae"]
        session = ShmSession(model)
        encoder = ChunkEncoder(session.config, model)
        chunk = model.sample(CHUNK, seed=5, sampling_mode="exact")
        envelope = encoder.encode(chunk)
        assert envelope.segment is not None
        assert envelope.segment.startswith(SEGMENT_PREFIX)
        assert envelope.n_rows == CHUNK
        # codes-only wire: 2 numericals * 8B + 2 categoricals * 4B per row
        assert envelope.nbytes == CHUNK * (2 * 8 + 2 * 4)
        assert envelope.segment in _linked_segments()
        decoded = session.decoder.decode(envelope)
        assert decoded == chunk
        assert table_fingerprint(decoded) == table_fingerprint(chunk)
        # Decode consumed the segment: name unlinked, token gone.
        assert envelope.segment not in _linked_segments()
        assert os.listdir(session.spool_dir) == []
        assert session.close() == 0

    def test_discard_releases_unconsumed_segments(self, models):
        model = models["smote"]
        session = ShmSession(model)
        encoder = ChunkEncoder(session.config, model)
        envelope = encoder.encode(model.sample(CHUNK, seed=1, sampling_mode="fast"))
        assert envelope.segment in _linked_segments()
        session.decoder.discard(envelope)
        assert envelope.segment not in _linked_segments()
        session.decoder.discard(envelope)  # idempotent
        assert session.close() == 0

    def test_sweep_collects_crash_leftovers(self, models):
        model = models["smote"]
        session = ShmSession(model)
        encoder = ChunkEncoder(session.config, model)
        envelope = encoder.encode(model.sample(CHUNK, seed=2, sampling_mode="fast"))
        # Simulate a parent that never heard back: the spool token is the
        # only record of the segment.
        assert os.listdir(session.spool_dir) == [envelope.segment]
        assert session.close() == 1
        assert envelope.segment not in _linked_segments()
        assert not os.path.isdir(session.spool_dir)

    def test_layout_mismatch_ships_inline(self, models, table):
        session = ShmSession(models["tvae"])
        encoder = ChunkEncoder(session.config, models["tvae"])
        other = table.select(["x0", "cat_a"])  # not the model's schema
        envelope = encoder.encode(other)
        assert envelope.segment is None
        assert envelope.inline == other
        assert session.decoder.decode(envelope) == other
        session.close()


class TestTransportInvariance:
    """The acceptance bar: bytes and fingerprints never depend on transport."""

    @pytest.mark.parametrize("name", ["tvae", "smote"])
    def test_bytes_identical_across_transports_and_workers(self, models, name):
        model = models[name]
        references = {
            mode: Table.concat(
                list(model.sample_batches(N_ROWS, CHUNK, seed=SEED, sampling_mode=mode))
            )
            for mode in MODES
        }
        fingerprints = {mode: table_fingerprint(t) for mode, t in references.items()}
        for transport in TRANSPORTS:
            for workers in (1, 2):
                with ShardedSampler(
                    model, workers=workers, chunk_size=CHUNK, transport=transport
                ) as sampler:
                    for mode in MODES:
                        served = sampler.sample(N_ROWS, seed=SEED, sampling_mode=mode)
                        assert served == references[mode], (name, transport, workers, mode)
                        assert table_fingerprint(served) == fingerprints[mode]

    def test_scenario_fingerprints_invariant_across_transports(self, monkeypatch, tmp_path):
        # The whole drift→retrain→promote loop (including an injected worker
        # kill) must report an identical deterministic core whichever
        # transport carries its chunks.
        spec = get_scenario("chaos-drift").scaled(
            ticks=6,
            window_rows=256,
            train_rows=1024,
            canary_rows=512,
            fault_arm_ticks=(3,),
        )

        def run(transport):
            monkeypatch.setenv("REPRO_SHM", transport)
            root = tmp_path / f"registry-{transport}"
            return ScenarioEngine(spec, seed=7, workers=2, registry_root=root).run()

        by_transport = {t: run(t).deterministic_dict() for t in TRANSPORTS}
        assert by_transport["shm"] == by_transport["pickle"]
        assert by_transport["shm"]["output_fingerprint"]


class TestSegmentHygiene:
    """After faulty runs every segment is unlinked and the spool is gone."""

    def _assert_clean(self, sampler, before):
        spool = sampler._shm_session.spool_dir if sampler._shm_session else None
        sampler.close()
        assert _linked_segments() == before
        if spool is not None:
            assert not os.path.isdir(spool)

    def test_normal_requests_leave_nothing(self, models):
        before = _linked_segments()
        sampler = ShardedSampler(
            models["tvae"], workers=2, chunk_size=CHUNK, transport="shm"
        )
        with sampler:
            for seed in range(5):
                sampler.sample(N_ROWS, seed=seed, sampling_mode="fast")
        assert _linked_segments() == before

    def test_worker_kills_leave_nothing(self, models):
        before = _linked_segments()
        reference = Table.concat(
            list(
                models["smote"].sample_batches(
                    N_ROWS, CHUNK, seed=SEED, sampling_mode="fast"
                )
            )
        )
        sampler = ShardedSampler(
            models["smote"],
            workers=2,
            chunk_size=CHUNK,
            transport="shm",
            fault_plan=FaultPlan.parse("kill@1, kill@2*2"),
        )
        with sampler:
            served = sampler.sample(N_ROWS, seed=SEED, sampling_mode="fast")
            assert served == reference
            assert sampler.fault_stats().pool_restarts >= 1
        self._assert_clean(sampler, before)

    def test_timeouts_and_hedge_losers_leave_nothing(self, models):
        before = _linked_segments()
        model = models["smote"]
        reference = Table.concat(
            list(model.sample_batches(N_ROWS, CHUNK, seed=SEED, sampling_mode="fast"))
        )
        # One delayed chunk trips the deadline (its late envelope is reaped);
        # another straggler triggers a hedge whose loser is discarded.
        policy = ChunkPolicy(
            timeout=0.5,
            max_retries=3,
            backoff=0.01,
            hedge_multiplier=2.0,
            min_hedge_latency=0.05,
            poll=0.005,
        )
        sampler = ShardedSampler(
            model,
            workers=2,
            chunk_size=CHUNK,
            transport="shm",
            chunk_policy=policy,
            fault_plan=FaultPlan.parse("delay@1:0.8, delay@3:0.3"),
        )
        with sampler:
            served = sampler.sample(N_ROWS, seed=SEED, sampling_mode="fast")
            stats = sampler.fault_stats()
            assert served == reference
        assert stats.chunk_timeouts + stats.hedges >= 1
        self._assert_clean(sampler, before)

    def test_many_requests_mixed_faults(self, models):
        # N requests across restarts with kills and delays in the plan:
        # the cumulative leak check of the satellite task.
        before = _linked_segments()
        plan = FaultPlan.parse("kill@0, delay@2:0.2")
        sampler = ShardedSampler(
            models["tvae"],
            workers=2,
            chunk_size=CHUNK,
            transport="shm",
            chunk_policy=ChunkPolicy(max_retries=2, backoff=0.01),
            fault_plan=plan,
        )
        with sampler:
            for seed in range(4):
                sampler.sample(N_ROWS, seed=seed, sampling_mode="fast")
            plan.arm()  # re-arm the latch: the next batch injects again
            for seed in range(4, 8):
                sampler.sample(N_ROWS, seed=seed, sampling_mode="fast")
        self._assert_clean(sampler, before)

    def test_abandoned_futures_are_reaped_not_leaked(self, models):
        # Cancel in-flight chunks mid-stream (early consumer exit) — their
        # envelopes must be reaped by the time the sampler closes.
        before = _linked_segments()
        sampler = ShardedSampler(
            models["tvae"], workers=2, chunk_size=20, transport="shm"
        )
        with sampler:
            stream = sampler.sample_batches(400, seed=3, sampling_mode="fast")
            next(stream)  # consume one chunk, abandon the windowed rest
            stream.close()
        self._assert_clean(sampler, before)


class TestEnvelopePickleCost:
    def test_envelope_is_orders_of_magnitude_smaller_than_the_table(self, models):
        import pickle

        model = models["tvae"]
        session = ShmSession(model)
        encoder = ChunkEncoder(session.config, model)
        chunk = model.sample(CHUNK, seed=5, sampling_mode="fast")
        envelope = encoder.encode(chunk)
        try:
            assert isinstance(envelope, ChunkEnvelope)
            table_bytes = len(pickle.dumps(chunk))
            envelope_bytes = len(pickle.dumps(envelope))
            assert envelope_bytes * 5 <= table_bytes
        finally:
            session.decoder.discard(envelope)
            session.close()
