"""Golden-keys test for the :meth:`ServiceStats.to_dict` tree.

The stats tree is a public schema with three consumers — the CLI ``--json``
payloads, HTTP ``GET /stats`` and the scenario reports' ``timing.service``
block — and (since the ``repro.obs`` refactor) a *view* over the service's
``MetricsRegistry``.  This test pins the exact key set at every level, so a
registry-side refactor that drops or renames a field fails here instead of
silently changing three downstream surfaces.
"""

import numpy as np
import pytest

from repro.models.smote import SMOTESurrogate
from repro.obs.metrics import REQUIRED_SERVE_SERIES
from repro.serve import AdmissionPolicy, RequestSpec, SamplingService
from repro.tabular.schema import TableSchema
from repro.tabular.table import Table

#: The contract: every level of the stats tree, exactly.
GOLDEN_SCHEMA = {
    "throughput": {"rows_per_second", "total_requests", "total_rows", "uptime_s"},
    "queue": {"depth", "in_flight_rows"},
    "latency": {"p50_s", "p95_s"},
    "workers": {"current", "scale_ups", "scale_downs", "degraded"},
    "faults": {
        "pool_restarts",
        "chunk_retries",
        "chunk_timeouts",
        "hedges",
        "hedge_wins",
        "degraded_passes",
        "cancelled_requests",
    },
    "admission": {
        "admitted",
        "rejected",
        "rejected_queue_depth",
        "rejected_backlog_rows",
        "rejected_deadline",
    },
}

GOLDEN_TENANT_KEYS = {"requests", "rows", "p50_wait_s", "p95_wait_s"}


def _table(n=300, seed=3):
    rng = np.random.default_rng(seed)
    data = {
        "x": rng.normal(size=n),
        "cat": rng.choice(["a", "b", "c"], n),
    }
    return Table(data, TableSchema.from_columns(numerical=["x"], categorical=["cat"]))


@pytest.fixture(scope="module")
def stats():
    model = SMOTESurrogate(k_neighbors=3).fit(_table())
    with SamplingService(
        model, workers=1, chunk_size=64, admission=AdmissionPolicy(max_queue_depth=64)
    ) as service:
        for i, tenant in enumerate(["alice", "bob", "alice"]):
            service.submit(RequestSpec(100, seed=10 + i, tenant=tenant)).result(timeout=30)
        return service.stats()


class TestStatsSchema:
    def test_top_level_keys(self, stats):
        tree = stats.to_dict()
        assert set(tree) == set(GOLDEN_SCHEMA) | {"tenants"}

    def test_nested_keys_exact(self, stats):
        tree = stats.to_dict()
        for section, keys in GOLDEN_SCHEMA.items():
            assert set(tree[section]) == keys, f"schema drift in {section!r}"

    def test_tenant_entries_exact(self, stats):
        tree = stats.to_dict()
        assert set(tree["tenants"]) == {"alice", "bob"}
        for tenant, values in tree["tenants"].items():
            assert set(values) == GOLDEN_TENANT_KEYS, f"schema drift in tenant {tenant!r}"

    def test_counts_flow_through_the_registry(self, stats):
        # The tree is a view over the MetricsRegistry: the request/row
        # totals on it must match what the instruments recorded.
        tree = stats.to_dict()
        assert tree["throughput"]["total_requests"] == 3
        assert tree["throughput"]["total_rows"] == 300
        assert tree["tenants"]["alice"]["requests"] == 2
        assert tree["tenants"]["bob"]["rows"] == 100
        assert tree["admission"]["admitted"] == 3

    def test_json_round_trip(self, stats):
        import json

        assert json.loads(json.dumps(stats.to_dict()))["queue"]["depth"] == 0

    def test_required_prometheus_series_cover_the_tree(self):
        # The /metrics page's required-series contract names the serving
        # metrics the schema above is computed from.
        assert "repro_serve_requests_total" in REQUIRED_SERVE_SERIES
        assert "repro_serve_queue_depth" in REQUIRED_SERVE_SERIES
