"""Tests for repro.metrics.distribution (WD, JSD, Fig. 4 helpers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.distribution import (
    categorical_frequencies,
    histogram_series,
    jensen_shannon_divergence,
    mean_jsd,
    mean_wasserstein,
    top_k_frequencies,
    wasserstein_1d,
)


class TestWasserstein:
    def test_identical_samples_zero(self):
        x = np.random.default_rng(0).normal(size=500)
        assert wasserstein_1d(x, x) == pytest.approx(0.0, abs=1e-9)

    def test_shifted_distributions(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 1.0, 5000)
        b = rng.normal(0.0, 1.0, 5000) + 2.0
        # Normalised by the real sample's range (~6-7 sigma), the unit shift of
        # 2 should come out around 2 / range.
        wd = wasserstein_1d(a, b)
        expected = 2.0 / (a.max() - a.min())
        assert wd == pytest.approx(expected, rel=0.15)

    def test_unnormalised_shift(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.0, 1.0, 5000)
        b = a + 3.0
        assert wasserstein_1d(a, b, normalize=False) == pytest.approx(3.0, rel=0.01)

    def test_symmetry(self):
        rng = np.random.default_rng(2)
        a, b = rng.exponential(1.0, 1000), rng.exponential(2.0, 1000)
        assert wasserstein_1d(a, b, normalize=False) == pytest.approx(
            wasserstein_1d(b, a, normalize=False), rel=0.05
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            wasserstein_1d(np.array([]), np.array([1.0]))

    @given(st.floats(min_value=-5.0, max_value=5.0))
    @settings(max_examples=20, deadline=None)
    def test_nonnegative_property(self, shift):
        rng = np.random.default_rng(abs(int(shift * 100)) + 1)
        a = rng.normal(size=300)
        assert wasserstein_1d(a, a + shift) >= 0.0


class TestJSD:
    def test_identical_zero(self):
        values = np.array(["a", "b", "a", "c"])
        assert jensen_shannon_divergence(values, values) == pytest.approx(0.0)

    def test_disjoint_supports_is_one(self):
        assert jensen_shannon_divergence(np.array(["a"] * 10), np.array(["b"] * 10)) == pytest.approx(1.0)

    def test_bounded(self):
        rng = np.random.default_rng(0)
        a = rng.choice(["x", "y", "z"], 200)
        b = rng.choice(["x", "y", "w"], 200)
        assert 0.0 <= jensen_shannon_divergence(a, b) <= 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a = rng.choice(["x", "y"], 100, p=[0.9, 0.1])
        b = rng.choice(["x", "y"], 100, p=[0.4, 0.6])
        assert jensen_shannon_divergence(a, b) == pytest.approx(jensen_shannon_divergence(b, a))

    def test_more_different_is_larger(self):
        base = np.array(["a"] * 80 + ["b"] * 20)
        close = np.array(["a"] * 70 + ["b"] * 30)
        far = np.array(["a"] * 10 + ["b"] * 90)
        assert jensen_shannon_divergence(base, far) > jensen_shannon_divergence(base, close)


class TestFrequencies:
    def test_frequencies_sum_to_one(self):
        freqs = categorical_frequencies(np.array(["a", "b", "b"]))
        assert sum(freqs.values()) == pytest.approx(1.0)

    def test_fixed_support_includes_missing(self):
        freqs = categorical_frequencies(np.array(["a", "a"]), categories=["a", "b"])
        assert freqs["b"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            categorical_frequencies(np.array([]))


class TestTableLevelMetrics:
    def test_mean_wasserstein_on_identical_tables(self, train_table):
        mean, per_col = mean_wasserstein(train_table, train_table)
        assert mean == pytest.approx(0.0, abs=1e-9)
        assert set(per_col) == set(train_table.schema.numerical)

    def test_mean_jsd_on_identical_tables(self, train_table):
        mean, per_col = mean_jsd(train_table, train_table)
        assert mean == pytest.approx(0.0, abs=1e-12)
        assert set(per_col) == set(train_table.schema.categorical)

    def test_mean_wasserstein_detects_corruption(self, train_table):
        corrupted = train_table.with_column(
            "workload", np.asarray(train_table["workload"]) * 10.0, "numerical"
        )
        mean, per_col = mean_wasserstein(train_table, corrupted)
        assert per_col["workload"] > 0.01
        assert per_col["creationtime"] == pytest.approx(0.0, abs=1e-9)

    def test_top_k_frequencies_structure(self, train_table, test_table):
        rows = top_k_frequencies(train_table, test_table, "computingsite", k=5)
        assert len(rows) <= 5
        assert all({"category", "real", "synthetic"} <= set(r) for r in rows)
        reals = [r["real"] for r in rows]
        assert reals == sorted(reals, reverse=True)

    def test_histogram_series_alignment(self, train_table, test_table):
        series = histogram_series(train_table["workload"], test_table["workload"], bins=20)
        assert series["centers"].shape == (20,)
        assert series["real"].shape == (20,)
        assert series["synthetic"].shape == (20,)

    def test_histogram_series_density_normalised(self):
        rng = np.random.default_rng(0)
        series = histogram_series(rng.normal(size=1000), rng.normal(size=1000), bins=30)
        width = series["centers"][1] - series["centers"][0]
        assert (series["real"] * width).sum() == pytest.approx(1.0, rel=1e-6)
