"""Tests for TabDDPM: schedules, Gaussian diffusion, multinomial diffusion,
denoiser and the full surrogate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.tabddpm import (
    DiffusionSchedule,
    GaussianDiffusion,
    MLPDenoiser,
    MultinomialDiffusion,
    TabDDPMConfig,
    TabDDPMSurrogate,
    cosine_beta_schedule,
    linear_beta_schedule,
    timestep_embedding,
)
from repro.nn import Tensor


class TestSchedules:
    def test_linear_schedule_bounds(self):
        betas = linear_beta_schedule(100)
        assert betas.shape == (100,)
        assert betas[0] < betas[-1]
        assert (betas > 0).all() and (betas < 1).all()

    def test_cosine_schedule_bounds(self):
        betas = cosine_beta_schedule(100)
        assert (betas > 0).all() and (betas <= 0.999).all()

    def test_alphas_bar_monotone_decreasing(self):
        sched = DiffusionSchedule.cosine(50)
        assert np.all(np.diff(sched.alphas_bar) < 0)
        assert sched.alphas_bar[-1] < 0.05

    def test_alphas_bar_prev_shifted(self):
        sched = DiffusionSchedule.linear(10)
        assert sched.alphas_bar_prev[0] == 1.0
        np.testing.assert_allclose(sched.alphas_bar_prev[1:], sched.alphas_bar[:-1])

    def test_posterior_variance_nonnegative(self):
        sched = DiffusionSchedule.cosine(30)
        assert (sched.posterior_variance >= 0).all()

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            DiffusionSchedule(np.array([0.0, 0.5]))
        with pytest.raises(ValueError):
            DiffusionSchedule(np.array([1.5]))
        with pytest.raises(ValueError):
            linear_beta_schedule(0)


class TestGaussianDiffusion:
    def test_q_sample_variance_grows_with_t(self):
        diffusion = GaussianDiffusion(DiffusionSchedule.cosine(100))
        rng = np.random.default_rng(0)
        x0 = np.zeros((5000, 1))
        noise = rng.standard_normal(x0.shape)
        early = diffusion.q_sample(x0, np.full(5000, 5), noise)
        late = diffusion.q_sample(x0, np.full(5000, 95), noise)
        assert late.std() > early.std()

    def test_q_sample_preserves_signal_at_t0(self):
        diffusion = GaussianDiffusion(DiffusionSchedule.cosine(100))
        x0 = np.random.default_rng(1).normal(size=(100, 3))
        noisy = diffusion.q_sample(x0, np.zeros(100, dtype=int), np.zeros_like(x0))
        np.testing.assert_allclose(noisy, x0 * diffusion.schedule.sqrt_alphas_bar[0], rtol=1e-12)

    def test_predict_x0_inverts_q_sample(self):
        diffusion = GaussianDiffusion(DiffusionSchedule.cosine(50))
        rng = np.random.default_rng(2)
        x0 = rng.normal(size=(200, 4))
        noise = rng.standard_normal(x0.shape)
        t = rng.integers(0, 50, size=200)
        x_t = diffusion.q_sample(x0, t, noise)
        recovered = diffusion.predict_x0_from_eps(x_t, t, noise)
        np.testing.assert_allclose(recovered, x0, rtol=1e-8, atol=1e-8)

    def test_perfect_eps_model_recovers_distribution(self):
        # With an oracle noise model for x0 = 0, the reverse chain must
        # concentrate around zero.
        diffusion = GaussianDiffusion(DiffusionSchedule.cosine(50))
        rng = np.random.default_rng(3)

        def oracle(x_t, t_vec):
            # For x0 = 0, x_t = sqrt(1 - alpha_bar) * eps, so eps = x_t / sqrt(1-alpha_bar).
            coeff = diffusion.schedule.sqrt_one_minus_alphas_bar[t_vec][:, None]
            return x_t / np.maximum(coeff, 1e-12)

        samples = diffusion.sample(2000, 1, oracle, rng)
        assert abs(samples.mean()) < 0.1
        assert samples.std() < 0.5

    def test_p_sample_step_t0_is_deterministic(self):
        diffusion = GaussianDiffusion(DiffusionSchedule.cosine(10))
        x_t = np.random.default_rng(4).normal(size=(10, 2))
        eps = np.zeros_like(x_t)
        a = diffusion.p_sample_step(x_t, 0, eps, np.random.default_rng(0))
        b = diffusion.p_sample_step(x_t, 0, eps, np.random.default_rng(99))
        np.testing.assert_allclose(a, b)


class TestMultinomialDiffusion:
    def test_q_probs_rows_sum_to_one(self):
        diffusion = MultinomialDiffusion(5, DiffusionSchedule.cosine(40))
        x0 = np.eye(5)[np.random.default_rng(0).integers(0, 5, 100)]
        probs = diffusion.q_probs(x0, np.full(100, 20))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_q_probs_approach_uniform(self):
        diffusion = MultinomialDiffusion(4, DiffusionSchedule.cosine(100))
        x0 = np.eye(4)[[0] * 10]
        late = diffusion.q_probs(x0, np.full(10, 99))
        np.testing.assert_allclose(late, 0.25, atol=0.05)

    def test_q_sample_onehot(self):
        diffusion = MultinomialDiffusion(6, DiffusionSchedule.cosine(30))
        x0 = np.eye(6)[np.random.default_rng(1).integers(0, 6, 50)]
        x_t = diffusion.q_sample(x0, np.full(50, 10), np.random.default_rng(2))
        np.testing.assert_allclose(x_t.sum(axis=1), 1.0)
        assert set(np.unique(x_t)) <= {0.0, 1.0}

    def test_posterior_prefers_x0_at_low_t(self):
        diffusion = MultinomialDiffusion(3, DiffusionSchedule.cosine(100))
        x_t = np.eye(3)[[1]]
        x0_probs = np.array([[1.0, 0.0, 0.0]])
        posterior = diffusion.posterior_probs(x_t, x0_probs, np.array([1]))
        assert posterior[0, 0] > 0.5

    def test_oracle_reverse_chain_recovers_category(self):
        diffusion = MultinomialDiffusion(4, DiffusionSchedule.cosine(60))
        rng = np.random.default_rng(5)
        target = np.array([0.7, 0.2, 0.05, 0.05])

        def oracle(x_t, t_vec):
            return np.tile(target, (x_t.shape[0], 1))

        samples = diffusion.sample(4000, oracle, rng)
        freqs = samples.mean(axis=0)
        np.testing.assert_allclose(freqs, target, atol=0.06)

    def test_invalid_categories(self):
        with pytest.raises(ValueError):
            MultinomialDiffusion(1, DiffusionSchedule.cosine(10))

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=1, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_posterior_always_valid_distribution(self, k, t):
        diffusion = MultinomialDiffusion(k, DiffusionSchedule.cosine(31))
        rng = np.random.default_rng(k * 31 + t)
        x_t = np.eye(k)[rng.integers(0, k, 20)]
        x0 = rng.dirichlet(np.ones(k), size=20)
        posterior = diffusion.posterior_probs(x_t, x0, np.full(20, t))
        np.testing.assert_allclose(posterior.sum(axis=1), 1.0, rtol=1e-9)
        assert (posterior >= 0).all()


class TestDenoiser:
    def test_timestep_embedding_shape_and_range(self):
        emb = timestep_embedding(np.array([0, 10, 50]), 32)
        assert emb.shape == (3, 32)
        assert np.abs(emb).max() <= 1.0 + 1e-9

    def test_timestep_embedding_distinguishes_timesteps(self):
        emb = timestep_embedding(np.array([1, 2]), 16)
        assert not np.allclose(emb[0], emb[1])

    def test_odd_dimension_padded(self):
        assert timestep_embedding(np.array([3]), 7).shape == (1, 7)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            timestep_embedding(np.array([1]), 1)

    def test_denoiser_output_shape(self):
        model = MLPDenoiser(12, hidden_dims=(32,), time_embedding_dim=8, seed=0)
        out = model(Tensor(np.zeros((5, 12))), np.arange(5))
        assert out.shape == (5, 12)

    def test_denoiser_gradients_flow(self):
        model = MLPDenoiser(6, hidden_dims=(16,), time_embedding_dim=8, seed=0)
        out = model(Tensor(np.random.default_rng(0).normal(size=(4, 6))), np.zeros(4, dtype=int))
        (out ** 2).sum().backward()
        assert all(p.grad is not None for p in model.parameters())


class TestTabDDPMSurrogate:
    @pytest.fixture(scope="class")
    def fitted(self, train_table):
        model = TabDDPMSurrogate(TabDDPMConfig.fast(), seed=0)
        model.fit(train_table.head(600))
        return model

    def test_loss_history(self, fitted):
        assert len(fitted.loss_history_) == fitted.config.epochs
        assert fitted.loss_history_[-1] < fitted.loss_history_[0]

    def test_sample_schema_and_size(self, fitted, train_table):
        synth = fitted.sample(150, seed=0)
        assert synth.schema == train_table.schema
        assert len(synth) == 150

    def test_categories_from_training_support(self, fitted, train_table):
        synth = fitted.sample(200, seed=1)
        for column in train_table.schema.categorical:
            assert set(np.unique(synth[column])) <= set(np.unique(train_table[column]))

    def test_numericals_within_training_range(self, fitted, train_table):
        synth = fitted.sample(200, seed=2)
        for column in train_table.schema.numerical:
            assert synth[column].min() >= train_table[column].min() - 1e-6
            assert synth[column].max() <= train_table[column].max() + 1e-6

    def test_deterministic_sampling(self, fitted):
        assert fitted.sample(40, seed=6) == fitted.sample(40, seed=6)

    def test_invalid_schedule_name(self, train_table):
        model = TabDDPMSurrogate(TabDDPMConfig(schedule="bogus", epochs=1, n_timesteps=4), seed=0)
        with pytest.raises(ValueError):
            model.fit(train_table.head(50))

    def test_sample_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TabDDPMSurrogate(TabDDPMConfig.fast()).sample(5)
