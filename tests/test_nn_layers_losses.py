"""Tests for repro.nn layers, losses, module plumbing."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    LeakyReLU,
    Linear,
    MLP,
    ReLU,
    Residual,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    bce_with_logits,
    cross_entropy_logits,
    gaussian_kl,
    gaussian_nll,
    mse_loss,
)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, seed=0)
        out = layer(Tensor(np.random.default_rng(0).normal(size=(5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, seed=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_deterministic_init(self):
        a = Linear(4, 3, seed=7).weight.data
        b = Linear(4, 3, seed=7).weight.data
        np.testing.assert_array_equal(a, b)

    def test_gradients_flow_to_weight_and_bias(self):
        layer = Linear(3, 2, seed=1)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3)))
        loss = (layer(x) ** 2).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestActivationsAndDropout:
    def test_relu_non_negative(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0]))).numpy()
        assert (out >= 0).all()

    def test_leaky_relu_slope(self):
        out = LeakyReLU(0.1)(Tensor(np.array([-10.0]))).numpy()
        np.testing.assert_allclose(out, [-1.0])

    def test_tanh_bounded(self):
        out = Tanh()(Tensor(np.array([100.0, -100.0]))).numpy()
        np.testing.assert_allclose(out, [1.0, -1.0], atol=1e-9)

    def test_sigmoid_range(self):
        out = Sigmoid()(Tensor(np.linspace(-5, 5, 11))).numpy()
        assert (out > 0).all() and (out < 1).all()

    def test_dropout_train_vs_eval(self):
        layer = Dropout(0.5, seed=0)
        x = Tensor(np.ones((100, 10)))
        train_out = layer(x).numpy()
        layer.eval()
        eval_out = layer(x).numpy()
        assert (train_out == 0).any()
        np.testing.assert_array_equal(eval_out, x.numpy())

    def test_dropout_preserves_expectation(self):
        layer = Dropout(0.3, seed=1)
        x = Tensor(np.ones((2000, 5)))
        out = layer(x).numpy()
        assert abs(out.mean() - 1.0) < 0.05

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestNormalisationAndEmbedding:
    def test_layernorm_zero_mean_unit_var(self):
        layer = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(10, 8)))
        out = layer(x).numpy()
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=1), 1.0, atol=1e-2)

    def test_layernorm_learnable_params(self):
        assert len(LayerNorm(4).parameters()) == 2

    def test_embedding_shape(self):
        emb = Embedding(10, 6, seed=0)
        out = emb(np.array([0, 3, 9]))
        assert out.shape == (3, 6)

    def test_embedding_out_of_range(self):
        with pytest.raises(ValueError):
            Embedding(5, 2)(np.array([7]))

    def test_embedding_gradient(self):
        emb = Embedding(4, 3, seed=0)
        out = emb(np.array([1, 1, 2]))
        out.sum().backward()
        # Row 1 used twice, row 2 once, rows 0/3 unused.
        assert emb.weight.grad[1].sum() == pytest.approx(6.0)
        assert emb.weight.grad[0].sum() == 0.0


class TestCompositeModules:
    def test_sequential_chains(self):
        net = Sequential(Linear(4, 8, seed=0), ReLU(), Linear(8, 2, seed=1))
        out = net(Tensor(np.zeros((3, 4))))
        assert out.shape == (3, 2)
        assert len(net) == 3

    def test_residual_shape_preserved(self):
        block = Residual(Linear(4, 4, seed=0))
        out = block(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 4)

    def test_mlp_structure(self):
        mlp = MLP(5, [16, 8], 3, activation="relu", dropout=0.1, layer_norm=True, seed=0)
        out = mlp(Tensor(np.zeros((4, 5))))
        assert out.shape == (4, 3)
        assert mlp.n_parameters() > 0

    def test_mlp_invalid_activation(self):
        with pytest.raises(ValueError):
            MLP(3, [4], 2, activation="swish")

    def test_named_parameters_unique(self):
        mlp = MLP(3, [4, 4], 2, seed=0)
        names = [n for n, _ in mlp.named_parameters()]
        assert len(names) == len(set(names))

    def test_train_eval_propagates(self):
        mlp = MLP(3, [4], 2, dropout=0.5, seed=0)
        mlp.eval()
        assert all(not m.training for m in mlp.modules())
        mlp.train()
        assert all(m.training for m in mlp.modules())

    def test_state_dict_roundtrip(self):
        a = MLP(3, [4], 2, seed=0)
        b = MLP(3, [4], 2, seed=99)
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(5, 3)))
        np.testing.assert_allclose(a(x).numpy(), b(x).numpy())

    def test_state_dict_mismatch_rejected(self):
        a = MLP(3, [4], 2, seed=0)
        b = MLP(3, [8], 2, seed=0)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_zero_grad_clears(self):
        mlp = MLP(3, [4], 1, seed=0)
        (mlp(Tensor(np.ones((2, 3)))) ** 2).sum().backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())


class TestLosses:
    def test_mse_zero_for_identical(self):
        pred = Tensor(np.array([[1.0, 2.0]]))
        assert mse_loss(pred, np.array([[1.0, 2.0]])).item() == 0.0

    def test_mse_matches_numpy(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(5, 3)), rng.normal(size=(5, 3))
        assert mse_loss(Tensor(a), b).item() == pytest.approx(np.mean((a - b) ** 2))

    def test_mse_sum_reduction(self):
        a = np.ones((2, 2))
        b = np.zeros((2, 2))
        assert mse_loss(Tensor(a), b, reduction="sum").item() == pytest.approx(4.0)

    def test_bce_matches_reference(self):
        logits = np.array([[0.0], [2.0], [-2.0]])
        targets = np.array([[1.0], [1.0], [0.0]])
        probs = 1.0 / (1.0 + np.exp(-logits))
        expected = -np.mean(targets * np.log(probs) + (1 - targets) * np.log(1 - probs))
        got = bce_with_logits(Tensor(logits), targets).item()
        assert got == pytest.approx(expected, rel=1e-6)

    def test_bce_extreme_logits_finite(self):
        logits = Tensor(np.array([[100.0], [-100.0]]))
        loss = bce_with_logits(logits, np.array([[0.0], [1.0]]))
        assert np.isfinite(loss.item())

    def test_cross_entropy_with_index_targets(self):
        logits = Tensor(np.array([[10.0, 0.0, 0.0], [0.0, 10.0, 0.0]]))
        loss = cross_entropy_logits(logits, np.array([0, 1]))
        assert loss.item() < 1e-3

    def test_cross_entropy_with_onehot_targets(self):
        logits = Tensor(np.zeros((2, 4)))
        onehot = np.eye(4)[:2]
        assert cross_entropy_logits(logits, onehot).item() == pytest.approx(np.log(4.0))

    def test_cross_entropy_wrong_prediction_is_costly(self):
        logits = Tensor(np.array([[10.0, 0.0]]))
        wrong = cross_entropy_logits(logits, np.array([1])).item()
        right = cross_entropy_logits(logits, np.array([0])).item()
        assert wrong > right

    def test_gaussian_kl_zero_at_prior(self):
        mu = Tensor(np.zeros((3, 2)))
        logvar = Tensor(np.zeros((3, 2)))
        assert gaussian_kl(mu, logvar).item() == pytest.approx(0.0)

    def test_gaussian_kl_positive(self):
        mu = Tensor(np.ones((3, 2)))
        logvar = Tensor(np.full((3, 2), -1.0))
        assert gaussian_kl(mu, logvar).item() > 0.0

    def test_gaussian_nll_penalises_distance(self):
        mean = Tensor(np.zeros((4, 1)))
        logvar = Tensor(np.zeros((4, 1)))
        near = gaussian_nll(mean, logvar, np.zeros((4, 1))).item()
        far = gaussian_nll(mean, logvar, np.full((4, 1), 3.0)).item()
        assert far > near

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            mse_loss(Tensor(np.ones(2)), np.ones(2), reduction="median")
