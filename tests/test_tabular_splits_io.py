"""Tests for repro.tabular.splits and repro.tabular.io."""

import json

import numpy as np
import pytest

from repro.tabular.io import read_csv, read_npz, write_csv, write_npz
from repro.tabular.splits import kfold_indices, temporal_split, train_test_split


class TestTrainTestSplit:
    def test_sizes(self, tiny_table):
        train, test = train_test_split(tiny_table, 0.25, seed=0)
        assert len(test) == 50
        assert len(train) == 150

    def test_disjoint_and_complete(self, tiny_table):
        train, test = train_test_split(tiny_table, 0.2, seed=0)
        assert len(train) + len(test) == len(tiny_table)
        combined = sorted(np.concatenate([train["x"], test["x"]]).tolist())
        assert combined == sorted(tiny_table["x"].tolist())

    def test_deterministic_by_seed(self, tiny_table):
        a, _ = train_test_split(tiny_table, 0.2, seed=7)
        b, _ = train_test_split(tiny_table, 0.2, seed=7)
        assert a == b

    def test_no_shuffle_keeps_order(self, tiny_table):
        train, test = train_test_split(tiny_table, 0.1, shuffle=False)
        np.testing.assert_array_equal(test["x"], tiny_table["x"][:20])

    def test_invalid_fraction(self, tiny_table):
        with pytest.raises(ValueError):
            train_test_split(tiny_table, 1.5)

    def test_zero_fraction(self, tiny_table):
        train, test = train_test_split(tiny_table, 0.0)
        assert len(test) == 0 and len(train) == len(tiny_table)


class TestTemporalSplit:
    def test_train_precedes_test(self, panda_table):
        train, test = temporal_split(panda_table, "creationtime", 0.3)
        assert train["creationtime"].max() <= test["creationtime"].min() + 1e-9

    def test_sizes(self, panda_table):
        train, test = temporal_split(panda_table, "creationtime", 0.25)
        assert len(test) == int(round(0.25 * len(panda_table)))


class TestKFold:
    def test_covers_all_rows(self):
        folds = list(kfold_indices(100, 5, seed=0))
        assert len(folds) == 5
        all_test = np.sort(np.concatenate([test for _, test in folds]))
        np.testing.assert_array_equal(all_test, np.arange(100))

    def test_train_test_disjoint(self):
        for train, test in kfold_indices(50, 5, seed=1):
            assert set(train).isdisjoint(set(test))

    def test_too_few_rows(self):
        with pytest.raises(ValueError):
            list(kfold_indices(3, 5))

    def test_invalid_folds(self):
        with pytest.raises(ValueError):
            list(kfold_indices(10, 1))


class TestIO:
    def test_csv_roundtrip(self, tiny_table, tmp_path):
        path = tmp_path / "table.csv"
        write_csv(tiny_table, path)
        loaded = read_csv(path)
        assert loaded.schema == tiny_table.schema
        np.testing.assert_allclose(loaded["x"], tiny_table["x"], rtol=1e-12)
        np.testing.assert_array_equal(loaded["color"], tiny_table["color"])

    def test_csv_without_schema_requires_argument(self, tiny_table, tmp_path):
        path = tmp_path / "bare.csv"
        write_csv(tiny_table, path)
        # Strip the schema comment line to emulate an external CSV.
        lines = path.read_text().splitlines()[1:]
        bare = tmp_path / "noschema.csv"
        bare.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            read_csv(bare)
        loaded = read_csv(bare, schema=tiny_table.schema)
        assert len(loaded) == len(tiny_table)

    def test_npz_roundtrip(self, tiny_table, tmp_path):
        path = tmp_path / "table.npz"
        write_npz(tiny_table, path)
        loaded = read_npz(path)
        assert loaded.schema == tiny_table.schema
        np.testing.assert_allclose(loaded["y"], tiny_table["y"])
        np.testing.assert_array_equal(loaded["status"], tiny_table["status"])

    def test_npz_stores_codes_and_vocab(self, tiny_table, tmp_path):
        # The archive layout is dictionary-encoded: int32 codes under the
        # column name plus a ::vocab companion array, no unicode row data.
        path = tmp_path / "codes.npz"
        write_npz(tiny_table, path)
        with np.load(path, allow_pickle=False) as archive:
            assert archive["color"].dtype == np.int32
            assert "color::vocab" in archive.files
            vocab = archive["color::vocab"]
            np.testing.assert_array_equal(
                vocab[archive["color"]], tiny_table["color"]
            )
        assert read_npz(path) == tiny_table

    def test_npz_reads_legacy_unicode_archives(self, tiny_table, tmp_path):
        # Archives written before the columnar data plane stored categoricals
        # as per-row unicode arrays; they must still load byte-identically.
        path = tmp_path / "legacy.npz"
        payload = {name: np.asarray(tiny_table[name]) for name in tiny_table.columns}
        payload["__schema__"] = np.asarray(
            json.dumps(tiny_table.schema.to_dict())
        )
        np.savez_compressed(path, **payload)
        loaded = read_npz(path)
        assert loaded == tiny_table
        assert loaded.vocab("color") == tiny_table.vocab("color")

    def test_npz_missing_schema_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, a=np.arange(3))
        with pytest.raises(ValueError):
            read_npz(path)

    def test_csv_roundtrip_panda(self, panda_table, tmp_path):
        small = panda_table.head(50)
        path = tmp_path / "panda.csv"
        write_csv(small, path)
        loaded = read_csv(path)
        assert loaded.schema == small.schema
        np.testing.assert_allclose(loaded["workload"], small["workload"], rtol=1e-9)
