"""Tests for repro.tabular.mixed (whole-table encoding)."""

import numpy as np
import pytest

from repro.tabular.mixed import MixedEncoder
from repro.tabular.transforms import StandardScaler


class TestMixedEncoder:
    def test_output_width(self, tiny_table):
        enc = MixedEncoder().fit(tiny_table)
        # 2 numerical + 2 categories (color) + 3 categories (status)
        assert enc.n_features == 2 + 2 + 3

    def test_block_layout_covers_all_features(self, tiny_table):
        enc = MixedEncoder().fit(tiny_table)
        widths = sum(b.width for b in enc.blocks_)
        assert widths == enc.n_features
        assert enc.blocks_[0].start == 0
        for prev, nxt in zip(enc.blocks_, enc.blocks_[1:]):
            assert nxt.start == prev.stop

    def test_transform_shape(self, tiny_table):
        enc = MixedEncoder()
        matrix = enc.fit_transform(tiny_table)
        assert matrix.values.shape == (len(tiny_table), enc.n_features)

    def test_numerical_indices(self, tiny_table):
        enc = MixedEncoder()
        matrix = enc.fit_transform(tiny_table)
        assert matrix.numerical_indices.tolist() == [0, 1]

    def test_categorical_blocks_sum_to_one(self, tiny_table):
        enc = MixedEncoder()
        matrix = enc.fit_transform(tiny_table)
        for block in matrix.categorical_blocks:
            sums = matrix.values[:, block.slice].sum(axis=1)
            np.testing.assert_allclose(sums, 1.0)

    def test_roundtrip_categoricals_exact(self, tiny_table):
        enc = MixedEncoder()
        matrix = enc.fit_transform(tiny_table)
        recovered = enc.inverse_transform(matrix.values)
        np.testing.assert_array_equal(recovered["color"], tiny_table["color"])
        np.testing.assert_array_equal(recovered["status"], tiny_table["status"])

    def test_roundtrip_numericals_close(self, tiny_table):
        enc = MixedEncoder()
        matrix = enc.fit_transform(tiny_table)
        recovered = enc.inverse_transform(matrix.values)
        # Quantile transform round-trip is approximate at the tails.
        corr = np.corrcoef(recovered["x"], tiny_table["x"])[0, 1]
        assert corr > 0.99

    def test_schema_mismatch_rejected(self, tiny_table):
        enc = MixedEncoder().fit(tiny_table)
        other = tiny_table.drop(["status"])
        with pytest.raises(ValueError):
            enc.transform(other)

    def test_wrong_matrix_width_rejected(self, tiny_table):
        enc = MixedEncoder().fit(tiny_table)
        with pytest.raises(ValueError):
            enc.inverse_transform(np.zeros((3, enc.n_features + 1)))

    def test_unfitted_raises(self, tiny_table):
        with pytest.raises(RuntimeError):
            MixedEncoder().transform(tiny_table)

    def test_custom_numerical_transform(self, tiny_table):
        enc = MixedEncoder(numerical_transform_factory=StandardScaler).fit(tiny_table)
        matrix = enc.transform(tiny_table)
        x_encoded = matrix.values[:, 0]
        assert abs(x_encoded.mean()) < 1e-9

    def test_category_cardinalities(self, tiny_table):
        enc = MixedEncoder().fit(tiny_table)
        assert enc.category_cardinalities() == [2, 3]

    def test_block_lookup(self, tiny_table):
        enc = MixedEncoder()
        matrix = enc.fit_transform(tiny_table)
        block = matrix.block("status")
        assert block.width == 3
        with pytest.raises(KeyError):
            matrix.block("missing")


class TestTransformCodes:
    def test_codes_shapes(self, tiny_table):
        enc = MixedEncoder().fit(tiny_table)
        num, cat = enc.transform_codes(tiny_table)
        assert num.shape == (len(tiny_table), 2)
        assert cat.shape == (len(tiny_table), 2)

    def test_codes_roundtrip(self, tiny_table):
        enc = MixedEncoder().fit(tiny_table)
        num, cat = enc.transform_codes(tiny_table)
        recovered = enc.inverse_transform_codes(num, cat)
        np.testing.assert_array_equal(recovered["color"], tiny_table["color"])
        np.testing.assert_array_equal(recovered["status"], tiny_table["status"])

    def test_codes_clipped_to_valid_range(self, tiny_table):
        enc = MixedEncoder().fit(tiny_table)
        num, cat = enc.transform_codes(tiny_table)
        cat = cat.astype(float) + 100.0  # out-of-range codes
        recovered = enc.inverse_transform_codes(num, cat)
        assert set(recovered["status"]) <= set(tiny_table["status"])

    def test_on_panda_table(self, train_table):
        enc = MixedEncoder().fit(train_table)
        matrix = enc.transform(train_table)
        assert matrix.n_rows == len(train_table)
        assert matrix.n_features == enc.n_features
        recovered = enc.inverse_transform(matrix.values)
        assert recovered.schema == train_table.schema
