"""Degenerate-input hardening across the surrogates and the metrics layer.

Production serving sees pathological tables: constant numerical columns,
single-category columns, tiny training sets, empty sample requests.  Every
surrogate (and the metric layer on top) must stay *finite* and
*RuntimeWarning-free* on them — the module-level filter turns any
RuntimeWarning (NaN arithmetic, zero divisions, overflow) into a failure.

The headline regression here is the Gaussian-copula NaN bug: a constant
numerical column produced a zero-variance latent, ``np.corrcoef`` filled its
row with NaN, and ``multivariate_normal(..., method="cholesky")`` turned every
sample into NaN.
"""

import numpy as np
import pytest

from repro.analysis.temporal import compare_temporal_profiles, weekly_profile
from repro.metrics.correlation import association_matrix, diff_corr
from repro.metrics.distribution import (
    jensen_shannon_divergence,
    mean_jsd,
    mean_wasserstein,
    wasserstein_1d,
)
from repro.models.ctabgan import CTABGANConfig, CTABGANPlusSurrogate
from repro.models.gaussian_copula import GaussianCopulaSurrogate
from repro.models.smote import SMOTESurrogate
from repro.models.tabddpm.model import TabDDPMConfig, TabDDPMSurrogate
from repro.models.tvae import TVAEConfig, TVAESurrogate
from repro.tabular.schema import TableSchema
from repro.tabular.table import Table
from repro.tabular.transforms import GaussianQuantileTransform

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")

CONSTANT_VALUE = 3.25


def _degenerate_table(n=220, seed=5) -> Table:
    """Mixed table with a constant numerical and a single-category column."""
    rng = np.random.default_rng(seed)
    data = {
        "x": rng.lognormal(1.0, 0.6, n),
        "const": np.full(n, CONSTANT_VALUE),
        "cat": rng.choice(["a", "b", "c"], n),
        "single": np.array(["only"] * n),
    }
    return Table(
        data,
        TableSchema.from_columns(numerical=["x", "const"], categorical=["cat", "single"]),
    )


def _tiny_table() -> Table:
    return Table(
        {
            "x": np.array([1.0, 2.0, 3.0]),
            "const": np.full(3, CONSTANT_VALUE),
            "cat": np.array(["a", "b", "a"]),
        },
        TableSchema.from_columns(numerical=["x", "const"], categorical=["cat"]),
    )


def _make_surrogate(name):
    if name == "tvae":
        return TVAESurrogate(TVAEConfig.fast(), seed=0)
    if name == "ctabgan":
        return CTABGANPlusSurrogate(CTABGANConfig.fast(), seed=0)
    if name == "tabddpm":
        return TabDDPMSurrogate(TabDDPMConfig.fast(), seed=0)
    if name == "smote":
        return SMOTESurrogate(k_neighbors=3)
    if name == "copula":
        return GaussianCopulaSurrogate()
    raise AssertionError(name)


SURROGATES = ["tvae", "ctabgan", "tabddpm", "smote", "copula"]


@pytest.fixture(scope="module")
def degenerate_table():
    return _degenerate_table()


@pytest.fixture(scope="module")
def fitted(degenerate_table):
    """All five surrogates fitted once on the degenerate table."""
    return {name: _make_surrogate(name).fit(degenerate_table) for name in SURROGATES}


class TestCopulaConstantColumn:
    """The confirmed NaN-copula bug: constant column → all-NaN samples."""

    def test_fit_sample_finite_and_exact(self, degenerate_table):
        model = GaussianCopulaSurrogate().fit(degenerate_table)
        sampled = model.sample(400, seed=1)
        assert np.isfinite(sampled["x"]).all()
        assert np.isfinite(sampled["const"]).all()
        # Constants invert exactly, not approximately.
        np.testing.assert_array_equal(sampled["const"], np.full(400, CONSTANT_VALUE))
        assert set(sampled["single"]) == {"only"}

    def test_correlation_matrix_repaired(self, degenerate_table):
        model = GaussianCopulaSurrogate().fit(degenerate_table)
        corr = model._correlation_
        assert np.isfinite(corr).all()
        # The degenerate column is modelled as independent: zero off-diagonal.
        const_idx = degenerate_table.columns.index("const")
        off = np.delete(corr[const_idx], const_idx)
        np.testing.assert_array_equal(off, np.zeros(off.size))

    def test_all_constant_table(self):
        n = 60
        table = Table(
            {"a": np.full(n, 1.5), "b": np.full(n, -2.0)},
            TableSchema.from_columns(numerical=["a", "b"]),
        )
        model = GaussianCopulaSurrogate().fit(table)
        sampled = model.sample(30, seed=3)
        np.testing.assert_array_equal(sampled["a"], np.full(30, 1.5))
        np.testing.assert_array_equal(sampled["b"], np.full(30, -2.0))


@pytest.mark.parametrize("name", SURROGATES)
class TestAllSurrogates:
    def test_degenerate_columns_sample_finite(self, fitted, name, degenerate_table):
        model = fitted[name]
        for mode in ("exact", "fast"):
            sampled = model.sample(64, seed=2, sampling_mode=mode)
            assert len(sampled) == 64
            assert sampled.schema == degenerate_table.schema
            for column in ("x", "const"):
                assert np.isfinite(sampled[column]).all(), (name, mode, column)
            assert set(sampled["single"]) == {"only"}, (name, mode)
            assert set(sampled["cat"]) <= {"a", "b", "c"}, (name, mode)

    def test_sample_zero_rows(self, fitted, name):
        for mode in ("exact", "fast"):
            sampled = fitted[name].sample(0, seed=1, sampling_mode=mode)
            assert len(sampled) == 0
            assert sampled.columns == fitted[name].schema_.names

    def test_three_row_training_table(self, name):
        model = _make_surrogate(name).fit(_tiny_table())
        sampled = model.sample(9, seed=4)
        assert len(sampled) == 9
        assert np.isfinite(sampled["x"]).all()
        assert np.isfinite(sampled["const"]).all()

    def test_save_load_round_trip(self, fitted, name, tmp_path):
        model = fitted[name]
        path = tmp_path / f"{name}.pkl"
        model.save(path)
        loaded = type(model).load(path)
        assert loaded.sample(40, seed=11) == model.sample(40, seed=11)
        # The relaxed mode must survive the round trip too (packed serving
        # caches are rebuilt, not stale-loaded).
        fast = loaded.sample(25, seed=12, sampling_mode="fast")
        assert len(fast) == 25

    def test_negative_request_rejected(self, fitted, name):
        with pytest.raises(ValueError, match="negative"):
            fitted[name].sample(-1, seed=0)


class TestTabDDPMSingleCategory:
    def test_width_one_blocks_are_carried_as_constants(self, fitted):
        model = fitted["tabddpm"]
        # The single-category block is excluded from the diffusion…
        assert all(block.width >= 2 for block, _ in model._multinomials)
        assert model._constant_onehot_indices.size == 1
        # …and decoded back to its category in both modes.
        for mode in ("exact", "fast"):
            sampled = model.sample(30, seed=6, sampling_mode=mode)
            assert set(sampled["single"]) == {"only"}


class TestQuantileTransformDegenerate:
    def test_subnormal_values_stay_finite(self):
        # Regression: knots separated by subnormal gaps overflow np.interp's
        # slope and used to leave NaN at the knots.
        x = np.array([0.0, 4.9406564584124654e-324] + [2.2250738585072014e-311] * 30)
        tf = GaussianQuantileTransform(n_quantiles=100).fit(x)
        assert np.isfinite(tf.transform(x)).all()

    def test_constant_column_round_trips_exactly(self):
        x = np.full(50, CONSTANT_VALUE)
        tf = GaussianQuantileTransform().fit(x)
        latent = tf.transform(x)
        assert np.isfinite(latent).all()
        np.testing.assert_array_equal(tf.inverse_transform(latent), x)
        # Arbitrary latents must still invert to the constant.
        np.testing.assert_array_equal(
            tf.inverse_transform(np.array([-3.0, 0.0, 5.0])), np.full(3, CONSTANT_VALUE)
        )


class TestMetricsDegenerate:
    def test_association_matrix_constant_columns(self, degenerate_table):
        matrix, _cols = association_matrix(degenerate_table)
        assert np.isfinite(matrix).all()

    def test_diff_corr_and_distribution_metrics(self, degenerate_table):
        other = _degenerate_table(seed=9)
        assert np.isfinite(diff_corr(degenerate_table, other))
        mean_wd, _ = mean_wasserstein(degenerate_table, other)
        assert np.isfinite(mean_wd)
        mean_j, _ = mean_jsd(degenerate_table, other)
        assert np.isfinite(mean_j)

    def test_constant_column_wasserstein_is_zero(self):
        const = np.full(40, CONSTANT_VALUE)
        assert wasserstein_1d(const, const) == 0.0

    def test_single_category_jsd_is_zero(self):
        a = np.array(["only"] * 30)
        assert jensen_shannon_divergence(a, a) == 0.0

    def test_weekly_corr_flat_profile_defined(self):
        # A perfectly regular stream folds onto a constant weekly profile —
        # zero variance, for which np.corrcoef would return NaN.
        flat_times = np.arange(0.005, 28.0, 0.25)
        profile = weekly_profile(flat_times, bins_per_day=4)
        assert profile.std() == 0.0
        schema = TableSchema.from_columns(numerical=["creationtime"])
        real = Table({"creationtime": flat_times}, schema)
        rng = np.random.default_rng(0)
        synth = Table({"creationtime": rng.uniform(0.0, 28.0, 600)}, schema)
        for a, b in ((real, synth), (synth, real), (real, real)):
            result = compare_temporal_profiles(a, b)
            assert result["weekly_profile_correlation"] == 0.0
            assert np.isfinite(result["weekend_suppression_gap"])
