"""Additional CLI coverage: JSON output paths and model restriction flags.

These use tiny raw-record counts and the SMOTE-only model set so each CLI
invocation stays in the sub-second-to-few-seconds range.
"""

import json

import numpy as np

from repro.experiments.cli import main as cli_main

FAST = ["--preset", "ci", "--raw-jobs", "2000", "--seed", "3"]


class TestTable1CLI:
    def test_json_payload_schema(self, capsys):
        assert cli_main(["table1", *FAST, "--models", "smote", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"scores", "ranks", "timings"}
        (score,) = payload["scores"]
        assert score["model"] == "SMOTE"
        for key in ("wd", "jsd", "diff_corr", "dcr", "diff_mlef"):
            assert isinstance(score[key], float)

    def test_multiple_models_ranked(self, capsys):
        assert cli_main(["table1", *FAST, "--models", "smote", "copula", "--no-mlef"]) == 0
        out = capsys.readouterr().out
        assert "SMOTE" in out and "GaussianCopula" in out
        assert "DCR" in out


class TestFigureCLIs:
    def test_fig2_text_table(self, capsys):
        assert cli_main(["fig2", *FAST]) == 0
        out = capsys.readouterr().out
        assert "broker" in out
        assert "least_loaded" in out

    def test_fig4_text_output(self, capsys):
        assert cli_main(["fig4", *FAST, "--models", "smote"]) == 0
        out = capsys.readouterr().out
        assert "computingsite" in out
        assert "SMOTE" in out

    def test_fig5_json_output(self, capsys):
        assert cli_main(["fig5", *FAST, "--models", "smote", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "ground_truth" in payload and "models" in payload
        matrix = np.asarray(payload["ground_truth"])
        assert matrix.shape[0] == matrix.shape[1] == len(payload["columns"])
        assert "SMOTE" in payload["models"]

    def test_fig5_text_output(self, capsys):
        assert cli_main(["fig5", *FAST, "--models", "smote"]) == 0
        out = capsys.readouterr().out
        assert "diff-CORR" in out

    def test_fig3_json_output(self, capsys):
        assert cli_main(["fig3", *FAST, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "profile" in payload and "funnel" in payload


class TestAblationCLI:
    def test_smote_sweep_text(self, capsys):
        assert cli_main(["ablations", *FAST, "--which", "smote_k"]) == 0
        out = capsys.readouterr().out
        assert "smote_k" in out
        assert "DCR" in out

    def test_smote_sweep_json(self, capsys):
        assert cli_main(["ablations", *FAST, "--which", "smote_k", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "smote_k" in payload
        assert len(payload["smote_k"]) >= 2
