"""Tests for the neural surrogates: TVAE and CTABGAN+.

Training budgets are intentionally tiny (``*.fast()`` configs) — the goal is
to verify the training loop runs, losses move, and the sampling path produces
schema-correct, plausible tables, not to reach paper-level fidelity.
"""

import numpy as np
import pytest

from repro.models.ctabgan import CTABGANConfig, CTABGANPlusSurrogate, _ConditionSampler, _ModeSpecificEncoder
from repro.models.tvae import TVAEConfig, TVAESurrogate


@pytest.fixture(scope="module")
def small_train(train_table):
    return train_table.head(600)


class TestTVAE:
    @pytest.fixture(scope="class")
    def fitted(self, train_table):
        model = TVAESurrogate(TVAEConfig.fast(), seed=0)
        model.fit(train_table.head(600))
        return model

    def test_loss_history_recorded(self, fitted):
        assert len(fitted.loss_history_) == fitted.config.epochs
        assert all(np.isfinite(v) for v in fitted.loss_history_)

    def test_loss_decreases(self, fitted):
        assert fitted.loss_history_[-1] < fitted.loss_history_[0]

    def test_sample_schema(self, fitted, train_table):
        synth = fitted.sample(200, seed=1)
        assert synth.schema == train_table.schema
        assert len(synth) == 200

    def test_sample_deterministic(self, fitted):
        assert fitted.sample(50, seed=3) == fitted.sample(50, seed=3)

    def test_categories_from_training_support(self, fitted, train_table):
        synth = fitted.sample(300, seed=2)
        for column in train_table.schema.categorical:
            assert set(np.unique(synth[column])) <= set(np.unique(train_table[column]))

    def test_numericals_within_quantile_range(self, fitted, train_table):
        synth = fitted.sample(300, seed=4)
        for column in train_table.schema.numerical:
            assert synth[column].min() >= train_table[column].min() - 1e-6
            assert synth[column].max() <= train_table[column].max() + 1e-6

    def test_sample_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TVAESurrogate(TVAEConfig.fast()).sample(5)

    def test_category_diversity(self, fitted):
        synth = fitted.sample(300, seed=5)
        # The sampler draws from the decoder softmax, so at least two
        # computing sites should appear even after a tiny training run.
        assert synth.nunique("computingsite") >= 2


class TestModeSpecificEncoder:
    def test_roundtrip(self, small_train):
        enc = _ModeSpecificEncoder(gmm_components=4, seed=0).fit(small_train)
        rng = np.random.default_rng(0)
        encoded = enc.transform(small_train, rng)
        assert encoded.shape[0] == len(small_train)
        assert encoded.shape[1] == enc.n_features
        decoded = enc.inverse_transform(encoded, small_train.schema, rng)
        assert decoded.schema == small_train.schema
        for column in small_train.schema.categorical:
            np.testing.assert_array_equal(decoded[column], small_train[column])

    def test_numerical_blocks_have_alpha_and_modes(self, small_train):
        enc = _ModeSpecificEncoder(gmm_components=4, seed=0).fit(small_train)
        for name, kind, start, width in enc.layout:
            if kind == "numerical":
                assert width >= 2  # alpha + at least one mode indicator

    def test_categorical_layout(self, small_train):
        enc = _ModeSpecificEncoder(gmm_components=3, seed=0).fit(small_train)
        names = [name for name, _, _ in enc.categorical_layout]
        assert names == small_train.schema.categorical


class TestConditionSampler:
    def test_condition_vector_one_hot(self, small_train):
        enc = _ModeSpecificEncoder(gmm_components=3, seed=0).fit(small_train)
        sampler = _ConditionSampler(small_train, enc.categorical_layout, enc.categorical_encoders)
        cond, col_choice, cat_choice, rows = sampler.sample(64, np.random.default_rng(0))
        assert cond.shape == (64, sampler.total_width)
        np.testing.assert_allclose(cond.sum(axis=1), 1.0)
        assert rows.min() >= 0 and rows.max() < len(small_train)

    def test_matching_rows_actually_match(self, small_train):
        enc = _ModeSpecificEncoder(gmm_components=3, seed=0).fit(small_train)
        sampler = _ConditionSampler(small_train, enc.categorical_layout, enc.categorical_encoders)
        cond, col_choice, cat_choice, rows = sampler.sample(128, np.random.default_rng(1))
        layout = enc.categorical_layout
        for i in range(20):
            name, _start, _width = layout[col_choice[i]]
            encoder = enc.categorical_encoders[name]
            expected_category = encoder.categories_[cat_choice[i]]
            assert small_train[name][rows[i]] == expected_category


class TestCTABGAN:
    @pytest.fixture(scope="class")
    def fitted(self, train_table):
        model = CTABGANPlusSurrogate(CTABGANConfig.fast(), seed=0)
        model.fit(train_table.head(600))
        return model

    def test_history_recorded(self, fitted):
        assert len(fitted.loss_history_) == fitted.config.epochs
        assert all(np.isfinite(h["d_loss"]) and np.isfinite(h["g_loss"]) for h in fitted.loss_history_)

    def test_sample_schema(self, fitted, train_table):
        synth = fitted.sample(150, seed=0)
        assert synth.schema == train_table.schema
        assert len(synth) == 150

    def test_sample_in_batches(self, fitted):
        # Requesting more than one batch exercises the batching loop.
        synth = fitted.sample(fitted.config.batch_size + 37, seed=1)
        assert len(synth) == fitted.config.batch_size + 37

    def test_categories_from_training_support(self, fitted, train_table):
        synth = fitted.sample(200, seed=2)
        for column in train_table.schema.categorical:
            assert set(np.unique(synth[column])) <= set(np.unique(train_table[column]))

    def test_numerical_values_finite(self, fitted):
        synth = fitted.sample(200, seed=3)
        for column in synth.schema.numerical:
            assert np.isfinite(np.asarray(synth[column])).all()

    def test_sample_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CTABGANPlusSurrogate(CTABGANConfig.fast()).sample(5)

    def test_deterministic_sampling(self, fitted):
        assert fitted.sample(60, seed=7) == fitted.sample(60, seed=7)
