"""Tests for optimisers, LR schedule and gradient clipping — including a
small end-to-end regression fit that exercises the whole nn stack."""

import numpy as np
import pytest

from repro.nn import MLP, Adam, CosineSchedule, SGD, Tensor, clip_grad_norm, mse_loss
from repro.nn.module import Parameter


def quadratic_step(optimizer_cls, **kwargs):
    """Minimise f(w) = ||w - 3||^2 for a few steps and return the trajectory."""
    w = Parameter(np.array([0.0]))
    opt = optimizer_cls([w], **kwargs)
    values = []
    for _ in range(200):
        opt.zero_grad()
        loss = ((w - 3.0) ** 2).sum()
        loss.backward()
        opt.step()
        values.append(float(w.data[0]))
    return values


class TestSGD:
    def test_converges_on_quadratic(self):
        trajectory = quadratic_step(SGD, lr=0.1)
        assert abs(trajectory[-1] - 3.0) < 1e-3

    def test_momentum_converges(self):
        trajectory = quadratic_step(SGD, lr=0.05, momentum=0.9)
        assert abs(trajectory[-1] - 3.0) < 1e-2

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_skips_parameters_without_grad(self):
        w = Parameter(np.array([1.0]))
        opt = SGD([w], lr=0.1)
        opt.step()  # no gradient accumulated; should be a no-op
        assert w.data[0] == 1.0


class TestAdam:
    def test_converges_on_quadratic(self):
        trajectory = quadratic_step(Adam, lr=0.1)
        assert abs(trajectory[-1] - 3.0) < 1e-2

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.array([5.0]))
        opt = Adam([w], lr=0.0001, weight_decay=10.0)
        opt.zero_grad()
        (w * 0.0).sum().backward()
        opt.step()
        assert abs(w.data[0]) < 5.0

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.2, 0.9))

    def test_bias_correction_first_step(self):
        # After one step with constant gradient g, Adam moves by ~lr*sign(g).
        w = Parameter(np.array([0.0]))
        opt = Adam([w], lr=0.1)
        opt.zero_grad()
        (w * 2.0).sum().backward()
        opt.step()
        assert w.data[0] == pytest.approx(-0.1, rel=1e-3)


class TestCosineSchedule:
    def test_starts_at_base_lr(self):
        opt = Adam([Parameter(np.zeros(1))], lr=1e-3)
        sched = CosineSchedule(opt, total_steps=100)
        assert sched.lr_at(0) == pytest.approx(1e-3)

    def test_ends_at_min_lr(self):
        opt = Adam([Parameter(np.zeros(1))], lr=1e-3)
        sched = CosineSchedule(opt, total_steps=10, min_lr=1e-5)
        assert sched.lr_at(10) == pytest.approx(1e-5)

    def test_monotone_decay(self):
        opt = Adam([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineSchedule(opt, total_steps=50)
        lrs = [sched.step() for _ in range(50)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_step_updates_optimizer(self):
        opt = Adam([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineSchedule(opt, total_steps=2)
        sched.step()
        assert opt.lr < 1.0

    def test_invalid_total_steps(self):
        opt = Adam([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            CosineSchedule(opt, total_steps=0)


class TestGradClipping:
    def test_norm_reduced(self):
        w = Parameter(np.ones(4))
        (w * 100.0).sum().backward()
        norm_before = np.linalg.norm(w.grad)
        returned = clip_grad_norm([w], max_norm=1.0)
        assert returned == pytest.approx(norm_before)
        assert np.linalg.norm(w.grad) <= 1.0 + 1e-9

    def test_small_gradients_untouched(self):
        w = Parameter(np.ones(2))
        (w * 0.01).sum().backward()
        before = w.grad.copy()
        clip_grad_norm([w], max_norm=10.0)
        np.testing.assert_array_equal(w.grad, before)

    def test_no_grads_returns_zero(self):
        assert clip_grad_norm([Parameter(np.ones(2))], 1.0) == 0.0


class TestEndToEndTraining:
    def test_mlp_fits_linear_function(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(256, 3))
        y = (X @ np.array([1.0, -2.0, 0.5]))[:, None] + 0.3
        model = MLP(3, [32], 1, activation="relu", seed=0)
        opt = Adam(model.parameters(), lr=1e-2)
        first_loss = None
        for step in range(300):
            opt.zero_grad()
            loss = mse_loss(model(Tensor(X)), y)
            loss.backward()
            opt.step()
            if first_loss is None:
                first_loss = loss.item()
        final_loss = mse_loss(model(Tensor(X)), y).item()
        assert final_loss < 0.05 * first_loss


class TestBitExactSteps:
    """In-place flat-buffer steps against hand-computed reference updates."""

    def test_sgd_momentum_bit_exact(self):
        w0 = np.array([1.0, -2.0, 0.5])
        grads = [np.array([0.3, -0.1, 0.7]), np.array([-0.2, 0.4, 0.1])]
        lr, momentum = 0.1, 0.9
        # Hand-computed reference: v = m*v + g ; w -= lr*v
        w_ref = w0.copy()
        v = np.zeros_like(w_ref)
        for g in grads:
            v = momentum * v + g
            w_ref = w_ref - lr * v
        w = Parameter(w0.copy())
        opt = SGD([w], lr=lr, momentum=momentum)
        for g in grads:
            opt.zero_grad()
            (w * g).sum().backward()
            opt.step()
        np.testing.assert_array_equal(w.data, w_ref)

    def test_adam_bit_exact(self):
        w0 = np.array([0.25, -1.5])
        grads = [np.array([1.0, -2.0]), np.array([0.5, 0.5]), np.array([-0.25, 3.0])]
        lr, b1, b2, eps, wd = 2e-3, 0.9, 0.999, 1e-8, 0.01
        w_ref = w0.copy()
        m = np.zeros_like(w_ref)
        v = np.zeros_like(w_ref)
        for t, g in enumerate(grads, start=1):
            m = b1 * m + (1.0 - b1) * g
            v = b2 * v + (1.0 - b2) * g * g
            m_hat = m / (1.0 - b1 ** t)
            v_hat = v / (1.0 - b2 ** t)
            w_ref = w_ref - lr * wd * w_ref
            w_ref = w_ref - lr * m_hat / (np.sqrt(v_hat) + eps)
        w = Parameter(w0.copy())
        opt = Adam([w], lr=lr, betas=(b1, b2), eps=eps, weight_decay=wd)
        for g in grads:
            opt.zero_grad()
            (w * g).sum().backward()
            opt.step()
        np.testing.assert_array_equal(w.data, w_ref)

    def test_flat_buffers_back_parameter_data(self):
        # Flattening repacks parameter storage into one buffer; the views
        # must keep tracking updates and survive a grad produced off-buffer.
        a = Parameter(np.ones((2, 2)))
        b = Parameter(np.ones(3))
        opt = Adam([a, b], lr=0.1)
        assert a.data.base is not None and b.data.base is not None
        (a.sum() + b.sum()).backward()
        opt.step()
        assert not np.allclose(a.data, 1.0) and not np.allclose(b.data, 1.0)

    def test_load_state_dict_falls_back_to_per_parameter(self):
        model = MLP(3, [4], 1, seed=0)
        opt = Adam(model.parameters(), lr=0.1)
        x = np.random.default_rng(0).normal(size=(8, 3))
        loss = mse_loss(model(Tensor(x)), np.zeros((8, 1)))
        loss.backward()
        opt.step()
        # Re-assigning parameter storage severs the flat views; the next step
        # must still apply (through the per-parameter fallback path).
        model.load_state_dict({k: v * 2.0 for k, v in model.state_dict().items()})
        before = model.state_dict()
        opt.zero_grad()
        loss = mse_loss(model(Tensor(x)), np.zeros((8, 1)))
        loss.backward()
        opt.step()
        after = model.state_dict()
        assert any(not np.array_equal(before[k], after[k]) for k in before)
