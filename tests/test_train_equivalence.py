"""Seed-vs-optimized equivalence for the fused model-training stack.

The rebuilt training paths — fused Linear+activation autograd nodes,
in-place flat-buffer optimizers, fused mixed losses / block activations, the
vectorised multinomial diffusion and the batched condition sampler — must be
*bit-identical* to the seed implementations kept in
``benchmarks/seed_baselines.py``: same per-epoch losses, same trained
parameters, same samples for a fixed seed.  The tests run on both the PanDA
table (few, high-cardinality categoricals) and a wide mixed table (many
small one-hot blocks), the two shapes the fused block layout treats
differently.
"""

import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "benchmarks"))

from seed_baselines import (  # noqa: E402
    SeedAdam,
    SeedCTABGANSurrogate,
    SeedConditionSampler,
    SeedSGD,
    SeedTVAESurrogate,
    SeedTabDDPMSurrogate,
)

from repro.models.ctabgan import (  # noqa: E402
    CTABGANConfig,
    CTABGANPlusSurrogate,
    _ConditionSampler,
    _ModeSpecificEncoder,
)
from repro.models.tabddpm.model import TabDDPMConfig, TabDDPMSurrogate  # noqa: E402
from repro.models.tvae import TVAEConfig, TVAESurrogate  # noqa: E402
from repro.nn import MLP, Adam, SGD, Tensor, mse_loss  # noqa: E402
from repro.tabular.schema import TableSchema  # noqa: E402
from repro.tabular.table import Table  # noqa: E402


def _wide_table(n_rows=700, n_num=4, n_cat=24, kmax=6, seed=11):
    rng = np.random.default_rng(seed)
    data = {}
    num = [f"x{j}" for j in range(n_num)]
    cat = [f"c{j}" for j in range(n_cat)]
    for name in num:
        data[name] = rng.normal(size=n_rows) * rng.uniform(0.5, 20)
    for name in cat:
        k = int(rng.integers(2, kmax))
        data[name] = rng.choice([f"v{i}" for i in range(k)], size=n_rows)
    return Table(data, TableSchema.from_columns(numerical=num, categorical=cat))


@pytest.fixture(scope="module")
def wide_table():
    return _wide_table()


def _net_params(model):
    values = []
    for attr in ("_encoder_net", "_decoder_net", "_generator", "_discriminator", "_denoiser"):
        net = getattr(model, attr, None)
        if net is not None:
            values.extend(v for _, v in sorted(net.state_dict().items()))
    return values


def _assert_bit_identical(seed_model, opt_model, table):
    seed_model.fit(table)
    opt_model.fit(table)
    assert seed_model.loss_history_ == opt_model.loss_history_
    seed_params = _net_params(seed_model)
    opt_params = _net_params(opt_model)
    assert len(seed_params) == len(opt_params) > 0
    for a, b in zip(seed_params, opt_params):
        np.testing.assert_array_equal(a, b)
    assert seed_model.sample(200, seed=42) == opt_model.sample(200, seed=42)


class TestModelTrainingEquivalence:
    @pytest.mark.parametrize("table_name", ["panda", "wide"])
    def test_tvae(self, train_table, wide_table, table_name):
        table = train_table.head(600) if table_name == "panda" else wide_table
        _assert_bit_identical(
            SeedTVAESurrogate(TVAEConfig.fast(), seed=3),
            TVAESurrogate(TVAEConfig.fast(), seed=3),
            table,
        )

    @pytest.mark.parametrize("table_name", ["panda", "wide"])
    def test_ctabgan(self, train_table, wide_table, table_name):
        table = train_table.head(600) if table_name == "panda" else wide_table
        _assert_bit_identical(
            SeedCTABGANSurrogate(CTABGANConfig.fast(), seed=3),
            CTABGANPlusSurrogate(CTABGANConfig.fast(), seed=3),
            table,
        )

    @pytest.mark.parametrize("table_name", ["panda", "wide"])
    def test_tabddpm(self, train_table, wide_table, table_name):
        table = train_table.head(600) if table_name == "panda" else wide_table
        _assert_bit_identical(
            SeedTabDDPMSurrogate(TabDDPMConfig.fast(), seed=3),
            TabDDPMSurrogate(TabDDPMConfig.fast(), seed=3),
            table,
        )


class TestFusedNNEquivalence:
    """Fused MLP + in-place optimizers against the unfused composition."""

    @pytest.mark.parametrize("activation", ["relu", "leaky_relu", "tanh", "sigmoid"])
    def test_fused_mlp_training_bitwise(self, activation):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(64, 6))
        Y = rng.normal(size=(64, 2))

        def train(fused, optimizer_cls):
            model = MLP(6, [16, 8], 2, activation=activation, dropout=0.25, fused=fused, seed=3)
            opt = optimizer_cls(model.parameters(), lr=0.01)
            for _ in range(12):
                loss = mse_loss(model(Tensor(X)), Y)
                opt.zero_grad()
                loss.backward()
                opt.step()
            return loss.item(), sorted(model.state_dict().items())

        # The seed optimizers allocate fresh arrays per parameter per step;
        # the live ones update flat buffers in place.  Both must agree.
        for opt_pair in ((SeedAdam, Adam), (SeedSGD, SGD)):
            seed_opt, live_opt = opt_pair
            l1, s1 = train(False, seed_opt)
            l2, s2 = train(True, live_opt)
            assert l1 == l2
            for (_, a), (_, b) in zip(s1, s2):
                np.testing.assert_array_equal(a, b)


class TestConditionSamplerEquivalence:
    def test_batched_sampler_matches_seed_loop(self, wide_table):
        encoder = _ModeSpecificEncoder(3, 0).fit(wide_table)
        layout = encoder.categorical_layout
        seed_sampler = SeedConditionSampler(wide_table, layout, encoder.categorical_encoders)
        opt_sampler = _ConditionSampler(wide_table, layout, encoder.categorical_encoders)
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        for _ in range(20):
            out_a = seed_sampler.sample(96, rng_a)
            out_b = opt_sampler.sample(96, rng_b)
            for x, y in zip(out_a, out_b):
                np.testing.assert_array_equal(x, y)
        # The RNG streams stayed aligned draw for draw.
        assert rng_a.integers(0, 1 << 40) == rng_b.integers(0, 1 << 40)
