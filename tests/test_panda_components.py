"""Tests for the PanDA substrate components: sites, DAOD catalog, users, temporal
process and workload derivation."""

import numpy as np
import pytest

from repro.panda.daod import (
    DatasetCatalog,
    is_daod,
    parse_dataset_name,
)
from repro.panda.sites import ComputingSite, SiteCatalog
from repro.panda.temporal import ArrivalProcess, CampaignBurst
from repro.panda.users import UserPopulation
from repro.panda.workload import hs23_workload, sample_core_counts, sample_cpu_time_hours


class TestSiteCatalog:
    def test_default_size(self):
        catalog = SiteCatalog.default(25, seed=0)
        assert len(catalog) == 25
        assert len(set(catalog.names)) == 25

    def test_popularity_normalised_and_skewed(self):
        catalog = SiteCatalog.default(30, seed=0)
        assert catalog.popularity.sum() == pytest.approx(1.0)
        assert catalog.popularity[0] > catalog.popularity[-1]

    def test_bnl_is_most_popular(self):
        catalog = SiteCatalog.default(40, seed=0)
        assert catalog.sites[int(np.argmax(catalog.popularity))].name == "BNL"

    def test_lookup(self):
        catalog = SiteCatalog.default(10, seed=0)
        assert catalog["BNL"].name == "BNL"
        assert "BNL" in catalog
        with pytest.raises(KeyError):
            catalog["NOWHERE"]

    def test_hs23_lookup_vectorised(self):
        catalog = SiteCatalog.default(10, seed=0)
        values = catalog.hs23_of(["BNL", "BNL", "TRIUMF"])
        assert values.shape == (3,)
        assert values[0] == values[1] == catalog["BNL"].hs23_per_core

    def test_reliability_range(self):
        catalog = SiteCatalog.default(50, seed=1)
        rel = catalog.reliability_of(catalog.names)
        assert (rel >= 0.7).all() and (rel <= 0.995).all()

    def test_sample_sites_respects_popularity(self):
        catalog = SiteCatalog.default(20, seed=0)
        draws = catalog.sample_sites(5000, np.random.default_rng(0))
        top_fraction = np.mean(draws == catalog.names[0])
        bottom_fraction = np.mean(draws == catalog.names[-1])
        assert top_fraction > bottom_fraction

    def test_more_sites_than_builtin_names(self):
        catalog = SiteCatalog.default(70, seed=0)
        assert len(catalog) == 70

    def test_deterministic_by_seed(self):
        a = SiteCatalog.default(15, seed=5)
        b = SiteCatalog.default(15, seed=5)
        assert [s.hs23_per_core for s in a.sites] == [s.hs23_per_core for s in b.sites]

    def test_core_hours_conversion(self):
        site = ComputingSite("X", hs23_per_core=10.0, n_cores=100, reliability=0.9, region="EU")
        np.testing.assert_allclose(site.core_hours_to_workload(np.array([2.0])), [20.0])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SiteCatalog([], None)
        with pytest.raises(ValueError):
            SiteCatalog.default(0)


class TestDatasetNomenclature:
    def test_parse_roundtrip_fields(self):
        name = "mc23_13p6TeV.123456.e8514_s4162_r14622.deriv.DAOD_PHYS.p0012"
        parsed = parse_dataset_name(name)
        assert parsed["project"] == "mc23_13p6TeV"
        assert parsed["prodstep"] == "deriv"
        assert parsed["datatype"] == "DAOD_PHYS"
        assert parsed["version"] == "p0012"

    def test_parse_invalid_name(self):
        with pytest.raises(ValueError):
            parse_dataset_name("not.a.dataset")

    def test_is_daod(self):
        assert is_daod("DAOD_PHYSLITE")
        assert not is_daod("AOD")


class TestDatasetCatalog:
    def test_size_and_fraction(self):
        catalog = DatasetCatalog(500, daod_fraction=0.8, seed=0)
        assert len(catalog) == 500
        daod_fraction = len(catalog.daod_datasets) / len(catalog)
        assert 0.7 < daod_fraction < 0.9

    def test_names_are_parseable(self):
        catalog = DatasetCatalog(100, seed=1)
        for record in catalog.datasets[:20]:
            parsed = parse_dataset_name(record.name)
            assert parsed["project"] == record.project
            assert parsed["datatype"] == record.datatype

    def test_popularity_distribution(self):
        catalog = DatasetCatalog(200, seed=0)
        assert catalog.popularity.sum() == pytest.approx(1.0)
        draws = catalog.sample_indices(1000, np.random.default_rng(0))
        assert draws.min() >= 0 and draws.max() < 200

    def test_file_counts_positive(self):
        catalog = DatasetCatalog(300, seed=2)
        assert all(d.n_files >= 1 for d in catalog.datasets)
        assert all(d.total_bytes > 0 for d in catalog.datasets)

    def test_physlite_smaller_than_aod_on_average(self):
        catalog = DatasetCatalog(3000, seed=3)
        lite = [d.total_bytes / d.n_files for d in catalog.datasets if d.datatype == "DAOD_PHYSLITE"]
        aod = [d.total_bytes / d.n_files for d in catalog.datasets if d.datatype == "AOD"]
        assert np.mean(lite) < np.mean(aod)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DatasetCatalog(0)
        with pytest.raises(ValueError):
            DatasetCatalog(10, daod_fraction=0.0)


class TestUserPopulation:
    def test_default_population(self):
        users = UserPopulation.default(100, seed=0)
        assert len(users) == 100
        assert users.activity_distribution.sum() == pytest.approx(1.0)

    def test_activity_heterogeneous(self):
        users = UserPopulation.default(300, seed=1)
        top = users.top_users(10)
        top_share = sum(users.activity_distribution[users.users.index(u)] for u in top)
        assert top_share > 10 / 300  # heavier than uniform

    def test_sampling(self):
        users = UserPopulation.default(50, seed=2)
        draws = users.sample_users(1000, np.random.default_rng(0))
        assert draws.min() >= 0 and draws.max() < 50

    def test_invalid(self):
        with pytest.raises(ValueError):
            UserPopulation([])
        with pytest.raises(ValueError):
            UserPopulation.default(0)


class TestArrivalProcess:
    def test_sample_times_in_window(self):
        process = ArrivalProcess.default(60.0, seed=0)
        times = process.sample_times(2000, seed=1)
        assert times.min() >= 0.0 and times.max() <= 60.0
        assert times.shape == (2000,)

    def test_sorted_output(self):
        times = ArrivalProcess.default(30.0, seed=0).sample_times(500, seed=2)
        assert np.all(np.diff(times) >= 0)

    def test_zero_jobs(self):
        assert ArrivalProcess.default(10.0, seed=0).sample_times(0, seed=0).size == 0

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            ArrivalProcess.default(10.0, seed=0).sample_times(-1)

    def test_weekend_suppression(self):
        process = ArrivalProcess(n_days=70.0, diurnal_amplitude=0.0, weekly_amplitude=0.5, bursts=[])
        times = process.sample_times(40_000, seed=3)
        day_of_week = np.floor(times) % 7
        weekend_rate = np.mean(day_of_week >= 5) / (2 / 7)
        weekday_rate = np.mean(day_of_week < 5) / (5 / 7)
        assert weekend_rate < weekday_rate

    def test_burst_increases_local_rate(self):
        burst = CampaignBurst(center_day=10.0, amplitude=5.0, width_days=1.0)
        process = ArrivalProcess(n_days=20.0, diurnal_amplitude=0.0, weekly_amplitude=0.0,
                                 drift_scale=0.0, bursts=[burst])
        times = process.sample_times(30_000, seed=4)
        near_burst = np.mean(np.abs(times - 10.0) < 1.0)
        elsewhere = np.mean(np.abs(times - 15.0) < 1.0)
        assert near_burst > 2.0 * elsewhere

    def test_expected_profile_positive(self):
        grid, rate = ArrivalProcess.default(50.0, seed=0).expected_profile()
        assert (rate > 0).all()

    def test_rate_multiplier_peaks_at_center(self):
        burst = CampaignBurst(center_day=5.0, amplitude=2.0, width_days=1.0)
        values = burst.rate_multiplier(np.array([0.0, 5.0, 10.0]))
        assert values[1] == values.max()


class TestWorkloadDerivation:
    def test_hs23_workload_formula(self):
        out = hs23_workload(np.array([8.0]), np.array([2.0]), np.array([12.5]))
        np.testing.assert_allclose(out, [8.0 * 2.0 * 12.5])

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            hs23_workload(np.array([-1.0]), np.array([1.0]), np.array([1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hs23_workload(np.array([1.0, 2.0]), np.array([1.0]), np.array([1.0]))

    def test_cpu_time_scales_with_bytes(self):
        rng = np.random.default_rng(0)
        small = sample_cpu_time_hours(
            np.full(2000, 10.0), np.full(2000, 1e9), ["DAOD_PHYS"] * 2000, rng
        )
        rng = np.random.default_rng(0)
        large = sample_cpu_time_hours(
            np.full(2000, 10.0), np.full(2000, 100e9), ["DAOD_PHYS"] * 2000, rng
        )
        assert large.mean() > 10.0 * small.mean()

    def test_physlite_cheaper_than_phys(self):
        rng = np.random.default_rng(1)
        lite = sample_cpu_time_hours(
            np.full(3000, 10.0), np.full(3000, 10e9), ["DAOD_PHYSLITE"] * 3000, rng
        )
        rng = np.random.default_rng(1)
        phys = sample_cpu_time_hours(
            np.full(3000, 10.0), np.full(3000, 10e9), ["DAOD_PHYS"] * 3000, rng
        )
        assert lite.mean() < phys.mean()

    def test_core_counts_valid(self):
        cores = sample_core_counts(1000, np.random.default_rng(0))
        assert set(np.unique(cores)) <= {1.0, 2.0, 4.0, 8.0, 16.0}
