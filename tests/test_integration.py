"""End-to-end integration tests across the whole pipeline.

These mirror the paper's workflow (generate → filter → split → fit → sample →
evaluate → consume downstream) on deliberately tiny budgets, and check the
*orderings* the paper reports rather than absolute metric values.
"""

import numpy as np
import pytest

from repro import (
    GeneratorConfig,
    PandaWorkloadGenerator,
    create_surrogate,
    evaluate_surrogate_data,
)
from repro.metrics.report import format_table, rank_models
from repro.models.tabddpm import TabDDPMConfig, TabDDPMSurrogate
from repro.models.tvae import TVAEConfig, TVAESurrogate
from repro.scheduler.broker import LeastLoadedBroker
from repro.scheduler.cluster import GridCluster
from repro.scheduler.jobs import jobs_from_table
from repro.scheduler.simulator import GridSimulator
from repro.tabular import train_test_split
from repro.tabular.io import read_npz, write_npz


class TestEndToEndSurrogatePipeline:
    @pytest.fixture(scope="class")
    def pipeline_outputs(self, train_table, test_table):
        """Fit SMOTE (strong baseline) and a small TabDDPM on the shared trace."""
        smote = create_surrogate("smote")
        smote.fit(train_table)
        smote_synth = smote.sample(len(train_table), seed=0)

        ddpm = TabDDPMSurrogate(
            TabDDPMConfig(n_timesteps=25, hidden_dims=(96,), epochs=12, batch_size=256),
            seed=0,
        )
        ddpm.fit(train_table)
        ddpm_synth = ddpm.sample(len(train_table), seed=1)

        smote_score = evaluate_surrogate_data(
            "SMOTE", train_table, test_table, smote_synth, compute_mlef=False
        )
        ddpm_score = evaluate_surrogate_data(
            "TabDDPM", train_table, test_table, ddpm_synth, compute_mlef=False
        )
        return {
            "smote": (smote_synth, smote_score),
            "tabddpm": (ddpm_synth, ddpm_score),
        }

    def test_both_models_produce_valid_tables(self, pipeline_outputs, train_table):
        for synth, _score in pipeline_outputs.values():
            assert synth.schema == train_table.schema
            assert len(synth) == len(train_table)

    def test_smote_fidelity_is_tight(self, pipeline_outputs):
        _, score = pipeline_outputs["smote"]
        assert score.wd < 0.05
        assert score.jsd < 0.1
        assert score.diff_corr < 0.15

    def test_privacy_ordering_matches_paper(self, pipeline_outputs):
        """The paper's core finding: SMOTE has (much) lower DCR than TabDDPM."""
        _, smote_score = pipeline_outputs["smote"]
        _, ddpm_score = pipeline_outputs["tabddpm"]
        assert smote_score.dcr < ddpm_score.dcr

    def test_report_table_renders(self, pipeline_outputs):
        scores = [score for _, score in pipeline_outputs.values()]
        text = format_table(scores)
        assert "SMOTE" in text and "TabDDPM" in text
        ranks = rank_models(scores)
        assert ranks["DCR"][0] == "TabDDPM"

    def test_synthetic_drives_grid_simulation(self, pipeline_outputs, panda_generator, test_table):
        synth, _ = pipeline_outputs["tabddpm"]
        real_jobs = jobs_from_table(test_table)[:400]
        synth_jobs = jobs_from_table(synth)[:400]
        real_result = GridSimulator(
            GridCluster(panda_generator.sites, capacity_scale=0.004), LeastLoadedBroker()
        ).run(real_jobs)
        synth_result = GridSimulator(
            GridCluster(panda_generator.sites, capacity_scale=0.004), LeastLoadedBroker()
        ).run(synth_jobs)
        assert real_result.n_completed == 400
        assert synth_result.n_completed == 400
        # The synthetic workload should keep utilisation within the same ballpark.
        assert abs(real_result.mean_utilization - synth_result.mean_utilization) < 0.5

    def test_synthetic_table_roundtrips_through_io(self, pipeline_outputs, tmp_path):
        synth, _ = pipeline_outputs["smote"]
        path = tmp_path / "synthetic.npz"
        write_npz(synth, path)
        loaded = read_npz(path)
        assert loaded == synth


class TestSmallFreshPipeline:
    def test_generate_fit_evaluate_from_scratch(self):
        generator = PandaWorkloadGenerator(GeneratorConfig(n_jobs=1500, n_days=30.0, seed=21))
        table = generator.generate_training_table()
        train, test = train_test_split(table, 0.2, seed=21)
        model = TVAESurrogate(TVAEConfig.fast(), seed=1)
        model.fit(train)
        synth = model.sample(len(train), seed=2)
        score = evaluate_surrogate_data("TVAE", train, test, synth, compute_mlef=False)
        assert np.isfinite(score.wd)
        assert np.isfinite(score.jsd)
        assert score.dcr > 0.0

    def test_different_generator_seeds_give_different_traces(self):
        a = PandaWorkloadGenerator(GeneratorConfig(n_jobs=800, seed=1)).generate_training_table()
        b = PandaWorkloadGenerator(GeneratorConfig(n_jobs=800, seed=2)).generate_training_table()
        assert a != b

    def test_held_out_real_data_scores_well_as_synthetic(self, train_table, test_table):
        """Sanity anchor: real held-out data is the gold standard for every
        fidelity metric, so every metric should be small (but DCR non-zero)."""
        sized_test = test_table.sample(min(len(test_table), len(train_table)), seed=0)
        score = evaluate_surrogate_data(
            "real-test", train_table, test_table, sized_test, compute_mlef=False
        )
        assert score.wd < 0.05
        assert score.jsd < 0.1
        assert score.diff_corr < 0.2
        assert score.dcr > 0.0
