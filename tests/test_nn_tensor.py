"""Tests for the autograd engine, including finite-difference gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, no_grad


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued fn with respect to x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(x)
        flat[i] = original - eps
        down = fn(x)
        flat[i] = original
        grad_flat[i] = (up - down) / (2.0 * eps)
    return grad


def check_gradient(build_loss, shape, seed=0, rtol=1e-4, atol=1e-6):
    """Compare autograd gradient against finite differences."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(0.0, 1.0, size=shape)

    def scalar_fn(values):
        t = Tensor(values.copy(), requires_grad=True)
        return build_loss(t).item()

    t = Tensor(x0.copy(), requires_grad=True)
    loss = build_loss(t)
    loss.backward()
    expected = numeric_grad(scalar_fn, x0.copy())
    np.testing.assert_allclose(t.grad, expected, rtol=rtol, atol=atol)


class TestBasicOps:
    def test_add_backward(self):
        check_gradient(lambda t: (t + 3.0).sum(), (4,))

    def test_sub_backward(self):
        check_gradient(lambda t: (5.0 - t).sum(), (3, 2))

    def test_mul_backward(self):
        check_gradient(lambda t: (t * t).sum(), (5,))

    def test_div_backward(self):
        check_gradient(lambda t: (t / 2.5).sum(), (4,))

    def test_rdiv_backward(self):
        check_gradient(lambda t: (1.0 / (t + 10.0)).sum(), (4,))

    def test_pow_backward(self):
        check_gradient(lambda t: (t ** 3).sum(), (6,))

    def test_neg_backward(self):
        check_gradient(lambda t: (-t).sum(), (3,))

    def test_matmul_backward(self):
        w = np.random.default_rng(1).normal(size=(4, 3))
        check_gradient(lambda t: (t @ Tensor(w)).sum(), (2, 4))

    def test_matmul_other_side(self):
        x = np.random.default_rng(2).normal(size=(3, 4))
        check_gradient(lambda t: (Tensor(x) @ t).sum(), (4, 2))

    def test_broadcast_add_bias(self):
        x = np.random.default_rng(3).normal(size=(5, 3))
        check_gradient(lambda t: ((Tensor(x) + t) ** 2).sum(), (3,))

    def test_broadcast_mul(self):
        x = np.random.default_rng(4).normal(size=(5, 3))
        check_gradient(lambda t: ((Tensor(x) * t) ** 2).sum(), (1, 3))


class TestElementwise:
    def test_exp(self):
        check_gradient(lambda t: t.exp().sum(), (4,))

    def test_log(self):
        check_gradient(lambda t: (t.exp() + 1.0).log().sum(), (4,))

    def test_sqrt(self):
        check_gradient(lambda t: (t * t + 1.0).sqrt().sum(), (4,))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum(), (5,))

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid().sum(), (5,))

    def test_relu(self):
        check_gradient(lambda t: (t.relu() * t.relu()).sum(), (6,), seed=7)

    def test_leaky_relu(self):
        check_gradient(lambda t: t.leaky_relu(0.1).sum(), (6,), seed=8)

    def test_clip_gradient_masked(self):
        t = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0, 0.0])

    def test_maximum(self):
        t = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        t.maximum(0.0).sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0])


class TestReductionsAndShapes:
    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), (3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda t: (t - t.sum(axis=1, keepdims=True)).sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), (3, 4))

    def test_mean_all(self):
        check_gradient(lambda t: t.mean() * 3.0, (4, 2))

    def test_var(self):
        check_gradient(lambda t: t.var(axis=0).sum(), (6, 2))

    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(6) ** 2).sum(), (2, 3))

    def test_transpose(self):
        w = np.random.default_rng(5).normal(size=(2, 3))
        check_gradient(lambda t: (t.T * Tensor(w)).sum(), (3, 2))

    def test_getitem_rows(self):
        check_gradient(lambda t: (t[np.array([0, 2])] ** 2).sum(), (4, 3))

    def test_getitem_slice_columns(self):
        check_gradient(lambda t: (t[:, 1:3] ** 2).sum(), (4, 5))

    def test_getitem_repeated_indices_accumulate(self):
        t = Tensor(np.ones((3, 2)), requires_grad=True)
        (t[np.array([0, 0, 1])]).sum().backward()
        np.testing.assert_array_equal(t.grad[:, 0], [2.0, 1.0, 0.0])

    def test_concat(self):
        a = Tensor(np.random.default_rng(0).normal(size=(2, 3)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(2, 2)), requires_grad=True)
        out = Tensor.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out ** 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a.data)
        np.testing.assert_allclose(b.grad, 2 * b.data)

    def test_log_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(2).normal(size=(4, 6)))
        probs = t.softmax(axis=-1).numpy()
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)

    def test_log_softmax_gradient(self):
        target = np.zeros((3, 4))
        target[np.arange(3), [0, 1, 2]] = 1.0
        check_gradient(
            lambda t: -(t.log_softmax(axis=-1) * Tensor(target)).sum(), (3, 4), seed=11
        )


class TestGraphMechanics:
    def test_backward_requires_scalar_or_grad(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_grad_accumulates_across_backwards(self):
        t = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (t * 2).sum().backward()
        (t * 2).sum().backward()
        np.testing.assert_array_equal(t.grad, [4.0, 4.0])

    def test_zero_grad(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 3).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_detach_cuts_graph(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_no_grad_context(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        with no_grad():
            out = (t * 2).sum()
        assert not out.requires_grad

    def test_shared_subexpression(self):
        # y = (x*x) used twice; gradient must count both paths.
        t = Tensor(np.array([3.0]), requires_grad=True)
        sq = t * t
        (sq + sq).sum().backward()
        np.testing.assert_allclose(t.grad, [12.0])

    def test_diamond_graph(self):
        check_gradient(lambda t: ((t * 2) + (t ** 2)).sum(), (5,), seed=13)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_linear_layer_gradient_property(self, n, d):
        rng = np.random.default_rng(n * 17 + d)
        x = rng.normal(size=(n, d))
        w0 = rng.normal(size=(d, 3))

        def loss(t):
            return ((Tensor(x) @ t) ** 2).mean()

        t = Tensor(w0.copy(), requires_grad=True)
        loss(t).backward()
        expected = numeric_grad(lambda v: ((x @ v) ** 2).mean(), w0.copy())
        np.testing.assert_allclose(t.grad, expected, rtol=1e-4, atol=1e-6)
