"""Fault tolerance is provable equality: every recovered fault must leave bytes.

The sharding seed contract (chunk ``i`` draws from the ``i``-th seed child)
means a re-executed chunk — after a worker kill, a retried failure, an
abandoned deadline, or as a hedged duplicate — regenerates identical output.
So each fault path is tested against the fault-free single-process reference,
not against statistics:

* worker kill mid-chunk → pool supervision rebuilds and resubmits → bytes;
* transient chunk failure → bounded retry/backoff → bytes;
* straggler chunk → deadline resubmission and hedging → bytes;
* pool collapse (restart budget exhausted) → the service degrades to
  in-process generation with zero lost requests → bytes.

Faults come from the deterministic :mod:`repro.serve.faults` harness: plans
are seedable/parsable data, and their exactly-once token latch lives on disk
so a fault fires the planned number of times across processes, retries and
executor rebuilds.
"""

import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.models.base import Surrogate
from repro.models.gaussian_copula import GaussianCopulaSurrogate
from repro.models.smote import SMOTESurrogate
from repro.serve import (
    ChunkError,
    ChunkPolicy,
    Fault,
    FaultPlan,
    InjectedFault,
    SamplingService,
    ServiceOverloaded,
    ShardedSampler,
)
from repro.tabular.schema import TableSchema
from repro.tabular.table import Table
from repro.utils.parallel import WorkerPoolBroken

N_ROWS = 300
CHUNK = 50  # chunk plan: six 50-row chunks
SEED = 17
MODES = ("exact", "fast")


def _serving_table(n=400, seed=23):
    rng = np.random.default_rng(seed)
    data = {
        "x": np.round(rng.lognormal(1.0, 0.7, n), 2),
        "cat": rng.choice(["a", "b", "c"], n),
        "site": rng.choice([f"s{i}" for i in range(7)], n),
    }
    return Table(
        data, TableSchema.from_columns(numerical=["x"], categorical=["cat", "site"])
    )


@pytest.fixture(scope="module")
def models():
    table = _serving_table()
    return {
        "smote": SMOTESurrogate(k_neighbors=4).fit(table),
        "copula": GaussianCopulaSurrogate().fit(table),
    }


def _reference(model, mode, n=N_ROWS, seed=SEED):
    """The fault-free single-process ground truth for a request."""
    return Table.concat(list(model.sample_batches(n, CHUNK, seed=seed, sampling_mode=mode)))


@pytest.fixture
def plan():
    plans = []

    def _make(spec):
        made = FaultPlan.parse(spec)
        plans.append(made)
        return made

    yield _make
    for made in plans:
        made.cleanup()


class TestFaultPlan:
    def test_parse_grammar(self):
        faults = FaultPlan.parse("kill@1, delay@3:0.25, fail@0*2").faults
        assert faults == [
            Fault("kill", 1),
            Fault("delay", 3, 0.25),
            Fault("fail", 0, times=2),
        ]

    @pytest.mark.parametrize(
        "spec", ["", "explode@1", "kill@", "kill@1:0.5", "fail@-1", "delay@2"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_fault_validation(self):
        with pytest.raises(ValueError, match="positive value"):
            Fault("delay", 0)
        with pytest.raises(ValueError, match="at least 1"):
            Fault("kill", 0, times=0)
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("oops", 0)

    def test_random_is_seed_deterministic(self):
        a = FaultPlan.random(8, n_faults=3, seed=5)
        b = FaultPlan.random(8, n_faults=3, seed=5)
        try:
            assert a.faults == b.faults
            assert all(0 <= f.chunk < 8 for f in a.faults)
            assert all(f.kind in ("kill", "delay", "fail") for f in a.faults)
        finally:
            a.cleanup()
            b.cleanup()

    def test_fail_fires_exactly_once_then_runs_clean(self, plan):
        p = plan("fail@2")
        with pytest.raises(InjectedFault):
            p.inject(2)
        p.inject(2)  # token spent: clean
        p.inject(3)  # untargeted chunk: always clean
        assert p.spent() == 1

    def test_arm_resets_the_once_latch(self, plan):
        p = plan("fail@0")
        with pytest.raises(InjectedFault):
            p.inject(0)
        p.inject(0)
        p.arm()
        with pytest.raises(InjectedFault):
            p.inject(0)
        assert p.spent() == 1

    def test_times_budget_spans_repeated_executions(self, plan):
        p = plan("fail@1*2")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                p.inject(1)
        p.inject(1)  # budget exhausted
        assert p.spent() == 2

    def test_delay_sleeps(self, plan):
        p = plan("delay@0:0.05")
        start = time.monotonic()
        p.inject(0)
        assert time.monotonic() - start >= 0.05
        p.inject(0)  # spent: no second sleep

    def test_plan_survives_pickling_with_shared_latch(self, plan):
        import pickle

        p = plan("fail@0")
        clone = pickle.loads(pickle.dumps(p))
        with pytest.raises(InjectedFault):
            clone.inject(0)
        p.inject(0)  # the clone's claim is visible to the original
        assert p.spent() == 1


class TestKillRecovery:
    """A worker killed mid-chunk loses nothing: supervision rebuilds the pool,
    re-runs the initializer, resubmits the queued chunks — identical bytes."""

    @pytest.mark.parametrize("name", ["smote", "copula"])
    @pytest.mark.parametrize("mode", MODES)
    def test_kill_mid_request_is_byte_identical(self, models, plan, name, mode):
        model = models[name]
        with ShardedSampler(
            model, workers=2, chunk_size=CHUNK, fault_plan=plan("kill@1")
        ) as sampler:
            served = sampler.sample(N_ROWS, seed=SEED, sampling_mode=mode)
            stats = sampler.fault_stats()
        assert served == _reference(model, mode)
        assert stats.pool_restarts >= 1

    def test_two_kills_within_budget(self, models, plan):
        model = models["smote"]
        with ShardedSampler(
            model, workers=2, chunk_size=CHUNK, fault_plan=plan("kill@0,kill@4")
        ) as sampler:
            served = sampler.sample(N_ROWS, seed=SEED, sampling_mode="fast")
            stats = sampler.fault_stats()
        assert served == _reference(model, "fast")
        assert stats.pool_restarts >= 2


class TestRetryAndTimeout:
    def test_transient_failure_retries_to_identical_bytes(self, models, plan):
        model = models["smote"]
        policy = ChunkPolicy(max_retries=2, backoff=0.01)
        with ShardedSampler(
            model,
            workers=2,
            chunk_size=CHUNK,
            chunk_policy=policy,
            fault_plan=plan("fail@2"),
        ) as sampler:
            served = sampler.sample(N_ROWS, seed=SEED, sampling_mode="fast")
            stats = sampler.fault_stats()
        assert served == _reference(model, "fast")
        assert stats.chunk_retries >= 1
        assert stats.pool_restarts == 0

    def test_exhausted_retry_budget_raises_chunk_error_with_context(self, models, plan):
        model = models["smote"]
        policy = ChunkPolicy(max_retries=0, backoff=0.0)
        with ShardedSampler(
            model,
            workers=2,
            chunk_size=CHUNK,
            chunk_policy=policy,
            fault_plan=plan("fail@1*5"),
        ) as sampler:
            with pytest.raises(ChunkError, match=r"chunk 1 \(50 rows\)") as excinfo:
                sampler.sample(N_ROWS, seed=SEED, sampling_mode="fast")
        assert excinfo.value.index == 1
        assert excinfo.value.size == CHUNK
        assert isinstance(excinfo.value.__cause__, InjectedFault)

    def test_timed_out_attempt_is_resubmitted_byte_identically(self, models, plan):
        model = models["smote"]
        policy = ChunkPolicy(timeout=0.2, max_retries=2, backoff=0.01, poll=0.005)
        with ShardedSampler(
            model,
            workers=2,
            chunk_size=CHUNK,
            chunk_policy=policy,
            fault_plan=plan("delay@1:1.5"),
        ) as sampler:
            served = sampler.sample(N_ROWS, seed=SEED, sampling_mode="fast")
            stats = sampler.fault_stats()
        assert served == _reference(model, "fast")
        assert stats.chunk_timeouts >= 1
        assert stats.chunk_retries >= 1

    def test_serial_path_wraps_failures_in_chunk_error(self):
        model = _failing_model()
        with ShardedSampler(model, workers=1, chunk_size=CHUNK) as sampler:
            with pytest.raises(ChunkError, match=r"chunk 0 \(50 rows\)") as excinfo:
                sampler.sample(N_ROWS, seed=SEED, sampling_mode="fast")
        assert excinfo.value.index == 0
        assert isinstance(excinfo.value.__cause__, RuntimeError)


class TestHedging:
    def test_straggler_is_hedged_byte_identically(self, models, plan):
        model = models["smote"]
        policy = ChunkPolicy(
            hedge_multiplier=2.0, min_hedge_latency=0.05, backoff=0.01, poll=0.005
        )
        with ShardedSampler(
            model,
            workers=2,
            chunk_size=CHUNK,
            chunk_policy=policy,
            fault_plan=plan("delay@3:1.0"),
        ) as sampler:
            served = sampler.sample(N_ROWS, seed=SEED, sampling_mode="fast")
            stats = sampler.fault_stats()
        assert served == _reference(model, "fast")
        assert stats.hedges >= 1
        assert stats.hedge_wins >= 1
        assert stats.pool_restarts == 0

    @pytest.mark.parametrize("mode", MODES)
    def test_hedged_service_requests_match_solo(self, models, plan, mode):
        model = models["copula"]
        policy = ChunkPolicy(
            hedge_multiplier=2.0, min_hedge_latency=0.05, backoff=0.01, poll=0.005
        )
        with SamplingService(
            model,
            workers=2,
            chunk_size=CHUNK,
            chunk_policy=policy,
            fault_plan=plan("delay@2:1.0"),
        ) as service:
            served = service.sample(N_ROWS, seed=SEED, sampling_mode=mode)
            stats = service.stats()
        assert served == _reference(model, mode)
        assert stats.hedges >= 1


class TestServiceFaultTolerance:
    @pytest.mark.parametrize("name", ["smote", "copula"])
    @pytest.mark.parametrize("mode", MODES)
    def test_kill_mid_request_service_byte_identity(self, models, plan, name, mode):
        model = models[name]
        with SamplingService(
            model, workers=2, chunk_size=CHUNK, fault_plan=plan("kill@1")
        ) as service:
            served = service.sample(N_ROWS, seed=SEED, sampling_mode=mode)
            stats = service.stats()
        assert served == _reference(model, mode)
        assert stats.pool_restarts >= 1

    def test_pool_collapse_degrades_with_zero_lost_requests(self, models, plan):
        # The kill keeps firing past the restart budget: supervision gives up
        # (WorkerPoolBroken) and the dispatcher must finish every admitted
        # request in-process instead of erroring.
        model = models["smote"]
        seeds = [11, 22, 33]
        with SamplingService(
            model,
            workers=2,
            chunk_size=CHUNK,
            fault_plan=plan("kill@1*6"),
            max_pool_restarts=1,
        ) as service:
            requests = [
                service.submit(N_ROWS, seed=seed, sampling_mode="fast") for seed in seeds
            ]
            tables = [request.result(timeout=120) for request in requests]
            stats = service.stats()
            assert service.degraded
        for seed, table in zip(seeds, tables):
            assert table == _reference(model, "fast", seed=seed)
        assert stats.degraded_passes >= 1
        assert stats.pool_restarts >= 1
        assert stats.total_requests == len(seeds)

    def test_degraded_from_the_first_failure(self, models, plan):
        model = models["copula"]
        with SamplingService(
            model,
            workers=2,
            chunk_size=CHUNK,
            fault_plan=plan("kill@0*3"),
            max_pool_restarts=0,
        ) as service:
            served = service.sample(N_ROWS, seed=SEED, sampling_mode="exact")
            stats = service.stats()
            assert service.degraded
        assert served == _reference(model, "exact")
        assert stats.degraded_passes >= 1

    def test_chunk_error_reaches_only_its_request(self, models, plan):
        # One request's chunk exhausts its budget; a sibling request in the
        # same micro-batch must still be served.
        model = models["smote"]
        policy = ChunkPolicy(max_retries=0, backoff=0.0)
        with SamplingService(
            model,
            workers=2,
            chunk_size=CHUNK,
            chunk_policy=policy,
            fault_plan=plan("fail@3*8"),
        ) as service:
            doomed = service.submit(N_ROWS, seed=SEED, sampling_mode="fast")
            small = service.submit(CHUNK, seed=99, sampling_mode="fast")
            with pytest.raises(ChunkError, match="chunk 3"):
                doomed.result(timeout=120)
            assert small.result(timeout=120) == _reference(
                model, "fast", n=CHUNK, seed=99
            )


class _StallSurrogate(Surrogate):
    """Deterministic test double with a configurable per-call delay."""

    name = "stall"

    def __init__(self, delay=0.0):
        super().__init__()
        self.delay = delay

    def fit(self, table):
        self._mark_fitted(table)
        return self

    def _sample_exact(self, n, *, seed=None):
        if self.delay:
            time.sleep(self.delay)
        return Table({"x": np.zeros(n)}, self.schema_)


def _stall_model(delay=0.0):
    table = Table({"x": np.arange(8.0)}, TableSchema.from_columns(numerical=["x"]))
    return _StallSurrogate(delay=delay).fit(table)


class _FailingSurrogate(Surrogate):
    """Test double whose every sampling call fails (serial ChunkError path)."""

    name = "failing"

    def fit(self, table):
        self._mark_fitted(table)
        return self

    def _sample_exact(self, n, *, seed=None):
        raise RuntimeError("synthetic generation failure")


def _failing_model():
    table = Table({"x": np.arange(8.0)}, TableSchema.from_columns(numerical=["x"]))
    return _FailingSurrogate().fit(table)


class TestCancellation:
    def test_cancel_releases_the_backpressure_budget_exactly_once(self):
        model = _stall_model(delay=0.25)
        with SamplingService(
            model, workers=1, chunk_size=1000, max_inflight_rows=100
        ) as service:
            first = service.submit(80, seed=1)  # occupies the dispatcher
            waiting = service.submit(15, seed=2)  # queued: 95/100 admitted
            with pytest.raises(ServiceOverloaded):
                service.submit(20, seed=3, wait=False)
            assert waiting.cancel() is True
            assert waiting.cancelled
            # The cancelled request's 15 rows are back: 80 + 20 now fits.
            third = service.submit(20, seed=4, wait=False)
            with pytest.raises(CancelledError):
                waiting.result(timeout=5)
            assert len(first.result(timeout=30)) == 80
            assert len(third.result(timeout=30)) == 20
            stats = service.stats()
        assert stats.cancelled_requests == 1
        assert stats.in_flight_rows == 0

    def test_cancel_after_completion_is_a_noop(self):
        model = _stall_model()
        with SamplingService(model, workers=1, chunk_size=1000) as service:
            request = service.submit(10, seed=1)
            assert len(request.result(timeout=30)) == 10
            assert request.cancel() is False
            assert not request.cancelled
            assert service.stats().cancelled_requests == 0

    def test_result_timeout_message_mentions_cancel(self):
        model = _stall_model(delay=0.4)
        with SamplingService(model, workers=1, chunk_size=1000) as service:
            request = service.submit(10, seed=1)
            with pytest.raises(TimeoutError, match="cancel"):
                request.result(timeout=0.01)
            assert len(request.result(timeout=30)) == 10


class TestPoolBrokenSurfaces:
    def test_sampler_raises_worker_pool_broken_unwrapped(self, models, plan):
        # Without the service's degraded fallback, pool collapse is the
        # caller's to see — unwrapped, not disguised as a ChunkError.
        model = models["smote"]
        with ShardedSampler(
            model,
            workers=2,
            chunk_size=CHUNK,
            fault_plan=plan("kill@0*6"),
            max_pool_restarts=1,
        ) as sampler:
            with pytest.raises(WorkerPoolBroken):
                sampler.sample(N_ROWS, seed=SEED, sampling_mode="fast")
            assert sampler.pool_broken
