"""Coverage for the windowed drift detectors (repro.metrics.distribution).

The scenario engine's auto-retrain loop keys off :class:`DriftMonitor`
events, so the detectors carry two load-bearing guarantees: a no-drift
stream must stay quiet over long horizons (false positives trigger wasted
retrains), and genuine sustained shifts must fire within a bounded number
of windows (missed drift serves a stale model).  Both are exercised here
at the 10k-window scale the scenario engine replays, plus the latch /
debounce / rebaseline state machine and seed determinism.
"""

import numpy as np
import pytest

from repro.metrics.distribution import DriftConfig, DriftMonitor
from repro.tabular.table import Table, TableSchema

SCHEMA = TableSchema.from_columns(numerical=["runtime"], categorical=["site"])
SITES = np.array(["site_a", "site_b", "site_c", "site_d"])
PROBS = np.array([0.4, 0.3, 0.2, 0.1])


def _window(rng, n=256, *, shift=0.0, scale=1.0, probs=PROBS):
    return Table(
        {
            "runtime": rng.normal(loc=shift, scale=scale, size=n),
            "site": rng.choice(SITES, size=n, p=probs),
        },
        SCHEMA,
    )


@pytest.fixture(scope="module")
def reference():
    return _window(np.random.default_rng(20240808), n=2048)


class TestFalsePositiveBound:
    def test_no_drift_stream_stays_quiet_over_10k_windows(self, reference):
        # Same-distribution windows must never complete a debounce across a
        # horizon an order of magnitude longer than any scenario replay.
        monitor = DriftMonitor(reference)
        rng = np.random.default_rng(1)
        events = []
        for _ in range(10_000):
            events.extend(monitor.observe(_window(rng)))
        assert events == []
        assert monitor.window_index == 10_000
        assert monitor.drifted_columns == []


class TestDetectionDelayBound:
    def test_mean_shift_fires_within_debounce_windows(self, reference):
        config = DriftConfig(debounce=3)
        monitor = DriftMonitor(reference, config=config)
        rng = np.random.default_rng(2)
        fired_at = None
        for i in range(20):
            events = monitor.observe(_window(rng, shift=1.5))
            if events:
                fired_at = i
                assert [e.column for e in events] == ["runtime"]
                assert events[0].statistic == "ks"
                assert events[0].value > events[0].threshold
                break
        # A sustained 1.5-sigma shift breaches every window: the debounce
        # completes on window index debounce-1, never later.
        assert fired_at == config.debounce - 1

    def test_frequency_shift_fires_within_debounce_windows(self, reference):
        config = DriftConfig(debounce=3)
        monitor = DriftMonitor(reference, config=config)
        rng = np.random.default_rng(3)
        flipped = PROBS[::-1].copy()
        fired_at = None
        for i in range(20):
            events = monitor.observe(_window(rng, probs=flipped))
            if events:
                fired_at = i
                assert [e.column for e in events] == ["site"]
                assert events[0].statistic == "jsd"
                break
        assert fired_at == config.debounce - 1

    def test_chi2_stat_detects_frequency_shift(self, reference):
        config = DriftConfig(debounce=2, categorical_stat="chi2", categorical_threshold=0.01)
        monitor = DriftMonitor(reference, config=config)
        rng = np.random.default_rng(4)
        events = []
        for _ in range(10):
            events.extend(monitor.observe(_window(rng, probs=PROBS[::-1].copy())))
        assert any(e.column == "site" and e.statistic == "chi2" for e in events)


class TestDebounceAndLatch:
    def test_transient_blip_does_not_fire(self, reference):
        # debounce-1 breaching windows followed by a clean window resets the
        # streak: a blip shorter than the debounce never fires.
        config = DriftConfig(debounce=3)
        monitor = DriftMonitor(reference, config=config)
        rng = np.random.default_rng(5)
        events = []
        for _ in range(4):  # two blips of length debounce-1 each
            events.extend(monitor.observe(_window(rng, shift=1.5)))
            events.extend(monitor.observe(_window(rng, shift=1.5)))
            events.extend(monitor.observe(_window(rng)))
        assert events == []

    def test_fired_detector_latches_until_rebaseline(self, reference):
        config = DriftConfig(debounce=2)
        monitor = DriftMonitor(reference, config=config)
        rng = np.random.default_rng(6)
        events = []
        for _ in range(8):
            events.extend(monitor.observe(_window(rng, shift=1.5)))
        assert len([e for e in events if e.column == "runtime"]) == 1  # latched
        assert "runtime" in monitor.drifted_columns
        # Rebaseline on the shifted distribution: detector resets, the
        # now-matching stream stays quiet, and a *new* shift fires again.
        monitor.rebaseline(_window(np.random.default_rng(7), n=2048, shift=1.5))
        assert monitor.drifted_columns == []
        assert monitor.window_index == 0
        quiet = []
        for _ in range(5):
            quiet.extend(monitor.observe(_window(rng, shift=1.5)))
        assert quiet == []
        refired = []
        for _ in range(5):
            refired.extend(monitor.observe(_window(rng, shift=3.5)))
        assert any(e.column == "runtime" for e in refired)

    def test_short_windows_are_skipped(self, reference):
        monitor = DriftMonitor(reference, config=DriftConfig(min_window=32))
        rng = np.random.default_rng(8)
        assert monitor.observe(_window(rng, n=8, shift=9.0)) == []
        assert monitor.window_index == 0  # skipped windows don't advance


class TestSeedDeterminism:
    def test_same_stream_yields_identical_events(self, reference):
        def run():
            monitor = DriftMonitor(reference, config=DriftConfig(debounce=2))
            rng = np.random.default_rng(9)
            out = []
            for i in range(30):
                shift = 0.0 if i < 10 else 1.2
                for event in monitor.observe(_window(rng, shift=shift)):
                    out.append(event.as_dict())
            return out

        first, second = run(), run()
        assert first == second
        assert first  # the stream does fire: determinism over real events


class TestConfigValidation:
    def test_bad_categorical_stat_rejected(self):
        with pytest.raises(ValueError, match="categorical_stat"):
            DriftConfig(categorical_stat="psi")

    def test_bad_debounce_rejected(self):
        with pytest.raises(ValueError, match="debounce"):
            DriftConfig(debounce=0)

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            DriftConfig(numerical_threshold=0.0)
