"""Optimized-vs-seed equivalence for the vectorized hot-path engine.

The four optimized kernels (GBDT fit, association matrix, filtering funnel,
grid simulator) must reproduce the outputs of the seed implementations kept in
``benchmarks/seed_baselines.py``:

* GBDT predictions identical (the sibling-subtraction trick can shift
  gradient histograms by a few ulps, but split decisions — and therefore
  predictions — are unchanged on these fixtures),
* association matrices equal within 1e-12,
* identical simulator completion times and pipeline funnels on a fixed-seed
  5k-job workload.
"""

import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "benchmarks"))

from seed_baselines import (  # noqa: E402
    SeedFilteringPipeline,
    SeedGaussianMixture,
    SeedGradientBoostingRegressor,
    SeedGridSimulator,
    SeedScanDataLocalityBroker,
    SeedScanLeastLoadedBroker,
    SeedWatermarkGridSimulator,
    seed_association_matrix,
    seed_kmeans_1d,
)

from repro.boosting.gbdt import GradientBoostingRegressor  # noqa: E402
from repro.metrics.correlation import association_matrix  # noqa: E402
from repro.mixture.gmm import GaussianMixture, kmeans_1d  # noqa: E402
from repro.metrics.privacy import nearest_record_distances  # noqa: E402
from repro.panda.generator import GeneratorConfig, PandaWorkloadGenerator  # noqa: E402
from repro.panda.pipeline import FilteringPipeline  # noqa: E402
from repro.scheduler.broker import make_broker  # noqa: E402
from repro.scheduler.cluster import GridCluster  # noqa: E402
from repro.scheduler.jobs import jobs_from_table  # noqa: E402
from repro.scheduler.simulator import GridSimulator  # noqa: E402


@pytest.fixture(scope="module")
def workload_5k():
    """A fixed-seed generator and a raw stream that filters to ~5k jobs."""
    generator = PandaWorkloadGenerator(GeneratorConfig(n_jobs=10_000, n_days=10.0, seed=21))
    return generator, generator.generate_raw()


class TestGBDTEquivalence:
    @pytest.mark.parametrize("subsample", [1.0, 0.7])
    def test_identical_predictions(self, subsample):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(1_500, 6))
        y = (
            2.0 * X[:, 0]
            - X[:, 1] * X[:, 2]
            + np.sin(3.0 * X[:, 3])
            + 0.1 * rng.normal(size=1_500)
        )
        params = dict(
            n_estimators=15, learning_rate=0.3, max_depth=5, max_bins=32,
            subsample=subsample, seed=9,
        )
        seed_model = SeedGradientBoostingRegressor(**params).fit(X, y)
        opt_model = GradientBoostingRegressor(**params).fit(X, y)
        X_query = rng.normal(size=(400, 6))
        np.testing.assert_array_equal(seed_model.predict(X_query), opt_model.predict(X_query))
        np.testing.assert_array_equal(seed_model.train_losses_, opt_model.train_losses_)

    def test_identical_tree_structures(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(800, 4))
        y = X[:, 0] ** 2 + X[:, 1] + 0.05 * rng.normal(size=800)
        seed_model = SeedGradientBoostingRegressor(n_estimators=5, seed=1).fit(X, y)
        opt_model = GradientBoostingRegressor(n_estimators=5, seed=1).fit(X, y)
        for seed_tree, opt_tree in zip(seed_model.trees_, opt_model.trees_):
            assert len(seed_tree.nodes_) == len(opt_tree.nodes_)
            for a, b in zip(seed_tree.nodes_, opt_tree.nodes_):
                assert (a.feature, a.threshold_bin, a.left, a.right) == (
                    b.feature, b.threshold_bin, b.left, b.right,
                )
                assert a.n_samples == b.n_samples
                assert a.value == pytest.approx(b.value, abs=1e-12)


class TestAssociationEquivalence:
    def test_matrix_within_1e12(self, workload_5k):
        generator, raw = workload_5k
        table, _ = FilteringPipeline(generator.sites).run(raw)
        seed_matrix, seed_cols = seed_association_matrix(table)
        opt_matrix, opt_cols = association_matrix(table)
        assert list(seed_cols) == list(opt_cols)
        np.testing.assert_allclose(opt_matrix, seed_matrix, rtol=0.0, atol=1e-12)

    def test_subset_and_edge_cases(self, tiny_table):
        for cols in (["x", "color"], ["color", "status"], ["x", "y"], None):
            seed_matrix, _ = seed_association_matrix(tiny_table, cols)
            opt_matrix, _ = association_matrix(tiny_table, cols)
            np.testing.assert_allclose(opt_matrix, seed_matrix, rtol=0.0, atol=1e-12)


class TestPipelineEquivalence:
    def test_identical_funnel_and_table(self, workload_5k):
        generator, raw = workload_5k
        seed_table, seed_report = SeedFilteringPipeline(generator.sites).run(raw)
        opt_table, opt_report = FilteringPipeline(generator.sites).run(raw)
        assert seed_report.as_rows() == opt_report.as_rows()
        assert seed_table == opt_table  # column-wise array equality


class TestSimulatorEquivalence:
    def _assert_same(self, generator, jobs, broker_name, capacity_scale):
        def run(simulator_cls):
            cluster = GridCluster(generator.sites, capacity_scale=capacity_scale, min_capacity=1)
            broker = make_broker(broker_name, cluster, seed=13)
            return simulator_cls(cluster, broker).run(jobs)

        seed_result = run(SeedGridSimulator)
        opt_result = run(GridSimulator)
        assert seed_result.n_completed == opt_result.n_completed == len(jobs)
        assert seed_result.makespan_days == opt_result.makespan_days
        np.testing.assert_array_equal(seed_result.wait_times_hours, opt_result.wait_times_hours)
        assert seed_result.utilization_by_site == opt_result.utilization_by_site
        return opt_result

    @pytest.mark.parametrize("broker_name", ["least_loaded", "random", "data_locality"])
    def test_identical_completions_5k_jobs(self, workload_5k, broker_name):
        generator, raw = workload_5k
        table, _ = FilteringPipeline(generator.sites).run(raw)
        jobs = jobs_from_table(table)
        assert len(jobs) >= 5_000
        self._assert_same(generator, jobs, broker_name, capacity_scale=0.002)

    @pytest.mark.parametrize("broker_name", ["least_loaded", "random", "data_locality"])
    def test_identical_completions_saturated_backlog(self, workload_5k, broker_name):
        # A 40-core cluster under an 800-job burst: the fast-path accounting
        # (free-slot watermark, early pass cut-off) is exercised hard here.
        generator, raw = workload_5k
        table, _ = FilteringPipeline(generator.sites).run(raw)
        jobs = jobs_from_table(table)[:800]
        result = self._assert_same(generator, jobs, broker_name, capacity_scale=1e-9)
        assert result.mean_wait_hours > 0.0  # genuinely contended


class TestBrokerEquivalence:
    """O(log sites) heap brokers vs the seed O(sites) linear scans.

    Runs the seed scan brokers inside the seed watermark simulator against
    the indexed brokers inside the live simulator — placements, and therefore
    every completion time and utilisation number, must be identical.
    """

    def _seed_broker(self, name, cluster):
        if name == "least_loaded":
            return SeedScanLeastLoadedBroker()
        return SeedScanDataLocalityBroker(cluster, seed=13)

    def _assert_same(self, generator, jobs, broker_name, capacity_scale):
        cluster_a = GridCluster(generator.sites, capacity_scale=capacity_scale, min_capacity=1)
        seed_result = SeedWatermarkGridSimulator(
            cluster_a, self._seed_broker(broker_name, cluster_a)
        ).run(jobs)
        cluster_b = GridCluster(generator.sites, capacity_scale=capacity_scale, min_capacity=1)
        opt_result = GridSimulator(cluster_b, make_broker(broker_name, cluster_b, seed=13)).run(jobs)
        assert seed_result.n_completed == opt_result.n_completed == len(jobs)
        assert seed_result.makespan_days == opt_result.makespan_days
        np.testing.assert_array_equal(seed_result.wait_times_hours, opt_result.wait_times_hours)
        assert seed_result.utilization_by_site == opt_result.utilization_by_site
        return opt_result

    @pytest.mark.parametrize("broker_name", ["least_loaded", "data_locality"])
    def test_identical_completions(self, workload_5k, broker_name):
        generator, raw = workload_5k
        table, _ = FilteringPipeline(generator.sites).run(raw)
        jobs = jobs_from_table(table)[:3_000]
        self._assert_same(generator, jobs, broker_name, capacity_scale=0.002)

    @pytest.mark.parametrize("broker_name", ["least_loaded", "data_locality"])
    def test_identical_completions_saturated_backlog(self, workload_5k, broker_name):
        generator, raw = workload_5k
        table, _ = FilteringPipeline(generator.sites).run(raw)
        jobs = jobs_from_table(table)[:800]
        result = self._assert_same(generator, jobs, broker_name, capacity_scale=1e-9)
        assert result.mean_wait_hours > 0.0  # genuinely contended


class TestPrivacyChunking:
    def test_chunked_matches_unchunked(self, tiny_table):
        train = tiny_table.take(np.arange(0, 150))
        synth = tiny_table.take(np.arange(150, 200))
        full = nearest_record_distances(train, synth)
        chunked = nearest_record_distances(train, synth, chunk_size=7)
        np.testing.assert_array_equal(full, chunked)


def _gmm_test_columns(n=4_000, seed=29):
    """Column shapes spanning both GMM code paths: duplicate-compressed
    (counts, rounded values, discrete grids) and the direct fallback
    (continuous), plus the degenerate edges."""
    rng = np.random.default_rng(seed)
    half = n // 2
    return {
        "counts": rng.poisson(30, n).astype(np.float64),
        "rounded_lognormal": np.round(rng.lognormal(1.0, 0.8, n), 2),
        "grid": rng.choice(np.round(np.linspace(0.1, 50.0, 257), 3), n),
        "rounded_bimodal": np.round(
            np.concatenate([rng.normal(-4.0, 0.5, half), rng.normal(4.0, 0.5, n - half)]), 1
        ),
        "continuous": np.concatenate([rng.normal(-2.0, 1.0, half), rng.lognormal(0.5, 0.7, n - half)]),
        "tiny": rng.normal(size=40),
        "constant": np.full(200, 7.5),
        "three_values": rng.choice([1.0, 2.0, 7.25], n),
    }


class TestGaussianMixtureEquivalence:
    """The duplicate-compressed GMM must be bit-identical to the seed EM."""

    @pytest.mark.parametrize("column", sorted(_gmm_test_columns()))
    def test_fit_parameters_bit_identical(self, column):
        x = _gmm_test_columns()[column]
        opt = GaussianMixture(8, seed=0).fit(x)
        ref = SeedGaussianMixture(8, seed=0).fit(x)
        np.testing.assert_array_equal(opt.params_.weights, ref.params_.weights)
        np.testing.assert_array_equal(opt.params_.means, ref.params_.means)
        np.testing.assert_array_equal(opt.params_.stds, ref.params_.stds)
        assert opt.log_likelihood_ == ref.log_likelihood_
        assert opt.n_iter_ == ref.n_iter_

    @pytest.mark.parametrize("column", ["counts", "rounded_lognormal", "continuous"])
    def test_kmeans_centres_bit_identical(self, column):
        x = _gmm_test_columns()[column]
        for k in (1, 3, 8):
            np.testing.assert_array_equal(kmeans_1d(x, k), seed_kmeans_1d(x, k))

    @pytest.mark.parametrize("column", ["counts", "rounded_lognormal", "continuous"])
    def test_inference_bit_identical(self, column):
        x = _gmm_test_columns()[column]
        opt = GaussianMixture(6, seed=0).fit(x)
        ref = SeedGaussianMixture(6, seed=0).fit(x)
        np.testing.assert_array_equal(opt.responsibilities(x), ref.responsibilities(x))
        comp_opt = opt.sample_component(x, np.random.default_rng(17))
        comp_ref = ref.sample_component(x, np.random.default_rng(17))
        np.testing.assert_array_equal(comp_opt, comp_ref)
        np.testing.assert_array_equal(
            opt.normalize(x, comp_opt), ref.normalize(x, comp_ref)
        )
        assert opt.log_likelihood(x) == SeedGaussianMixture._logsumexp(
            ref._log_prob_components(x, ref.params_)
        ).mean()
