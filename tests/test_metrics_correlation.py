"""Tests for pairwise association metrics and diff-CORR."""

import numpy as np
import pytest

from repro.metrics.correlation import (
    association_difference,
    association_matrix,
    correlation_ratio,
    diff_corr,
    pearson_correlation,
    theils_u,
)
from repro.tabular.schema import TableSchema
from repro.tabular.table import Table


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(100, dtype=float)
        assert pearson_correlation(x, 3 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(50, dtype=float)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        assert abs(pearson_correlation(rng.normal(size=5000), rng.normal(size=5000))) < 0.05

    def test_constant_input_returns_zero(self):
        assert pearson_correlation(np.ones(10), np.arange(10.0)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(3), np.ones(4))

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        x, y = rng.normal(size=200), rng.normal(size=200)
        assert pearson_correlation(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])


class TestCorrelationRatio:
    def test_category_determines_value(self):
        cats = np.array(["a"] * 50 + ["b"] * 50)
        values = np.concatenate([np.full(50, 1.0), np.full(50, 10.0)])
        assert correlation_ratio(cats, values) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        cats = rng.choice(["a", "b", "c"], 5000)
        values = rng.normal(size=5000)
        assert correlation_ratio(cats, values) < 0.05

    def test_bounded(self):
        rng = np.random.default_rng(1)
        cats = rng.choice(["a", "b"], 300)
        values = rng.normal(size=300) + (cats == "a") * 0.5
        assert 0.0 <= correlation_ratio(cats, values) <= 1.0

    def test_constant_values(self):
        assert correlation_ratio(np.array(["a", "b"]), np.array([1.0, 1.0])) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            correlation_ratio(np.array(["a"]), np.array([1.0, 2.0]))


class TestTheilsU:
    def test_perfect_dependence(self):
        x = np.array(["a", "b", "a", "b"] * 25)
        y = np.array(["p", "q", "p", "q"] * 25)  # y fully determines x
        assert theils_u(x, y) == pytest.approx(1.0)

    def test_independence_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.choice(["a", "b"], 5000)
        y = rng.choice(["p", "q", "r"], 5000)
        assert theils_u(x, y) < 0.02

    def test_asymmetry(self):
        # y (4 values) determines x (2 values) exactly, but not vice versa.
        y = np.array(["p", "q", "r", "s"] * 50)
        x = np.array(["a", "a", "b", "b"] * 50)
        assert theils_u(x, y) == pytest.approx(1.0)
        assert theils_u(y, x) < 1.0

    def test_constant_x_is_one(self):
        assert theils_u(np.array(["a", "a"]), np.array(["p", "q"])) == 1.0

    def test_bounded(self):
        rng = np.random.default_rng(2)
        x = rng.choice(["a", "b", "c"], 500)
        y = np.where(x == "a", "p", rng.choice(["p", "q"], 500))
        assert 0.0 <= theils_u(x, y) <= 1.0


class TestAssociationMatrix:
    def test_shape_and_diagonal(self, train_table):
        matrix, cols = association_matrix(train_table)
        assert matrix.shape == (len(cols), len(cols))
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_entries_bounded(self, train_table):
        matrix, _ = association_matrix(train_table)
        assert matrix.min() >= -1e-9
        assert matrix.max() <= 1.0 + 1e-9

    def test_known_structure(self):
        # Build a table where y = 2x and the category mirrors the sign of x.
        rng = np.random.default_rng(0)
        x = rng.normal(size=400)
        schema = TableSchema.from_columns(numerical=["x", "y"], categorical=["sign"])
        table = Table({"x": x, "y": 2 * x, "sign": np.where(x > 0, "pos", "neg")}, schema)
        matrix, cols = association_matrix(table)
        idx = {c: i for i, c in enumerate(cols)}
        assert matrix[idx["x"], idx["y"]] == pytest.approx(1.0)
        assert matrix[idx["sign"], idx["x"]] > 0.7

    def test_subset_of_columns(self, train_table):
        matrix, cols = association_matrix(train_table, columns=["workload", "datatype"])
        assert matrix.shape == (2, 2)
        assert cols == ["workload", "datatype"]


class TestDiffCorr:
    def test_zero_for_identical(self, train_table):
        assert diff_corr(train_table, train_table) == pytest.approx(0.0, abs=1e-12)

    def test_detects_broken_correlation(self, train_table):
        shuffled_workload = np.random.default_rng(0).permutation(
            np.asarray(train_table["workload"])
        )
        broken = train_table.with_column("workload", shuffled_workload, "numerical")
        assert diff_corr(train_table, broken) > diff_corr(train_table, train_table)

    def test_association_difference_payload(self, train_table, test_table):
        payload = association_difference(train_table, test_table)
        assert payload["real"].shape == payload["synthetic"].shape
        assert payload["difference"].shape == payload["real"].shape
        assert payload["diff_corr"] >= 0.0
        # Real-vs-real-test matrices should agree closely (same distribution).
        assert payload["diff_corr"] < 0.2
