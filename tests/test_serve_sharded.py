"""The sharding contract: worker count changes wall clock, never bytes.

``ShardedSampler`` fans ``sample_batches`` chunks across a process pool;
because every chunk draws from its own ``SeedSequence`` child stream, the
reassembled output must be byte-identical

* to the single-process ``sample_batches`` concatenation, and
* across worker counts {1, 2, 4} — including 4 workers on a 1-core box —

for **all five surrogates in both sampling modes**.  These tests prove it,
plus the request-validation and lifecycle semantics around it.
"""

import numpy as np
import pytest

from repro.models.ctabgan import CTABGANConfig, CTABGANPlusSurrogate
from repro.models.gaussian_copula import GaussianCopulaSurrogate
from repro.models.smote import SMOTESurrogate
from repro.models.tabddpm.model import TabDDPMConfig, TabDDPMSurrogate
from repro.models.tvae import TVAEConfig, TVAESurrogate
from repro.serve import ShardedSampler
from repro.tabular.schema import TableSchema
from repro.tabular.table import Table

N_ROWS = 130
CHUNK = 40  # deliberately a non-divisor of N_ROWS: chunk plan (40, 40, 40, 10)
WORKER_COUNTS = (1, 2, 4)
MODES = ("exact", "fast")


def _serving_table(n=500, seed=23):
    rng = np.random.default_rng(seed)
    data = {
        "x0": np.round(rng.lognormal(1.0, 0.7, n), 2),
        "x1": rng.normal(size=n) * 4.0,
        "cat_a": rng.choice(["a", "b"], n, p=[0.7, 0.3]),
        "cat_b": rng.choice(["u", "v", "w"], n),
        # Wide enough to exercise the relaxed width-bucket kernels.
        "cat_wide": rng.choice([f"s{i}" for i in range(11)], n),
    }
    return Table(
        data,
        TableSchema.from_columns(
            numerical=["x0", "x1"], categorical=["cat_a", "cat_b", "cat_wide"]
        ),
    )


@pytest.fixture(scope="module")
def table():
    return _serving_table()


@pytest.fixture(scope="module")
def models(table):
    return {
        "tvae": TVAESurrogate(TVAEConfig.fast(), seed=3).fit(table),
        "ctabgan": CTABGANPlusSurrogate(CTABGANConfig.fast(), seed=3).fit(table),
        "tabddpm": TabDDPMSurrogate(TabDDPMConfig.fast(), seed=3).fit(table),
        "smote": SMOTESurrogate(k_neighbors=3).fit(table),
        "copula": GaussianCopulaSurrogate().fit(table),
    }


class TestWorkerCountInvariance:
    """The acceptance bar: bytes identical for workers in {1, 2, 4}, both modes."""

    @pytest.mark.parametrize("name", ["tvae", "ctabgan", "tabddpm", "smote", "copula"])
    def test_all_surrogates_both_modes(self, models, name):
        model = models[name]
        references = {
            mode: Table.concat(
                list(model.sample_batches(N_ROWS, CHUNK, seed=7, sampling_mode=mode))
            )
            for mode in MODES
        }
        for workers in WORKER_COUNTS:
            with ShardedSampler(model, workers=workers, chunk_size=CHUNK) as sampler:
                for mode in MODES:
                    result = sampler.sample(N_ROWS, seed=7, sampling_mode=mode)
                    assert result == references[mode], (name, workers, mode)

    def test_chunk_size_changes_the_stream_but_stays_invariant(self, models):
        # Different chunk_size → different chunk streams (documented), but
        # each chunk_size is still worker-count-invariant.
        model = models["tvae"]
        with ShardedSampler(model, workers=2, chunk_size=64) as sampler:
            other_chunking = sampler.sample(N_ROWS, seed=7)
        with ShardedSampler(model, workers=1, chunk_size=64) as sampler:
            assert sampler.sample(N_ROWS, seed=7) == other_chunking
        with ShardedSampler(model, workers=1, chunk_size=CHUNK) as sampler:
            assert sampler.sample(N_ROWS, seed=7) != other_chunking


class TestStreaming:
    def test_chunks_arrive_in_order_with_the_right_sizes(self, models):
        with ShardedSampler(models["smote"], workers=2, chunk_size=CHUNK) as sampler:
            chunks = list(sampler.sample_batches(N_ROWS, seed=5, sampling_mode="fast"))
        assert [len(c) for c in chunks] == [40, 40, 40, 10]
        reference = list(
            models["smote"].sample_batches(N_ROWS, CHUNK, seed=5, sampling_mode="fast")
        )
        assert all(a == b for a, b in zip(chunks, reference))

    def test_oversized_chunk_is_one_shot(self, models):
        with ShardedSampler(models["smote"], workers=4, chunk_size=4096) as sampler:
            chunks = list(sampler.sample_batches(90, seed=2))
        assert [len(c) for c in chunks] == [90]

    def test_zero_rows(self, models):
        model = models["copula"]
        for workers in (1, 4):
            with ShardedSampler(model, workers=workers, chunk_size=CHUNK) as sampler:
                assert list(sampler.sample_batches(0, seed=1)) == []
                empty = sampler.sample(0, seed=1)
                assert len(empty) == 0
                assert empty.schema == model.schema_


class TestLifecycleAndValidation:
    def test_rejects_unfitted_model(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            ShardedSampler(TVAESurrogate())

    def test_rejects_bad_chunk_size(self, models):
        with pytest.raises(ValueError, match="chunk_size"):
            ShardedSampler(models["smote"], chunk_size=0)

    def test_rejects_bad_requests(self, models):
        sampler = ShardedSampler(models["smote"], workers=1)
        with pytest.raises(ValueError, match="negative"):
            sampler.sample(-1, seed=1)
        with pytest.raises(ValueError, match="unknown sampling mode"):
            sampler.sample(10, seed=1, sampling_mode="turbo")

    def test_submit_chunk_needs_a_pool(self, models):
        sampler = ShardedSampler(models["smote"], workers=1)
        with pytest.raises(RuntimeError, match="worker pool"):
            sampler.submit_chunk(10, np.random.SeedSequence(0), "fast")

    def test_workers_default_resolves_from_env(self, models, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert ShardedSampler(models["smote"]).workers == 3

    def test_close_is_idempotent_and_restart_works(self, models):
        sampler = ShardedSampler(models["smote"], workers=2, chunk_size=CHUNK)
        first = sampler.sample(80, seed=9)
        assert sampler.is_running
        sampler.close()
        assert not sampler.is_running
        sampler.close()
        sampler.restart()
        assert sampler.is_running
        assert sampler.sample(80, seed=9) == first
        sampler.close()

    def test_restart_picks_up_a_refit(self, table):
        model = SMOTESurrogate(k_neighbors=3).fit(table)
        sampler = ShardedSampler(model, workers=2, chunk_size=CHUNK).start()
        before = sampler.sample(60, seed=4)
        other = _serving_table(n=300, seed=99)
        model.fit(other)
        # The running pool still serves the old snapshot by design...
        assert sampler.sample(60, seed=4) == before
        # ...and restart() re-snapshots the refitted model.
        sampler.restart()
        refit = sampler.sample(60, seed=4)
        assert refit.schema == other.schema
        assert refit == Table.concat(list(model.sample_batches(60, CHUNK, seed=4)))
        sampler.close()
