"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, derive_seed, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_rng(1).random(5), as_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(as_rng(seq), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_deterministic(self):
        a = [g.random() for g in spawn_rngs(3, 3)]
        b = [g.random() for g in spawn_rngs(3, 3)]
        assert a == b

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        assert children[0].random(4).tolist() != children[1].random(4).tolist()

    def test_zero_children(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(5)
        assert len(spawn_rngs(gen, 2)) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_depends_on_names(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_depends_on_base(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_none_base_allowed(self):
        assert isinstance(derive_seed(None, "x"), int)

    def test_result_is_32bit(self):
        for name in ["alpha", "beta", "gamma"]:
            assert 0 <= derive_seed(123, name) < 2**32
