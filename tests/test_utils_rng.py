"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, derive_seed, fused_column_draws, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_rng(1).random(5), as_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(as_rng(seq), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_deterministic(self):
        a = [g.random() for g in spawn_rngs(3, 3)]
        b = [g.random() for g in spawn_rngs(3, 3)]
        assert a == b

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        assert children[0].random(4).tolist() != children[1].random(4).tolist()

    def test_zero_children(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(5)
        assert len(spawn_rngs(gen, 2)) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_depends_on_names(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_depends_on_base(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_none_base_allowed(self):
        assert isinstance(derive_seed(None, "x"), int)

    def test_result_is_32bit(self):
        for name in ["alpha", "beta", "gamma"]:
            assert 0 <= derive_seed(123, name) < 2**32


def _legacy_column_draws(rng, plans):
    """The historical per-column call pair fused_column_draws emulates."""
    out = []
    for count, cdf, highs in plans:
        cats = cdf.searchsorted(rng.random(count), side="right")
        draws = rng.integers(0, highs[cats]) if count else np.empty(0, dtype=np.int64)
        out.append((cats, draws))
    return out


def _random_plans(master, *, lo=2, singleton_every=0):
    plans = []
    for j in range(int(master.integers(1, 7))):
        count = int(master.integers(0, 150))
        width = int(master.integers(1, 25))
        probs = master.random(width) + 0.01
        highs = master.integers(lo, 60, size=width)
        if singleton_every and j % singleton_every == 0:
            highs[master.integers(0, width)] = 1
        plans.append((count, np.cumsum(probs / probs.sum()), highs.astype(np.int64)))
    return plans


class TestFusedColumnDraws:
    def test_byte_identical_values_and_state_fuzz(self):
        # The contract is absolute: same (cats, draws) arrays AND the same
        # bit-generator end state — spare half-word buffer included — as
        # the legacy per-column random()/integers() pair, across random
        # plan shapes and entry buffer parities.
        master = np.random.default_rng(20240807)
        fused_runs = 0
        for trial in range(150):
            plans = _random_plans(master)
            seed = int(master.integers(0, 2**31))
            ra, rb = np.random.default_rng(seed), np.random.default_rng(seed)
            if trial % 3 == 0:
                # Pre-seed a pending spare half-word in both generators.
                ra.integers(0, [7])
                rb.integers(0, [7])
            legacy = _legacy_column_draws(ra, plans)
            fused = fused_column_draws(rb, plans)
            if fused is None:  # Lemire rejection: fallback must be exact too
                for count, cdf, highs in plans:
                    cats = cdf.searchsorted(rb.random(count), side="right")
                    if count:
                        rb.integers(0, highs[cats])
                assert ra.bit_generator.state == rb.bit_generator.state
                continue
            fused_runs += 1
            for (lc, ld), (fc, fd) in zip(legacy, fused):
                np.testing.assert_array_equal(lc, fc)
                np.testing.assert_array_equal(ld, fd)
            assert ra.bit_generator.state == rb.bit_generator.state
        assert fused_runs > 100  # the fused path, not the fallback, was exercised

    def test_singleton_pool_returns_none_with_state_untouched(self):
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        plans = [(8, np.array([0.5, 1.0]), np.array([1, 5], dtype=np.int64))]
        assert fused_column_draws(rng, plans) is None
        assert rng.bit_generator.state == before

    def test_64bit_bound_returns_none_with_state_untouched(self):
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        plans = [(8, np.array([1.0]), np.array([2**33], dtype=np.int64))]
        assert fused_column_draws(rng, plans) is None
        assert rng.bit_generator.state == before

    def test_non_pcg64_returns_none(self):
        rng = np.random.Generator(np.random.MT19937(5))
        plans = [(8, np.array([1.0]), np.array([5], dtype=np.int64))]
        assert fused_column_draws(rng, plans) is None

    def test_lemire_rejection_returns_none_with_state_untouched(self):
        # high = 2**32 * 2/3 rejects ~1/3 of words; hunt a seed that hits
        # the rejection region and assert the exact bail-out contract.
        high = (2**32 * 2) // 3
        plans = [(16, np.array([1.0]), np.array([high], dtype=np.int64))]
        saw_rejection = False
        for seed in range(200):
            rng = np.random.default_rng(seed)
            before = rng.bit_generator.state
            if fused_column_draws(rng, plans) is None:
                saw_rejection = True
                assert rng.bit_generator.state == before
                break
        assert saw_rejection

    def test_empty_and_zero_count_plans(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        assert fused_column_draws(rng, []) == []
        assert rng.bit_generator.state == before
        plans = [(0, np.array([1.0]), np.array([5], dtype=np.int64)),
                 (4, np.array([1.0]), np.array([5], dtype=np.int64))]
        result = fused_column_draws(rng, plans)
        assert result is not None
        assert result[0][0].size == 0 and result[0][1].size == 0
        assert result[1][0].size == 4 and result[1][1].size == 4

    def test_prescreened_skips_screen_but_matches_legacy(self):
        master = np.random.default_rng(7)
        plans = _random_plans(master, lo=2)
        seed = 99
        ra, rb = np.random.default_rng(seed), np.random.default_rng(seed)
        legacy = _legacy_column_draws(ra, plans)
        fused = fused_column_draws(rb, plans, prescreened=True)
        assert fused is not None
        for (lc, ld), (fc, fd) in zip(legacy, fused):
            np.testing.assert_array_equal(lc, fc)
            np.testing.assert_array_equal(ld, fd)
        assert ra.bit_generator.state == rb.bit_generator.state
