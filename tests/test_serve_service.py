"""Registry and service semantics: versioning, warm starts, micro-batching,
backpressure and stats.

The load-bearing guarantees:

* registry round-trip — register, restart (a fresh registry over the same
  directory), load: the served bytes are identical;
* micro-batching is invisible in the bytes — requests coalesced into one
  sharded pass return exactly what each would return served alone, because
  every request keeps its own seed's chunk streams;
* backpressure — the bounded in-flight budget blocks (or refuses) new
  admissions instead of queueing unbounded work.
"""

import threading
import time

import numpy as np
import pytest

from repro.models.base import Surrogate
from repro.models.smote import SMOTESurrogate
from repro.models.tvae import TVAEConfig, TVAESurrogate
from repro.serve import (
    ModelRegistry,
    SamplingService,
    ServiceOverloaded,
    ShardedSampler,
)
from repro.tabular.schema import TableSchema
from repro.tabular.table import Table

CHUNK = 50


def _table(n=400, seed=29):
    rng = np.random.default_rng(seed)
    data = {
        "x": rng.normal(size=n) * 3.0,
        "cat": rng.choice(["a", "b", "c"], n),
        "site": rng.choice([f"s{i}" for i in range(9)], n),
    }
    return Table(
        data, TableSchema.from_columns(numerical=["x"], categorical=["cat", "site"])
    )


@pytest.fixture(scope="module")
def table():
    return _table()


@pytest.fixture(scope="module")
def tvae(table):
    return TVAESurrogate(TVAEConfig.fast(), seed=5).fit(table)


class TestModelRegistry:
    def test_versions_increment(self, tvae, tmp_path):
        registry = ModelRegistry(tmp_path, warm_chunk_rows=CHUNK)
        assert registry.register("tvae-prod", tvae) == "v1"
        assert registry.register("tvae-prod", tvae) == "v2"
        assert registry.versions("tvae-prod") == ["v1", "v2"]
        assert registry.latest_version("tvae-prod") == "v2"
        assert registry.names() == ["tvae-prod"]

    def test_round_trip_after_restart_serves_identical_bytes(self, tvae, table, tmp_path):
        registry = ModelRegistry(tmp_path, warm_chunk_rows=CHUNK)
        registry.register("m", tvae)
        reference = tvae.sample(120, seed=11)
        # A fresh registry over the same directory = a server restart.
        restarted = ModelRegistry(tmp_path, warm_chunk_rows=CHUNK)
        loaded = restarted.get("m")
        assert loaded is not tvae
        assert loaded.sample(120, seed=11) == reference
        # And the sharded engine over the loaded model keeps the contract.
        with ShardedSampler(loaded, workers=2, chunk_size=CHUNK) as sampler:
            assert sampler.sample(120, seed=11) == Table.concat(
                list(tvae.sample_batches(120, CHUNK, seed=11))
            )

    def test_get_is_cached_and_warm(self, tvae, tmp_path):
        registry = ModelRegistry(tmp_path, warm_chunk_rows=CHUNK)
        registry.register("m", tvae)
        restarted = ModelRegistry(tmp_path, warm_chunk_rows=CHUNK)
        loaded = restarted.get("m")
        assert restarted.get("m") is loaded
        # Warm start: the packed serving caches exist before any request.
        assert getattr(loaded, "_packed_decoder", None) is not None
        assert getattr(loaded, "_serving_block_sampler", None) is not None

    def test_cold_cached_model_is_warmed_by_a_later_warm_get(self, tvae, tmp_path):
        registry = ModelRegistry(tmp_path, warm_chunk_rows=CHUNK)
        registry.register("m", tvae, warm=False)
        restarted = ModelRegistry(tmp_path, warm_chunk_rows=CHUNK)
        cold = restarted.get("m", warm=False)
        assert getattr(cold, "_packed_decoder", None) is None
        # warm defaults to True and must warm the instance cached cold above.
        warmed = restarted.get("m")
        assert warmed is cold
        assert getattr(warmed, "_packed_decoder", None) is not None

    def test_version_pinning(self, table, tmp_path):
        registry = ModelRegistry(tmp_path, warm_chunk_rows=CHUNK)
        first = SMOTESurrogate(k_neighbors=3).fit(table)
        second = SMOTESurrogate(k_neighbors=5).fit(table)
        registry.register("m", first)
        registry.register("m", second)
        assert registry.get("m", "v1").sample(40, seed=2) == first.sample(40, seed=2)
        assert registry.get("m").sample(40, seed=2) == second.sample(40, seed=2)

    def test_rejects_unfitted_and_bad_names(self, tvae, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(RuntimeError, match="unfitted"):
            registry.register("m", TVAESurrogate())
        with pytest.raises(ValueError, match="invalid model name"):
            registry.register("../escape", tvae)
        with pytest.raises(KeyError, match="no model registered"):
            registry.get("missing")
        registry.register("m", tvae)
        with pytest.raises(KeyError, match="no version"):
            registry.get("m", "v99")


class _SlowSurrogate(Surrogate):
    """Deterministic test double: constant output, configurable delay/failure."""

    name = "slow"

    def __init__(self, delay=0.0, fail_on=None):
        super().__init__()
        self.delay = delay
        self.fail_on = fail_on

    def fit(self, table):
        self._mark_fitted(table)
        return self

    def _sample_exact(self, n, *, seed=None):
        if self.fail_on is not None and n == self.fail_on:
            raise RuntimeError("injected sampling failure")
        if self.delay:
            time.sleep(self.delay)
        return Table({"x": np.zeros(n)}, self.schema_)


def _slow_model(delay=0.0, fail_on=None):
    table = Table({"x": np.arange(8.0)}, TableSchema.from_columns(numerical=["x"]))
    return _SlowSurrogate(delay=delay, fail_on=fail_on).fit(table)


class TestSamplingService:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_microbatched_equals_individual(self, tvae, workers):
        seeds = [101, 202, 303, 404]
        with SamplingService(tvae, workers=workers, chunk_size=CHUNK) as service:
            requests = [
                service.submit(120, seed=seed, sampling_mode="fast") for seed in seeds
            ]
            coalesced = [request.result(timeout=120) for request in requests]
        with ShardedSampler(tvae, workers=1, chunk_size=CHUNK) as solo:
            for seed, table in zip(seeds, coalesced):
                assert table == solo.sample(120, seed=seed, sampling_mode="fast")

    def test_exact_mode_requests_match_the_streaming_api(self, tvae):
        with SamplingService(tvae, workers=1, chunk_size=CHUNK) as service:
            served = service.sample(110, seed=13, sampling_mode="exact")
        assert served == Table.concat(list(tvae.sample_batches(110, CHUNK, seed=13)))

    def test_zero_row_request(self, tvae):
        with SamplingService(tvae, workers=1, chunk_size=CHUNK) as service:
            empty = service.sample(0, seed=1)
        assert len(empty) == 0
        assert empty.schema == tvae.schema_

    def test_stats_account_requests_and_rows(self, tvae):
        with SamplingService(tvae, workers=1, chunk_size=CHUNK) as service:
            for seed in range(3):
                service.sample(60, seed=seed)
            stats = service.stats()
        assert stats.total_requests == 3
        assert stats.total_rows == 180
        assert stats.rows_per_second > 0
        assert stats.queue_depth == 0
        assert stats.in_flight_rows == 0
        assert 0 <= stats.p50_latency <= stats.p95_latency

    def test_backpressure_rejects_when_budget_is_full(self):
        model = _slow_model(delay=0.3)
        with SamplingService(
            model, workers=1, chunk_size=1000, max_inflight_rows=100
        ) as service:
            first = service.submit(80, seed=1)  # occupies the budget while slow
            with pytest.raises(ServiceOverloaded):
                service.submit(50, seed=2, wait=False)
            # Blocking submission waits for the budget instead of failing.
            second = service.submit(50, seed=3)
            assert len(first.result(timeout=30)) == 80
            assert len(second.result(timeout=30)) == 50

    def test_oversized_request_admitted_when_idle(self):
        model = _slow_model()
        with SamplingService(
            model, workers=1, chunk_size=1000, max_inflight_rows=10
        ) as service:
            assert len(service.sample(500, seed=1)) == 500

    def test_blocked_submitters_wake_in_parallel(self):
        model = _slow_model(delay=0.2)
        with SamplingService(
            model, workers=1, chunk_size=1000, max_inflight_rows=100
        ) as service:
            service.submit(90, seed=1)
            results = []

            def late_submit():
                results.append(service.sample(90, seed=2))

            thread = threading.Thread(target=late_submit)
            thread.start()
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert len(results) == 1 and len(results[0]) == 90

    def test_invalid_seed_rejected_in_the_callers_thread(self, tvae):
        # A bad seed must fail at submit(), not kill the dispatcher thread
        # (which would wedge every other request).
        with SamplingService(tvae, workers=1, chunk_size=CHUNK) as service:
            with pytest.raises(TypeError):
                service.submit(10, seed="not-a-seed")
            assert len(service.sample(20, seed=1)) == 20  # still healthy

    def test_admission_is_fifo(self):
        # An oversized request blocked on the budget must not be starved by
        # later small requests: admission order is arrival order.
        model = _slow_model(delay=0.15)
        with SamplingService(
            model, workers=1, chunk_size=1000, max_inflight_rows=100
        ) as service:
            service.submit(90, seed=1)  # occupies the budget
            order = []

            def submit_big():
                service.submit(95, seed=2)  # needs the budget to fully drain
                order.append("big")

            def submit_small():
                service.submit(10, seed=3)
                order.append("small")

            big = threading.Thread(target=submit_big)
            big.start()
            time.sleep(0.05)  # the big request is queued first...
            small = threading.Thread(target=submit_small)
            small.start()
            big.join(timeout=30)
            small.join(timeout=30)
            assert order and order[0] == "big"

    def test_sampling_failures_propagate_to_the_request(self):
        model = _slow_model(fail_on=13)
        with SamplingService(model, workers=1, chunk_size=1000) as service:
            good = service.submit(7, seed=1)
            bad = service.submit(13, seed=2)
            assert len(good.result(timeout=30)) == 7
            with pytest.raises(RuntimeError, match="injected sampling failure"):
                bad.result(timeout=30)

    def test_validation_and_close_semantics(self, tvae):
        service = SamplingService(tvae, workers=1, chunk_size=CHUNK)
        with pytest.raises(ValueError, match="unknown sampling mode"):
            service.submit(5, sampling_mode="turbo")
        with pytest.raises(ValueError, match="negative"):
            service.submit(-2)
        service.close()
        service.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(5, seed=1)
        with pytest.raises(ValueError, match="positive"):
            SamplingService(tvae, workers=1, max_inflight_rows=0)


class TestRegistryStagesAndIntegrity:
    def test_stage_aliases_resolve_and_promote_flips_prod(self, tvae, table, tmp_path):
        registry = ModelRegistry(tmp_path, warm_chunk_rows=CHUNK)
        v1 = registry.register("m", tvae, stage="prod")
        candidate = SMOTESurrogate().fit(table)
        v2 = registry.register("m", candidate, stage="canary")
        assert registry.stages("m") == {"prod": v1, "canary": v2}
        assert registry.get("m", "canary") is registry.get("m", v2)
        # Promoting the canary alias flips prod atomically and clears canary.
        assert registry.promote("m", "canary") == v2
        assert registry.stage_version("m", "prod") == v2
        assert registry.stage_version("m", "canary") is None

    def test_clear_stage_is_the_rollback_path(self, tvae, tmp_path):
        registry = ModelRegistry(tmp_path, warm_chunk_rows=CHUNK)
        registry.register("m", tvae, stage="canary")
        assert registry.clear_stage("m", "canary") is True
        assert registry.clear_stage("m", "canary") is False
        with pytest.raises(KeyError, match="no stage 'canary'"):
            registry.get("m", "canary")

    def test_stage_names_are_validated(self, tvae, tmp_path):
        registry = ModelRegistry(tmp_path, warm_chunk_rows=CHUNK)
        version = registry.register("m", tvae)
        for bad in ("v3", "9lives", "pro d"):
            with pytest.raises(ValueError, match="invalid stage"):
                registry.set_stage("m", bad, version)
        with pytest.raises(KeyError, match="no version"):
            registry.set_stage("m", "prod", "v99")

    def test_corrupted_snapshot_raises_not_unpickles(self, tvae, tmp_path):
        from repro.serve.registry import RegistryCorrupted

        registry = ModelRegistry(tmp_path, warm_chunk_rows=CHUNK)
        version = registry.register("m", tvae)
        registry.verify("m", version)  # intact snapshot passes
        path = registry.path_of("m", version)
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        path.write_bytes(bytes(payload))
        with pytest.raises(RegistryCorrupted, match="SHA-256"):
            registry.verify("m", version)
        # A fresh registry (cold cache) must refuse to load the tampered bytes.
        with pytest.raises(RegistryCorrupted, match="SHA-256"):
            ModelRegistry(tmp_path, warm_chunk_rows=CHUNK).get("m", version)

    def test_sidecarless_legacy_snapshot_loads_but_fails_explicit_verify(
        self, tvae, tmp_path
    ):
        from repro.serve.registry import RegistryCorrupted

        registry = ModelRegistry(tmp_path, warm_chunk_rows=CHUNK)
        version = registry.register("m", tvae)
        registry.digest_path_of("m", version).unlink()
        fresh = ModelRegistry(tmp_path, warm_chunk_rows=CHUNK)
        assert fresh.get("m", version).is_fitted  # lenient legacy load
        with pytest.raises(RegistryCorrupted, match="no SHA-256 sidecar"):
            fresh.verify("m", version)

    def test_writes_leave_no_temp_files(self, tvae, tmp_path):
        registry = ModelRegistry(tmp_path, warm_chunk_rows=CHUNK)
        registry.register("m", tvae, stage="prod")
        leftovers = [p for p in (tmp_path / "m").iterdir() if ".tmp-" in p.name]
        assert leftovers == []


class TestHotSwap:
    def test_swap_serves_the_new_model_with_no_lost_requests(self, tvae, table):
        replacement = SMOTESurrogate().fit(table)
        with SamplingService(tvae, workers=1, chunk_size=CHUNK) as service:
            before = service.sample(70, seed=21, sampling_mode="fast")
            service.swap_model(replacement)
            after = service.sample(70, seed=21, sampling_mode="fast")
            assert service.model_swaps == 1
        with ShardedSampler(tvae, workers=1, chunk_size=CHUNK) as solo:
            assert before == solo.sample(70, seed=21, sampling_mode="fast")
        with ShardedSampler(replacement, workers=1, chunk_size=CHUNK) as solo:
            assert after == solo.sample(70, seed=21, sampling_mode="fast")

    def test_swap_rejects_unfitted_and_closed(self, tvae, table):
        service = SamplingService(tvae, workers=1, chunk_size=CHUNK)
        with pytest.raises(RuntimeError, match="not fitted"):
            service.swap_model(SMOTESurrogate())
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.swap_model(SMOTESurrogate().fit(table))
