"""Tests of the package-level public API and the logging helpers."""

import logging

import repro
from repro.utils.logging import get_logger, set_verbosity


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_headline_classes_importable(self):
        assert repro.TabDDPMSurrogate.name == "TabDDPM"
        assert repro.SMOTESurrogate.name == "SMOTE"
        assert repro.CTABGANPlusSurrogate.name == "CTABGAN+"
        assert repro.TVAESurrogate.name == "TVAE"

    def test_panda_schema_shape(self):
        assert len(repro.PANDA_SCHEMA) == 9
        assert len(repro.PANDA_SCHEMA.numerical) == 4
        assert len(repro.PANDA_SCHEMA.categorical) == 5

    def test_available_surrogates_subset_of_registry(self):
        from repro.models import SURROGATE_REGISTRY

        for name in repro.available_surrogates():
            assert name in SURROGATE_REGISTRY


class TestLogging:
    def test_logger_namespaced(self):
        logger = get_logger("mycomponent")
        assert logger.name == "repro.mycomponent"

    def test_logger_keeps_existing_namespace(self):
        logger = get_logger("repro.models.tvae")
        assert logger.name == "repro.models.tvae"

    def test_single_handler_on_root(self):
        get_logger("a")
        get_logger("b")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1

    def test_set_verbosity_toggles_level(self):
        root = logging.getLogger("repro")
        set_verbosity(True)
        assert root.level == logging.INFO
        set_verbosity(False)
        assert root.level == logging.WARNING
