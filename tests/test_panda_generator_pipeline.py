"""Tests for the raw-record generator and the Fig. 3(b) filtering pipeline."""

import numpy as np
import pytest

from repro.panda.generator import GeneratorConfig, PandaWorkloadGenerator
from repro.panda.pipeline import dataset_profile
from repro.panda.records import (
    CATEGORICAL_FEATURES,
    JOB_STATUSES,
    NUMERICAL_FEATURES,
    PANDA_SCHEMA,
    RAW_SCHEMA,
)


class TestGeneratorConfig:
    def test_defaults_valid(self):
        config = GeneratorConfig()
        assert config.n_jobs > 0

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            GeneratorConfig(n_jobs=0)
        with pytest.raises(ValueError):
            GeneratorConfig(analysis_fraction=0.0)
        with pytest.raises(ValueError):
            GeneratorConfig(transient_fraction=1.0)


class TestRawGeneration:
    def test_schema_and_rows(self, raw_table):
        assert raw_table.schema == RAW_SCHEMA
        assert len(raw_table) == 4000

    def test_deterministic_for_seed(self):
        a = PandaWorkloadGenerator(GeneratorConfig(n_jobs=500, seed=9)).generate_raw()
        b = PandaWorkloadGenerator(GeneratorConfig(n_jobs=500, seed=9)).generate_raw()
        assert a == b

    def test_different_seeds_differ(self):
        a = PandaWorkloadGenerator(GeneratorConfig(n_jobs=500, seed=1)).generate_raw()
        b = PandaWorkloadGenerator(GeneratorConfig(n_jobs=500, seed=2)).generate_raw()
        assert a != b

    def test_creation_times_in_window(self, raw_table, panda_generator):
        times = np.asarray(raw_table["creationtime"])
        assert times.min() >= 0.0
        assert times.max() <= panda_generator.config.n_days

    def test_task_type_mix(self, raw_table):
        fraction = np.mean(np.asarray(raw_table["tasktype"]) == "analysis")
        assert 0.6 < fraction < 0.85

    def test_sites_come_from_catalog(self, raw_table, panda_generator):
        assert set(np.unique(raw_table["computingsite"])) <= set(panda_generator.sites.names)

    def test_positive_numeric_columns(self, raw_table):
        assert (np.asarray(raw_table["ninputdatafiles"]) >= 1).all()
        assert (np.asarray(raw_table["inputfilebytes"]) > 0).all()
        assert (np.asarray(raw_table["cputime_hours"]) > 0).all()
        assert (np.asarray(raw_table["corecount"]) >= 1).all()

    def test_override_row_count(self, panda_generator):
        small = panda_generator.generate_raw(200, seed=0)
        assert len(small) == 200

    def test_status_mix_contains_failures_and_transients(self, raw_table):
        statuses = set(np.unique(raw_table["jobstatus"]))
        assert "finished" in statuses and "failed" in statuses
        assert statuses - set(JOB_STATUSES), "expected some transient statuses in raw data"


class TestFilteringPipeline:
    def test_final_schema(self, panda_table):
        assert panda_table.schema == PANDA_SCHEMA
        assert list(panda_table.columns) == list(NUMERICAL_FEATURES) + list(CATEGORICAL_FEATURES)

    def test_funnel_monotone_decreasing(self, filter_report):
        rows = [r["rows"] for r in filter_report.as_rows()]
        assert all(a >= b for a, b in zip(rows, rows[1:]))

    def test_funnel_accounts_for_all_removals(self, filter_report, raw_table):
        removed = sum(stage.rows_removed for stage in filter_report.stages)
        assert filter_report.gross_records - removed == filter_report.final_records
        assert filter_report.gross_records == len(raw_table)

    def test_only_daod_datatypes_remain(self, panda_table):
        assert all(str(d).startswith("DAOD") for d in np.unique(panda_table["datatype"]))

    def test_only_final_statuses_remain(self, panda_table):
        assert set(np.unique(panda_table["jobstatus"])) <= set(JOB_STATUSES)

    def test_jobstatus_has_at_most_four_values(self, panda_table):
        assert panda_table.nunique("jobstatus") <= 4

    def test_workload_positive(self, panda_table):
        assert (np.asarray(panda_table["workload"]) > 0).all()

    def test_workload_correlates_with_input_bytes(self, panda_table):
        log_w = np.log(np.asarray(panda_table["workload"]))
        log_b = np.log(np.asarray(panda_table["inputfilebytes"]))
        corr = np.corrcoef(log_w, log_b)[0, 1]
        assert corr > 0.5

    def test_failure_rate_increases_with_workload(self, panda_table):
        workload = np.asarray(panda_table["workload"])
        failed = np.asarray(panda_table["jobstatus"]) == "failed"
        median = np.median(workload)
        high_rate = failed[workload > median].mean()
        low_rate = failed[workload <= median].mean()
        assert high_rate > low_rate

    def test_profile_matches_paper_feature_kinds(self, panda_table):
        profile = {row["name"]: row["kind"] for row in dataset_profile(panda_table)}
        for name in NUMERICAL_FEATURES:
            assert profile[name] == "numerical"
        for name in CATEGORICAL_FEATURES:
            assert profile[name] == "categorical"

    def test_report_formatting(self, filter_report):
        text = filter_report.format()
        assert "gross PanDA records" in text
        assert "DAOD" in text

    def test_generate_training_table_shortcut(self):
        generator = PandaWorkloadGenerator(GeneratorConfig(n_jobs=1000, seed=4))
        table = generator.generate_training_table()
        assert table.schema == PANDA_SCHEMA
        assert 300 < len(table) < 1000

    def test_category_imbalance_present(self, panda_table):
        # The paper stresses imbalanced categorical columns; the most common
        # computing site should dominate the least common by a wide margin.
        counts = list(panda_table.value_counts("computingsite").values())
        assert counts[0] > 5 * counts[-1]
