"""Shared fixtures for the test suite.

The expensive fixtures (the synthetic PanDA trace and its train/test split)
are session-scoped so the many tests that need "a realistic mixed-type table"
share one generation pass.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.panda.generator import GeneratorConfig, PandaWorkloadGenerator
from repro.panda.pipeline import FilteringPipeline
from repro.tabular.schema import TableSchema
from repro.tabular.splits import train_test_split
from repro.tabular.table import Table


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def panda_generator() -> PandaWorkloadGenerator:
    return PandaWorkloadGenerator(GeneratorConfig(n_jobs=4000, n_days=60.0, seed=3))


@pytest.fixture(scope="session")
def raw_table(panda_generator) -> Table:
    return panda_generator.generate_raw()


@pytest.fixture(scope="session")
def panda_table(panda_generator, raw_table) -> Table:
    pipeline = FilteringPipeline(panda_generator.sites)
    table, _report = pipeline.run(raw_table)
    return table


@pytest.fixture(scope="session")
def filter_report(panda_generator, raw_table):
    pipeline = FilteringPipeline(panda_generator.sites)
    _table, report = pipeline.run(raw_table)
    return report


@pytest.fixture(scope="session")
def split_tables(panda_table):
    return train_test_split(panda_table, test_fraction=0.2, seed=5)


@pytest.fixture(scope="session")
def train_table(split_tables) -> Table:
    return split_tables[0]


@pytest.fixture(scope="session")
def test_table(split_tables) -> Table:
    return split_tables[1]


@pytest.fixture()
def tiny_table() -> Table:
    """A small handcrafted mixed-type table for fast, deterministic tests."""
    schema = TableSchema.from_columns(
        numerical=["x", "y"], categorical=["color", "status"]
    )
    n = 200
    gen = np.random.default_rng(0)
    x = gen.normal(0.0, 1.0, size=n)
    y = 2.0 * x + gen.normal(0.0, 0.3, size=n)
    color = np.where(x > 0, "red", "blue")
    status = gen.choice(["ok", "fail", "retry"], size=n, p=[0.7, 0.2, 0.1])
    return Table({"x": x, "y": y, "color": color, "status": status}, schema)
