"""Regression tests for the ``repro.utils.logging`` helpers.

The load-bearing contract: a plain ``get_logger(name)`` call (the form every
module uses at import time) must not undo a verbosity the user already set —
the historical bug was ``get_logger`` unconditionally resetting the hierarchy
to WARNING, so importing one more module silently turned ``--verbose`` off.
"""

import logging

import pytest

from repro.utils import logging as repro_logging
from repro.utils.logging import get_logger, set_verbosity


@pytest.fixture(autouse=True)
def _restore_level():
    root = logging.getLogger("repro")
    before = root.level
    yield
    root.setLevel(before)


class TestGetLogger:
    def test_names_are_rooted_under_repro(self):
        assert get_logger("serve.sharded").name == "repro.serve.sharded"
        assert get_logger("repro.serve.shm").name == "repro.serve.shm"

    def test_configures_a_single_root_handler(self):
        get_logger("a")
        get_logger("b")
        root = logging.getLogger("repro")
        assert repro_logging._configured
        assert len(root.handlers) == 1
        assert not root.propagate

    def test_plain_call_does_not_reset_verbosity(self):
        # The regression: set_verbosity(True) then a later module-level
        # get_logger(name) must leave the hierarchy at INFO.
        set_verbosity(True)
        get_logger("serve.late_import")
        assert logging.getLogger("repro").level == logging.INFO

    def test_explicit_level_still_overrides(self):
        set_verbosity(True)
        get_logger("serve.debug_me", level=logging.DEBUG)
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_set_verbosity_toggles_both_ways(self):
        set_verbosity(True)
        assert logging.getLogger("repro").level == logging.INFO
        set_verbosity(False)
        assert logging.getLogger("repro").level == logging.WARNING
