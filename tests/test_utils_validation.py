"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_fitted,
    check_in_options,
    check_positive,
    check_probability,
)


class TestCheckArray:
    def test_converts_list(self):
        out = check_array([1, 2, 3], dtype=np.float64)
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.float64

    def test_ndim_enforced(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_array([1.0, 2.0], ndim=2)

    def test_empty_rejected_when_requested(self):
        with pytest.raises(ValueError, match="empty"):
            check_array([], allow_empty=False)

    def test_empty_allowed_by_default(self):
        assert check_array([]).size == 0

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([1.0, np.nan])

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            check_array([np.inf, 1.0])

    def test_name_in_error(self):
        with pytest.raises(ValueError, match="myarg"):
            check_array([[1.0]], ndim=1, name="myarg")


class TestCheckFitted:
    def test_passes_when_set(self):
        class Obj:
            attr_ = 1

        check_fitted(Obj(), ["attr_"])

    def test_raises_when_missing(self):
        class Obj:
            attr_ = None

        with pytest.raises(RuntimeError, match="not fitted"):
            check_fitted(Obj(), ["attr_"])


class TestScalarChecks:
    def test_check_positive_accepts(self):
        assert check_positive(2.5, "x") == 2.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_check_positive_non_strict_accepts_zero(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_check_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")

    def test_check_in_options(self):
        assert check_in_options("a", ["a", "b"], "opt") == "a"
        with pytest.raises(ValueError):
            check_in_options("c", ["a", "b"], "opt")
