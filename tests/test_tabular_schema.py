"""Tests for repro.tabular.schema."""

import pytest

from repro.tabular.schema import ColumnKind, ColumnSchema, TableSchema


class TestColumnSchema:
    def test_kind_coercion_from_string(self):
        col = ColumnSchema("a", "numerical")
        assert col.kind is ColumnKind.NUMERICAL

    def test_is_numerical_flag(self):
        assert ColumnSchema("a", ColumnKind.NUMERICAL).is_numerical
        assert not ColumnSchema("a", ColumnKind.NUMERICAL).is_categorical

    def test_is_categorical_flag(self):
        assert ColumnSchema("a", ColumnKind.CATEGORICAL).is_categorical

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ColumnSchema("", ColumnKind.NUMERICAL)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            ColumnSchema("a", "weird")


class TestTableSchema:
    def make(self):
        return TableSchema.from_columns(numerical=["w", "t"], categorical=["site", "status"])

    def test_names_order(self):
        assert self.make().names == ["w", "t", "site", "status"]

    def test_numerical_and_categorical_lists(self):
        schema = self.make()
        assert schema.numerical == ["w", "t"]
        assert schema.categorical == ["site", "status"]

    def test_kind_of(self):
        schema = self.make()
        assert schema.kind_of("w") is ColumnKind.NUMERICAL
        assert schema.kind_of("site") is ColumnKind.CATEGORICAL

    def test_contains(self):
        schema = self.make()
        assert "w" in schema
        assert "missing" not in schema

    def test_getitem_unknown_raises(self):
        with pytest.raises(KeyError):
            self.make()["nope"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TableSchema([ColumnSchema("a", "numerical"), ColumnSchema("a", "categorical")])

    def test_from_kinds_preserves_order(self):
        schema = TableSchema.from_kinds({"b": "categorical", "a": "numerical"})
        assert schema.names == ["b", "a"]

    def test_select_subset(self):
        sub = self.make().select(["site", "w"])
        assert sub.names == ["site", "w"]

    def test_drop(self):
        schema = self.make().drop(["t"])
        assert schema.names == ["w", "site", "status"]

    def test_drop_unknown_raises(self):
        with pytest.raises(KeyError):
            self.make().drop(["nope"])

    def test_rename(self):
        renamed = self.make().rename({"w": "workload"})
        assert "workload" in renamed and "w" not in renamed

    def test_with_column(self):
        extended = self.make().with_column(ColumnSchema("new", "numerical"))
        assert extended.names[-1] == "new"

    def test_roundtrip_dict(self):
        schema = self.make()
        assert TableSchema.from_dict(schema.to_dict()) == schema

    def test_equality(self):
        assert self.make() == self.make()
        assert self.make() != self.make().drop(["w"])

    def test_describe(self):
        pairs = self.make().describe()
        assert ("w", "numerical") in pairs and ("site", "categorical") in pairs

    def test_len_and_iter(self):
        schema = self.make()
        assert len(schema) == 4
        assert [c.name for c in schema] == schema.names
