"""The observability plane wired through the serving stack.

Three contracts:

* **span taxonomy** — a traced request records the full
  ``request → admission/queue_wait/dispatch/chunk[i] → attempt[j] →
  worker_compute/shm_*/assemble/deliver`` tree, with worker-side spans
  stitched under the parent's seed-derived trace ID (no context header
  crosses the pool — the chunk's ``SeedSequence`` child *is* the context);
* **byte invisibility** — tracing never changes served bytes: sampler
  output fingerprints and scenario deterministic cores are identical with
  tracing on or off, including under an injected fault plan;
* **exposition** — ``GET /metrics`` on a live front door serves valid
  Prometheus text carrying every required ``repro_serve_*`` series, and
  scenario reports embed the per-backend registry snapshot in their
  timing layer.
"""

import os
import urllib.request

import numpy as np
import pytest

from repro.models.smote import SMOTESurrogate
from repro.obs.metrics import REQUIRED_SERVE_SERIES, validate_prometheus_text
from repro.obs.tracing import Tracer, chunk_span_id, request_span_id, trace_id_from_seed
from repro.scenarios import ScenarioEngine, get_scenario
from repro.serve import (
    FrontDoor,
    RequestSpec,
    SamplingService,
    ShardedSampler,
    table_fingerprint,
)
from repro.tabular.schema import TableSchema
from repro.tabular.table import Table

CHUNK = 64


def _table(n=400, seed=29):
    rng = np.random.default_rng(seed)
    data = {
        "x": rng.normal(size=n) * 3.0,
        "cat": rng.choice(["a", "b", "c"], n),
        "site": rng.choice([f"s{i}" for i in range(9)], n),
    }
    return Table(
        data, TableSchema.from_columns(numerical=["x"], categorical=["cat", "site"])
    )


@pytest.fixture(scope="module")
def model():
    return SMOTESurrogate(k_neighbors=3).fit(_table())


@pytest.fixture(scope="module")
def traced_run(model):
    """One traced request through a live 2-worker service."""
    tracer = Tracer()
    with SamplingService(model, workers=2, chunk_size=CHUNK, tracer=tracer) as service:
        table = service.submit(
            RequestSpec(4 * CHUNK, seed=42, tenant="acme", priority="interactive")
        ).result(timeout=60)
    return tracer, table


class TestSpanTaxonomy:
    def test_single_trace_with_seed_derived_id(self, traced_run):
        tracer, _table = traced_run
        traces = tracer.traces()
        assert list(traces) == [trace_id_from_seed(42)]

    def test_full_span_taxonomy_recorded(self, traced_run):
        tracer, _table = traced_run
        names = {span.name for span in tracer.spans()}
        assert {
            "request",
            "admission",
            "queue_wait",
            "dispatch",
            "assemble",
            "deliver",
        } <= names
        assert any(name.startswith("chunk[") for name in names)
        assert any(name.startswith("attempt[") for name in names)
        assert "worker_compute" in names

    def test_root_span_and_parent_links(self, traced_run):
        tracer, _table = traced_run
        trace = trace_id_from_seed(42)
        root = request_span_id(trace)
        spans = tracer.spans()
        (request_span,) = [s for s in spans if s.name == "request"]
        assert request_span.span_id == root
        assert request_span.parent_id is None
        for span in spans:
            if span.name in ("admission", "queue_wait", "deliver", "assemble"):
                assert span.parent_id == root
            if span.name.startswith("chunk["):
                assert span.parent_id == root
        # Every worker_compute span hangs off its chunk's deterministic ID.
        chunk_ids = {chunk_span_id(trace, i) for i in range(4)}
        computes = [s for s in spans if s.name == "worker_compute"]
        assert computes
        assert {s.parent_id for s in computes} <= chunk_ids

    def test_worker_spans_recorded_in_worker_processes(self, traced_run):
        tracer, _table = traced_run
        computes = [s for s in tracer.spans() if s.name == "worker_compute"]
        assert any(span.pid != os.getpid() for span in computes)

    def test_request_attrs_carry_tenant_and_priority(self, traced_run):
        tracer, _table = traced_run
        (request_span,) = [s for s in tracer.spans() if s.name == "request"]
        assert request_span.attrs["tenant"] == "acme"
        assert request_span.attrs["priority"] == "interactive"


class TestByteInvisibility:
    def test_sampler_bytes_identical_traced_vs_untraced(self, model):
        with ShardedSampler(model, workers=2, chunk_size=CHUNK) as plain:
            expected = table_fingerprint(plain.sample(300, seed=5))
        with ShardedSampler(
            model, workers=2, chunk_size=CHUNK, tracer=Tracer()
        ) as traced:
            actual = table_fingerprint(traced.sample(300, seed=5))
        assert actual == expected


#: The chaos-drift proving ground, scaled to CI size — drift plus a worker
#: kill armed at tick 3, so the invariance check below covers tracing under
#: an injected FaultPlan (retries, pool restart, resubmission) too.
CHAOS_DRIFT_SMALL = get_scenario("chaos-drift").scaled(
    ticks=8,
    window_rows=256,
    train_rows=1024,
    canary_rows=512,
    fault_arm_ticks=(3,),
)


@pytest.fixture(scope="module")
def scenario_reports():
    untraced = ScenarioEngine(CHAOS_DRIFT_SMALL, seed=7, workers=2).run()
    tracer = Tracer()
    traced = ScenarioEngine(CHAOS_DRIFT_SMALL, seed=7, workers=2, tracer=tracer).run()
    return untraced, traced, tracer


class TestScenarioInvariance:
    def test_deterministic_core_identical_with_tracing_on_or_off(self, scenario_reports):
        untraced, traced, _tracer = scenario_reports
        assert traced.deterministic_dict() == untraced.deterministic_dict()
        assert traced.faults_injected > 0  # the kill genuinely fired

    def test_traced_run_recorded_spans(self, scenario_reports):
        _untraced, _traced, tracer = scenario_reports
        names = {span.name for span in tracer.spans()}
        assert "request" in names and "worker_compute" in names

    def test_report_timing_layer_carries_obs_snapshots(self, scenario_reports):
        _untraced, traced, _tracer = scenario_reports
        obs = traced.as_dict()["timing"]["obs"]
        assert obs, "scenario reports must embed per-backend metric snapshots"
        for snapshot in obs.values():
            assert "repro_serve_requests_total" in snapshot
        # The obs block never leaks into the deterministic core.
        assert "obs" not in traced.deterministic_dict()


class TestMetricsExposition:
    @pytest.fixture(scope="class")
    def door(self, model):
        with SamplingService(model, workers=2, chunk_size=CHUNK) as service:
            service.submit(RequestSpec(2 * CHUNK, seed=9, tenant="acme")).result(timeout=60)
            door = FrontDoor({"prod": service})
            door.start_http()
            yield door
            door.stop_http()
            door.close()

    def test_metrics_page_is_valid_prometheus_text(self, door):
        host, port = door.address
        with urllib.request.urlopen(f"http://{host}:{port}/metrics", timeout=30) as response:
            assert response.status == 200
            content_type = response.headers.get("Content-Type", "")
            text = response.read().decode("utf-8")
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert validate_prometheus_text(text, required=REQUIRED_SERVE_SERIES) == []
        assert 'backend="prod"' in text

    def test_stats_tree_still_serves_alongside_metrics(self, door):
        import json

        host, port = door.address
        with urllib.request.urlopen(f"http://{host}:{port}/stats", timeout=30) as response:
            payload = json.loads(response.read().decode("utf-8"))
        assert payload["models"]["prod"]["throughput"]["total_requests"] >= 1
