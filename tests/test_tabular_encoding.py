"""Tests for repro.tabular.encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tabular.encoding import FrequencyTable, LabelEncoder, OneHotEncoder


class TestLabelEncoder:
    def test_most_frequent_gets_code_zero(self):
        enc = LabelEncoder().fit(["b", "a", "b", "b", "a", "c"])
        assert enc.categories_[0] == "b"

    def test_transform_roundtrip(self):
        values = ["x", "y", "z", "y", "x"]
        enc = LabelEncoder().fit(values)
        codes = enc.transform(values)
        np.testing.assert_array_equal(enc.inverse_transform(codes), np.asarray(values))

    def test_unknown_maps_to_most_frequent(self):
        enc = LabelEncoder().fit(["a", "a", "b"])
        assert enc.transform(["zzz"])[0] == 0

    def test_unknown_error_mode(self):
        enc = LabelEncoder(handle_unknown="error").fit(["a", "b"])
        with pytest.raises(ValueError, match="unknown"):
            enc.transform(["c"])

    def test_invalid_handle_unknown(self):
        with pytest.raises(ValueError):
            LabelEncoder(handle_unknown="bogus")

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            LabelEncoder().fit([])

    def test_n_categories(self):
        assert LabelEncoder().fit(["a", "b", "c", "a"]).n_categories == 3

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(["a"])

    def test_inverse_out_of_range(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            enc.inverse_transform([5])

    def test_numeric_categories_coerced(self):
        enc = LabelEncoder().fit([1, 2, 2, 3])
        assert set(enc.categories_) == {"1", "2", "3"}

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, values):
        enc = LabelEncoder().fit(values)
        recovered = enc.inverse_transform(enc.transform(values))
        assert recovered.tolist() == values


class TestOneHotEncoder:
    def test_shape(self):
        enc = OneHotEncoder().fit(["a", "b", "c"])
        assert enc.transform(["a", "b"]).shape == (2, 3)

    def test_rows_sum_to_one(self):
        enc = OneHotEncoder().fit(["a", "b", "c", "a"])
        onehot = enc.transform(["a", "c", "b"])
        np.testing.assert_allclose(onehot.sum(axis=1), 1.0)

    def test_roundtrip(self):
        values = ["p", "q", "p", "r"]
        enc = OneHotEncoder().fit(values)
        np.testing.assert_array_equal(
            enc.inverse_transform(enc.transform(values)), np.asarray(values)
        )

    def test_inverse_accepts_soft_probabilities(self):
        enc = OneHotEncoder().fit(["a", "b"])
        soft = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert enc.inverse_transform(soft).tolist() == ["a", "b"]

    def test_inverse_wrong_width(self):
        enc = OneHotEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            enc.inverse_transform(np.ones((2, 3)))

    def test_transform_codes_matches_label_encoder(self):
        values = ["a", "b", "b", "c"]
        enc = OneHotEncoder().fit(values)
        np.testing.assert_array_equal(
            enc.transform_codes(values), enc.label_encoder.transform(values)
        )


class TestFrequencyTable:
    def test_probabilities_normalised(self):
        table = FrequencyTable(["a", "b"], [3.0, 1.0])
        assert table.probabilities.sum() == pytest.approx(1.0)
        assert table.probability_of("a") == pytest.approx(0.75)

    def test_sorted_by_probability(self):
        table = FrequencyTable(["low", "high"], [0.1, 0.9])
        assert table.categories[0] == "high"

    def test_unseen_probability_zero(self):
        assert FrequencyTable(["a"], [1.0]).probability_of("zzz") == 0.0

    def test_from_values(self):
        table = FrequencyTable.from_values(["x", "x", "y"])
        assert table.probability_of("x") == pytest.approx(2.0 / 3.0)

    def test_top_k(self):
        table = FrequencyTable(["a", "b", "c"], [5, 3, 2])
        top = table.top_k(2)
        assert [c for c, _ in top] == ["a", "b"]

    def test_top_k_larger_than_support(self):
        assert len(FrequencyTable(["a"], [1.0]).top_k(5)) == 1

    def test_sample_support(self):
        table = FrequencyTable(["a", "b"], [0.5, 0.5])
        draws = table.sample(100, np.random.default_rng(0))
        assert set(draws) <= {"a", "b"}

    def test_sample_respects_skew(self):
        table = FrequencyTable(["common", "rare"], [0.99, 0.01])
        draws = table.sample(500, np.random.default_rng(1))
        assert (draws == "common").mean() > 0.9

    def test_entropy_uniform_is_maximal(self):
        uniform = FrequencyTable(["a", "b"], [1, 1]).entropy()
        skewed = FrequencyTable(["a", "b"], [9, 1]).entropy()
        assert uniform > skewed

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            FrequencyTable(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            FrequencyTable([], [])
        with pytest.raises(ValueError):
            FrequencyTable(["a"], [-1.0])
        with pytest.raises(ValueError):
            FrequencyTable(["a", "b"], [0.0, 0.0])
