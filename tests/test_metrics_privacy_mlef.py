"""Tests for the DCR privacy metric, MLEF efficacy metric and the report layer."""

import numpy as np
import pytest

from repro.metrics.mlef import MLEFConfig, diff_mlef, machine_learning_efficacy
from repro.metrics.privacy import (
    distance_to_closest_record,
    duplicate_fraction,
    nearest_record_distances,
)
from repro.metrics.report import (
    SurrogateScore,
    evaluate_surrogate_data,
    format_table,
    rank_models,
)
from repro.tabular.table import Table


FAST_MLEF = MLEFConfig(n_estimators=10, learning_rate=0.3, max_depth=4)


class TestDCR:
    def test_copy_of_training_data_has_zero_dcr(self, train_table):
        sample = train_table.head(300)
        assert distance_to_closest_record(train_table, sample) == pytest.approx(0.0, abs=1e-9)

    def test_perturbed_data_has_positive_dcr(self, train_table):
        sample = train_table.head(300)
        noisy_workload = np.asarray(sample["workload"]) * 1.5 + 1.0
        noisy = sample.with_column("workload", noisy_workload, "numerical")
        assert distance_to_closest_record(train_table, noisy) > 0.0

    def test_more_perturbation_larger_dcr(self, train_table):
        sample = train_table.head(200)
        w = np.asarray(sample["workload"])
        small = sample.with_column("workload", w * 1.01, "numerical")
        large = sample.with_column("workload", w * 3.0, "numerical")
        assert distance_to_closest_record(train_table, large) > distance_to_closest_record(
            train_table, small
        )

    def test_nearest_distances_shape(self, train_table, test_table):
        distances = nearest_record_distances(train_table, test_table.head(100))
        assert distances.shape == (100,)
        assert (distances >= 0).all()

    def test_duplicate_fraction_bounds(self, train_table):
        exact = duplicate_fraction(train_table, train_table.head(50))
        assert exact == pytest.approx(1.0)
        shifted = train_table.head(50)
        shifted = shifted.with_column(
            "workload", np.asarray(shifted["workload"]) + 1e9, "numerical"
        )
        assert duplicate_fraction(train_table, shifted) == pytest.approx(0.0)

    def test_empty_tables_rejected(self, train_table):
        empty = Table.empty(train_table.schema)
        with pytest.raises(ValueError):
            nearest_record_distances(train_table, empty)


class TestMLEF:
    def test_real_training_beats_shuffled_training(self, train_table, test_table):
        real_score = machine_learning_efficacy(train_table, test_table, FAST_MLEF, seed=0)
        # Destroy the feature/target relationship by shuffling the target.
        shuffled = train_table.with_column(
            "workload",
            np.random.default_rng(0).permutation(np.asarray(train_table["workload"])),
            "numerical",
        )
        shuffled_score = machine_learning_efficacy(shuffled, test_table, FAST_MLEF, seed=0)
        assert real_score < shuffled_score

    def test_diff_mlef_zero_for_same_data(self, train_table, test_table):
        gap = diff_mlef(train_table, train_table, test_table, FAST_MLEF, seed=0)
        assert gap == pytest.approx(0.0, abs=1e-9)

    def test_diff_mlef_positive_for_noise_data(self, train_table, test_table):
        noise = train_table.with_column(
            "workload",
            np.random.default_rng(1).permutation(np.asarray(train_table["workload"])),
            "numerical",
        )
        assert diff_mlef(train_table, noise, test_table, FAST_MLEF, seed=0) > 0.0

    def test_paper_config_values(self):
        config = MLEFConfig.paper()
        assert config.n_estimators == 200
        assert config.max_depth == 10
        assert config.learning_rate == pytest.approx(1.0)


class TestReport:
    def test_evaluate_identical_data_is_nearly_perfect(self, train_table, test_table):
        score = evaluate_surrogate_data(
            "identity", train_table, test_table, train_table,
            mlef_config=FAST_MLEF, seed=0,
        )
        assert score.wd == pytest.approx(0.0, abs=1e-9)
        assert score.jsd == pytest.approx(0.0, abs=1e-9)
        assert score.diff_corr == pytest.approx(0.0, abs=1e-9)
        assert score.dcr == pytest.approx(0.0, abs=1e-9)
        assert abs(score.diff_mlef) < 1e-9

    def test_skip_mlef(self, train_table, test_table):
        score = evaluate_surrogate_data(
            "quick", train_table, test_table, test_table, compute_mlef=False
        )
        assert np.isnan(score.diff_mlef)

    def test_score_serialisation(self):
        score = SurrogateScore("m", 0.1, 0.2, 0.3, 0.4, 0.5)
        row = score.as_row()
        assert row["WD"] == 0.1 and row["DCR"] == 0.4
        assert score.as_dict()["model"] == "m"

    def test_format_table_contains_all_models(self):
        scores = [
            SurrogateScore("TVAE", 0.9, 0.8, 0.6, 0.14, 5.8),
            SurrogateScore("TabDDPM", 0.8, 0.7, 0.03, 0.02, 0.8),
        ]
        text = format_table(scores)
        assert "TVAE" in text and "TabDDPM" in text
        assert "WD" in text and "diff-MLEF" in text

    def test_rank_models_directionality(self):
        good = SurrogateScore("good", wd=0.1, jsd=0.1, diff_corr=0.1, dcr=0.05, diff_mlef=0.1)
        bad = SurrogateScore("bad", wd=0.9, jsd=0.9, diff_corr=0.9, dcr=0.50, diff_mlef=9.0)
        ranks = rank_models([good, bad])
        assert ranks["WD"][0] == "good"
        assert ranks["diff-MLEF"][0] == "good"
        # DCR is better when larger, so "bad" (higher DCR) ranks first there.
        assert ranks["DCR"][0] == "bad"
