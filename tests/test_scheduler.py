"""Tests for the discrete-event grid simulator (events, cluster, brokers, simulator)."""

import numpy as np
import pytest

from repro.panda.sites import SiteCatalog
from repro.scheduler.broker import DataLocalityBroker, LeastLoadedBroker, RandomBroker, make_broker
from repro.scheduler.cluster import GridCluster
from repro.scheduler.events import Event, EventQueue, EventType
from repro.scheduler.jobs import SimulatedJob, jobs_from_table
from repro.scheduler.simulator import GridSimulator, compare_workloads


@pytest.fixture()
def catalog():
    return SiteCatalog.default(8, seed=0)


@pytest.fixture()
def cluster(catalog):
    return GridCluster(catalog, capacity_scale=0.01, min_capacity=4)


def make_jobs(n=50, spacing=0.01, workload=50.0, cores=1):
    return [
        SimulatedJob(job_id=i, arrival_time=i * spacing, cores=cores, workload=workload, project=f"p{i % 3}")
        for i in range(n)
    ]


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(Event(2.0, EventType.JOB_FINISH))
        q.push(Event(1.0, EventType.JOB_ARRIVAL))
        assert q.pop().time == 1.0
        assert q.pop().time == 2.0

    def test_stable_for_equal_times(self):
        q = EventQueue()
        q.push(Event(1.0, EventType.JOB_ARRIVAL, "first"))
        q.push(Event(1.0, EventType.JOB_ARRIVAL, "second"))
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(Event(0.0, EventType.JOB_ARRIVAL))
        assert len(q) == 1 and q

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(Event(3.5, EventType.JOB_ARRIVAL))
        assert q.peek_time() == 3.5


class TestJobs:
    def test_runtime_scaling(self):
        job = SimulatedJob(0, 0.0, cores=4, workload=100.0)
        assert job.runtime_at(25.0) == pytest.approx(1.0)
        assert job.runtime_at(50.0) == pytest.approx(0.5)

    def test_runtime_invalid_power(self):
        with pytest.raises(ValueError):
            SimulatedJob(0, 0.0, 1, 1.0).runtime_at(0.0)

    def test_jobs_from_table(self, panda_table):
        jobs = jobs_from_table(panda_table.head(100))
        assert len(jobs) == 100
        times = [j.arrival_time for j in jobs]
        assert times == sorted(times)
        assert all(j.cores == 1 for j in jobs)
        assert all(j.workload >= 0 for j in jobs)

    def test_jobs_from_table_custom_cores(self, panda_table):
        jobs = jobs_from_table(panda_table.head(10), cores=np.full(10, 8))
        assert all(j.cores == 8 for j in jobs)


class TestCluster:
    def test_capacity_positive(self, cluster):
        assert cluster.total_capacity() > 0
        assert all(state.capacity >= 4 for state in cluster.sites.values())

    def test_allocate_release_cycle(self, cluster):
        name = cluster.names[0]
        state = cluster[name]
        state.allocate(2, 1.0)
        assert state.busy_cores == 2
        state.release(2, 2.0)
        assert state.busy_cores == 0
        assert state.core_hours_used == pytest.approx(2.0)

    def test_over_allocation_rejected(self, cluster):
        state = cluster[cluster.names[0]]
        with pytest.raises(RuntimeError):
            state.allocate(state.capacity + 1, 0.0)

    def test_release_more_than_busy_rejected(self, cluster):
        state = cluster[cluster.names[0]]
        with pytest.raises(RuntimeError):
            state.release(1, 0.0)

    def test_time_cannot_move_backwards(self, cluster):
        state = cluster[cluster.names[0]]
        state.advance_to(5.0)
        with pytest.raises(ValueError):
            state.advance_to(1.0)

    def test_utilization_bounded(self, cluster):
        state = cluster[cluster.names[0]]
        state.allocate(state.capacity, 0.0)
        state.advance_to(10.0)
        assert state.utilization(10.0) == pytest.approx(1.0)

    def test_invalid_scale(self, catalog):
        with pytest.raises(ValueError):
            GridCluster(catalog, capacity_scale=0.0)


class TestBrokers:
    def test_least_loaded_prefers_free_site(self, cluster):
        job = SimulatedJob(0, 0.0, cores=1, workload=10.0)
        broker = LeastLoadedBroker()
        chosen = broker.select_site(job, cluster)
        assert chosen is not None
        free = {name: s.free_cores for name, s in cluster.sites.items()}
        assert free[chosen] == max(free.values())

    def test_random_broker_only_eligible_sites(self, cluster):
        # Fill every site except one; the random broker must pick the free one.
        names = cluster.names
        for name in names[1:]:
            cluster[name].allocate(cluster[name].capacity, 0.0)
        job = SimulatedJob(0, 0.0, cores=1, workload=1.0)
        broker = RandomBroker(seed=0)
        for _ in range(10):
            assert broker.select_site(job, cluster) == names[0]

    def test_broker_returns_none_when_full(self, cluster):
        for name in cluster.names:
            cluster[name].allocate(cluster[name].capacity, 0.0)
        job = SimulatedJob(0, 0.0, cores=1, workload=1.0)
        assert LeastLoadedBroker().select_site(job, cluster) is None
        assert RandomBroker(seed=0).select_site(job, cluster) is None

    def test_data_locality_prefers_hosts(self, cluster):
        broker = DataLocalityBroker(cluster, replicas_per_project=2, seed=0)
        job = SimulatedJob(0, 0.0, cores=1, workload=1.0, project="mc23_13p6TeV")
        hosts = set(broker._hosts_of("mc23_13p6TeV"))
        assert broker.select_site(job, cluster) in hosts

    def test_data_locality_fallback(self, cluster):
        broker = DataLocalityBroker(cluster, replicas_per_project=1, seed=0)
        job = SimulatedJob(0, 0.0, cores=1, workload=1.0, project="projX")
        host = broker._hosts_of("projX")[0]
        cluster[host].allocate(cluster[host].capacity, 0.0)
        chosen = broker.select_site(job, cluster)
        assert chosen is not None and chosen != host

    def test_make_broker_factory(self, cluster):
        assert isinstance(make_broker("random", cluster), RandomBroker)
        assert isinstance(make_broker("least_loaded", cluster), LeastLoadedBroker)
        assert isinstance(make_broker("data_locality", cluster), DataLocalityBroker)
        with pytest.raises(ValueError):
            make_broker("fifo", cluster)


class TestSimulator:
    def test_all_jobs_complete(self, cluster):
        result = GridSimulator(cluster, LeastLoadedBroker()).run(make_jobs(100))
        assert result.n_completed == 100
        assert result.makespan_days > 0

    def test_no_contention_means_no_wait(self, cluster):
        # A single tiny job per hour on an idle grid should never wait.
        jobs = make_jobs(10, spacing=1.0, workload=1.0)
        result = GridSimulator(cluster, LeastLoadedBroker()).run(jobs)
        assert result.mean_wait_hours == pytest.approx(0.0, abs=1e-9)

    def test_contention_creates_waits(self, catalog):
        tiny_cluster = GridCluster(catalog, capacity_scale=1e-9, min_capacity=1)
        jobs = make_jobs(60, spacing=0.0, workload=500.0)
        result = GridSimulator(tiny_cluster, LeastLoadedBroker()).run(jobs)
        assert result.mean_wait_hours > 0.0
        assert result.p95_wait_hours >= result.mean_wait_hours

    def test_utilization_increases_with_load(self, catalog):
        light = GridSimulator(GridCluster(catalog, capacity_scale=0.01), LeastLoadedBroker()).run(
            make_jobs(20, workload=10.0)
        )
        heavy = GridSimulator(GridCluster(catalog, capacity_scale=0.01), LeastLoadedBroker()).run(
            make_jobs(400, spacing=0.001, workload=200.0)
        )
        assert heavy.mean_utilization > light.mean_utilization

    def test_least_loaded_not_worse_than_random(self, catalog):
        jobs = make_jobs(300, spacing=0.001, workload=300.0, cores=2)
        random_result = GridSimulator(
            GridCluster(catalog, capacity_scale=0.002, min_capacity=2), RandomBroker(seed=0)
        ).run(jobs)
        ll_result = GridSimulator(
            GridCluster(catalog, capacity_scale=0.002, min_capacity=2), LeastLoadedBroker()
        ).run(jobs)
        assert ll_result.mean_wait_hours <= random_result.mean_wait_hours + 1e-6

    def test_result_row_format(self, cluster):
        result = GridSimulator(cluster, LeastLoadedBroker()).run(make_jobs(10))
        row = result.as_row()
        assert row["completed"] == 10
        assert "mean_utilization" in row

    def test_deterministic_with_deterministic_broker(self, catalog):
        jobs = make_jobs(50)
        a = GridSimulator(GridCluster(catalog, capacity_scale=0.01), LeastLoadedBroker()).run(jobs)
        b = GridSimulator(GridCluster(catalog, capacity_scale=0.01), LeastLoadedBroker()).run(jobs)
        assert a.mean_wait_hours == b.mean_wait_hours
        assert a.makespan_days == b.makespan_days

    def test_empty_job_list(self, cluster):
        result = GridSimulator(cluster, LeastLoadedBroker()).run([])
        assert result.n_jobs == 0 and result.n_completed == 0

    def test_compare_workloads_runs_fresh_clusters(self, catalog):
        workloads = {"a": make_jobs(30), "b": make_jobs(30, workload=500.0)}
        results = compare_workloads(
            lambda: GridCluster(catalog, capacity_scale=0.01), "least_loaded", workloads
        )
        assert set(results) == {"a", "b"}
        assert all(r.n_completed == 30 for r in results.values())

    def test_simulation_with_real_trace(self, panda_table, panda_generator):
        jobs = jobs_from_table(panda_table.head(400))
        cluster = GridCluster(panda_generator.sites, capacity_scale=0.005)
        result = GridSimulator(cluster, LeastLoadedBroker()).run(jobs)
        assert result.n_completed == 400
        assert 0.0 <= result.mean_utilization <= 1.0


class TestBrokerDeterminism:
    """Free-core ties must break on the stable catalog order, not dict order."""

    def _tied_cluster(self):
        # Identical HS23 and capacity across sites: every site ties.
        from repro.panda.sites import ComputingSite, SiteCatalog

        sites = [
            ComputingSite(name=f"SITE_{i}", hs23_per_core=10.0, n_cores=1000, reliability=0.9, region="EU")
            for i in range(6)
        ]
        catalog = SiteCatalog(sites, np.ones(6) / 6.0)
        return GridCluster(catalog, capacity_scale=0.01, min_capacity=4)

    def test_least_loaded_tie_breaks_on_catalog_order(self):
        cluster = self._tied_cluster()
        job = SimulatedJob(0, 0.0, cores=1, workload=10.0)
        assert LeastLoadedBroker().select_site(job, cluster) == "SITE_0"

    def test_tie_break_survives_dict_reordering(self):
        cluster = self._tied_cluster()
        # Simulate a dict-ordering change: rebuild the sites mapping reversed.
        cluster.sites = dict(reversed(list(cluster.sites.items())))
        job = SimulatedJob(0, 0.0, cores=1, workload=10.0)
        assert LeastLoadedBroker().select_site(job, cluster) == "SITE_0"

    def test_tie_break_tracks_allocations(self):
        cluster = self._tied_cluster()
        job = SimulatedJob(0, 0.0, cores=1, workload=10.0)
        first = LeastLoadedBroker().select_site(job, cluster)
        cluster[first].allocate(1, 0.0)
        # SITE_0 now has fewer free cores; the next tie group starts at SITE_1.
        assert LeastLoadedBroker().select_site(job, cluster) == "SITE_1"
        cluster[first].release(1, 0.0)
        assert LeastLoadedBroker().select_site(job, cluster) == "SITE_0"

    def test_data_locality_hosts_stable_across_instances(self, cluster):
        a = DataLocalityBroker(cluster, seed=1)
        b = DataLocalityBroker(cluster, seed=2)
        # Replica placement derives from a stable content hash of the project
        # name (not Python's salted hash), so every broker instance agrees.
        for project in ("mc23_13p6TeV", "data22_13p6TeV", "user.alice"):
            assert a._hosts_of(project) == b._hosts_of(project)


class TestFreeCoreIndex:
    def test_max_free_cores_tracks_alloc_release(self, cluster):
        expected = max(s.free_cores for s in cluster.sites.values())
        assert cluster.max_free_cores() == expected
        name = max(cluster.sites, key=lambda n: cluster[n].free_cores)
        cluster[name].allocate(cluster[name].free_cores, 0.0)
        expected = max(s.free_cores for s in cluster.sites.values())
        assert cluster.max_free_cores() == expected
        cluster[name].release(cluster[name].busy_cores, 0.0)
        assert cluster.max_free_cores() == max(s.free_cores for s in cluster.sites.values())

    def test_best_site_matches_linear_scan_under_churn(self, cluster):
        rng = np.random.default_rng(0)
        names = cluster.names
        busy = []
        for step in range(300):
            if busy and rng.random() < 0.45:
                name, cores = busy.pop(rng.integers(0, len(busy)))
                cluster[name].release(cores, 0.0)
            else:
                name = names[rng.integers(0, len(names))]
                free = cluster[name].free_cores
                if free > 0:
                    cores = int(rng.integers(1, free + 1))
                    cluster[name].allocate(cores, 0.0)
                    busy.append((name, cores))
            best = cluster.best_site()
            expected = max(
                cluster.sites.values(),
                key=lambda s: (s.free_cores, s.site.hs23_per_core),
            )
            assert best.free_cores == expected.free_cores
            assert cluster.max_free_cores() == expected.free_cores
