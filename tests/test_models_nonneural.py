"""Tests for the non-neural surrogates (SMOTE, Gaussian copula) and the common
Surrogate interface / registry."""

import numpy as np
import pytest

from repro.metrics.distribution import mean_jsd, mean_wasserstein
from repro.metrics.privacy import distance_to_closest_record
from repro.models import available_surrogates, create_surrogate
from repro.models.gaussian_copula import GaussianCopulaSurrogate
from repro.models.smote import SMOTESurrogate
from repro.tabular.table import Table


class TestRegistry:
    def test_available_names(self):
        names = available_surrogates()
        for expected in ("tvae", "ctabgan+", "smote", "tabddpm"):
            assert expected in names

    def test_create_by_name_case_insensitive(self):
        assert isinstance(create_surrogate("SMOTE"), SMOTESurrogate)
        assert isinstance(create_surrogate("Copula"), GaussianCopulaSurrogate)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown surrogate"):
            create_surrogate("gpt")

    def test_kwargs_forwarded(self):
        model = create_surrogate("smote", k_neighbors=3)
        assert model.k_neighbors == 3


class TestSurrogateBase:
    def test_sample_before_fit_raises(self, train_table):
        for name in ("smote", "copula"):
            with pytest.raises(RuntimeError):
                create_surrogate(name).sample(10)

    def test_fit_empty_table_raises(self, train_table):
        empty = Table.empty(train_table.schema)
        with pytest.raises(ValueError):
            create_surrogate("smote").fit(empty)

    def test_is_fitted_flag(self, train_table):
        model = create_surrogate("smote")
        assert not model.is_fitted
        model.fit(train_table)
        assert model.is_fitted
        assert model.n_training_rows_ == len(train_table)

    def test_save_load_roundtrip(self, train_table, tmp_path):
        model = SMOTESurrogate(k_neighbors=3).fit(train_table)
        path = tmp_path / "smote.pkl"
        model.save(path)
        loaded = SMOTESurrogate.load(path)
        a = loaded.sample(50, seed=1)
        b = model.sample(50, seed=1)
        assert a == b

    def test_load_wrong_type_rejected(self, train_table, tmp_path):
        model = SMOTESurrogate().fit(train_table)
        path = tmp_path / "model.pkl"
        model.save(path)
        with pytest.raises(TypeError):
            GaussianCopulaSurrogate.load(path)


class TestSMOTE:
    @pytest.fixture(scope="class")
    def fitted(self, train_table):
        return SMOTESurrogate(k_neighbors=5).fit(train_table)

    def test_sample_schema_and_size(self, fitted, train_table):
        synth = fitted.sample(400, seed=0)
        assert synth.schema == train_table.schema
        assert len(synth) == 400

    def test_sample_deterministic_by_seed(self, fitted):
        assert fitted.sample(100, seed=5) == fitted.sample(100, seed=5)

    def test_categories_subset_of_training(self, fitted, train_table):
        synth = fitted.sample(500, seed=1)
        for column in train_table.schema.categorical:
            assert set(np.unique(synth[column])) <= set(np.unique(train_table[column]))

    def test_numericals_within_training_range(self, fitted, train_table):
        synth = fitted.sample(500, seed=2)
        for column in train_table.schema.numerical:
            assert synth[column].min() >= train_table[column].min() - 1e-6
            assert synth[column].max() <= train_table[column].max() + 1e-6

    def test_high_distribution_fidelity(self, fitted, train_table):
        synth = fitted.sample(len(train_table), seed=3)
        wd, _ = mean_wasserstein(train_table, synth)
        jsd, _ = mean_jsd(train_table, synth)
        assert wd < 0.05
        assert jsd < 0.1

    def test_low_dcr_signature(self, fitted, train_table):
        # SMOTE's defining weakness per the paper: samples hug the training data.
        synth = fitted.sample(500, seed=4)
        assert distance_to_closest_record(train_table, synth) < 0.05

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SMOTESurrogate(k_neighbors=0)

    def test_works_on_tiny_dataset(self, train_table):
        tiny = train_table.head(4)
        model = SMOTESurrogate(k_neighbors=5).fit(tiny)
        assert len(model.sample(10, seed=0)) == 10


class TestGaussianCopula:
    @pytest.fixture(scope="class")
    def fitted(self, train_table):
        return GaussianCopulaSurrogate().fit(train_table)

    def test_sample_schema(self, fitted, train_table):
        synth = fitted.sample(300, seed=0)
        assert synth.schema == train_table.schema
        assert len(synth) == 300

    def test_marginals_match(self, fitted, train_table):
        synth = fitted.sample(len(train_table), seed=1)
        wd, _ = mean_wasserstein(train_table, synth)
        jsd, _ = mean_jsd(train_table, synth)
        assert wd < 0.05
        assert jsd < 0.12

    def test_preserves_strong_numeric_correlation(self, fitted, train_table):
        synth = fitted.sample(len(train_table), seed=2)
        real_corr = np.corrcoef(
            np.log(np.asarray(train_table["workload"])),
            np.log(np.asarray(train_table["inputfilebytes"])),
        )[0, 1]
        synth_corr = np.corrcoef(
            np.log(np.maximum(np.asarray(synth["workload"]), 1e-9)),
            np.log(np.maximum(np.asarray(synth["inputfilebytes"]), 1e-9)),
        )[0, 1]
        assert abs(real_corr - synth_corr) < 0.25

    def test_better_privacy_than_smote(self, fitted, train_table):
        copula_synth = fitted.sample(400, seed=3)
        smote_synth = SMOTESurrogate().fit(train_table).sample(400, seed=3)
        copula_dcr = distance_to_closest_record(train_table, copula_synth)
        smote_dcr = distance_to_closest_record(train_table, smote_synth)
        assert copula_dcr > smote_dcr

    def test_deterministic_sampling(self, fitted):
        assert fitted.sample(50, seed=9) == fitted.sample(50, seed=9)
