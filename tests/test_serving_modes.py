"""The relaxed serving mode: distribution-identical, stream-free, faster.

``sampling_mode="fast"`` waives the exact mode's bit/stream contract in
exchange for float32 pre-packed network forwards and fused request-sized
batches.  These tests pin what the relaxed mode *does* promise:

* the exact mode stays the default and is untouched by the dispatch,
* fast-mode outputs match exact-mode outputs in distribution — KS-tested per
  numerical column, chi-squared-tested per categorical column,
* ``sample_batches`` streams a request in bounded chunks, deterministically,
* the packed serving forwards agree with the float64 graph forwards to
  float32 accuracy and are rebuilt (not stale-served) after a refit.
"""

import numpy as np
import pytest
from scipy import stats

from repro.models.base import Surrogate
from repro.models.ctabgan import CTABGANConfig, CTABGANPlusSurrogate
from repro.models.gaussian_copula import GaussianCopulaSurrogate
from repro.models.smote import SMOTESurrogate
from repro.models.tabddpm.denoiser import MLPDenoiser, PackedDenoiser
from repro.models.tabddpm.model import TabDDPMConfig, TabDDPMSurrogate
from repro.models.tvae import TVAEConfig, TVAESurrogate
from repro.nn import MLP, PackedForward, Tensor, no_grad
from repro.nn.layers import LayerNorm, Sequential
from repro.tabular.schema import TableSchema
from repro.tabular.table import Table

P_FLOOR = 1e-3


def _mixed_table(n=1000, seed=23):
    rng = np.random.default_rng(seed)
    data = {
        "x0": np.round(rng.lognormal(1.0, 0.7, n), 2),
        "x1": rng.normal(size=n) * 4.0,
        "cat_a": rng.choice(["a", "b"], n, p=[0.7, 0.3]),
        "cat_b": rng.choice(["u", "v", "w"], n),
        "cat_wide": rng.choice([f"s{i}" for i in range(9)], n),
    }
    return Table(
        data,
        TableSchema.from_columns(
            numerical=["x0", "x1"], categorical=["cat_a", "cat_b", "cat_wide"]
        ),
    )


@pytest.fixture(scope="module")
def mixed_table():
    return _mixed_table()


@pytest.fixture(scope="module")
def deep_models(mixed_table):
    return {
        "tvae": TVAESurrogate(
            TVAEConfig(latent_dim=8, hidden_dims=(32,), epochs=3, batch_size=128), seed=3
        ).fit(mixed_table),
        "ctabgan": CTABGANPlusSurrogate(
            CTABGANConfig(
                noise_dim=8, generator_dims=(24,), discriminator_dims=(24,),
                gmm_components=3, epochs=2, batch_size=128,
            ),
            seed=3,
        ).fit(mixed_table),
        "tabddpm": TabDDPMSurrogate(
            TabDDPMConfig(
                n_timesteps=16, hidden_dims=(32,), time_embedding_dim=16,
                epochs=2, batch_size=128,
            ),
            seed=3,
        ).fit(mixed_table),
    }


class TestDispatch:
    def test_unknown_mode_rejected(self, deep_models):
        with pytest.raises(ValueError, match="unknown sampling mode"):
            deep_models["tvae"].sample(5, seed=0, sampling_mode="turbo")

    def test_exact_is_the_default(self, deep_models):
        for model in deep_models.values():
            default = model.sample(150, seed=9)
            explicit = model.sample(150, seed=9, sampling_mode="exact")
            assert default == explicit

    def test_fast_support_flags(self, deep_models, mixed_table):
        for model in deep_models.values():
            assert model.supports_fast_sampling
        assert not SMOTESurrogate().supports_fast_sampling
        assert not GaussianCopulaSurrogate().supports_fast_sampling
        assert not Surrogate().supports_fast_sampling

    def test_fallback_models_fast_equals_exact(self, mixed_table):
        # No dedicated relaxed path → "fast" is the exact path, bit for bit.
        for model in (SMOTESurrogate(k_neighbors=3), GaussianCopulaSurrogate()):
            model.fit(mixed_table)
            assert model.sample(200, seed=5, sampling_mode="fast") == model.sample(
                200, seed=5, sampling_mode="exact"
            )


class TestFastModeDistribution:
    """KS / chi-squared: fast-mode samples come from the exact-mode law."""

    N = 2500

    @pytest.mark.parametrize("name", ["tvae", "ctabgan", "tabddpm"])
    def test_numerical_columns_ks(self, deep_models, name, mixed_table):
        model = deep_models[name]
        exact = model.sample(self.N, seed=17, sampling_mode="exact")
        fast = model.sample(self.N, seed=18, sampling_mode="fast")
        for column in mixed_table.schema.numerical:
            result = stats.ks_2samp(exact[column], fast[column])
            assert result.pvalue > P_FLOOR, (name, column, result)

    @pytest.mark.parametrize("name", ["tvae", "ctabgan", "tabddpm"])
    def test_categorical_columns_chi_squared(self, deep_models, name, mixed_table):
        model = deep_models[name]
        exact = model.sample(self.N, seed=17, sampling_mode="exact")
        fast = model.sample(self.N, seed=18, sampling_mode="fast")
        for column in mixed_table.schema.categorical:
            support = sorted(set(exact[column]) | set(fast[column]))
            table = np.array(
                [
                    [int((np.asarray(exact[column]) == c).sum()) for c in support],
                    [int((np.asarray(fast[column]) == c).sum()) for c in support],
                ]
            )
            if table.shape[1] < 2:
                continue  # a single shared category is trivially identical
            result = stats.chi2_contingency(table)
            assert result.pvalue > P_FLOOR, (name, column, table)


class TestSampleBatches:
    def test_chunks_cover_the_request(self, deep_models):
        model = deep_models["tvae"]
        chunks = list(model.sample_batches(1000, 300, seed=4))
        assert [len(c) for c in chunks] == [300, 300, 300, 100]
        for chunk in chunks:
            assert chunk.schema == model.schema_

    def test_deterministic_given_seed(self, deep_models):
        for name, model in deep_models.items():
            for mode in ("exact", "fast"):
                a = list(model.sample_batches(500, 200, seed=7, sampling_mode=mode))
                b = list(model.sample_batches(500, 200, seed=7, sampling_mode=mode))
                assert all(x == y for x, y in zip(a, b)), (name, mode)

    def test_zero_rows_yields_nothing(self, deep_models):
        assert list(deep_models["ctabgan"].sample_batches(0, 128, seed=1)) == []

    def test_oversized_chunk_is_one_shot(self, deep_models):
        chunks = list(deep_models["tabddpm"].sample_batches(120, 4096, seed=2))
        assert [len(c) for c in chunks] == [120]

    def test_invalid_requests_rejected(self, deep_models):
        model = deep_models["tvae"]
        with pytest.raises(ValueError, match="chunk_size"):
            model.sample_batches(10, 0, seed=1)
        with pytest.raises(ValueError, match="negative"):
            model.sample_batches(-5, 16, seed=1)
        with pytest.raises(ValueError, match="unknown sampling mode"):
            model.sample_batches(10, 5, seed=1, sampling_mode="turbo")
        with pytest.raises(RuntimeError, match="not fitted"):
            TVAESurrogate().sample_batches(10, 5, seed=1)

    def test_distribution_matches_monolithic(self, deep_models, mixed_table):
        model = deep_models["tvae"]
        streamed = np.concatenate(
            [c["x0"] for c in model.sample_batches(2400, 500, seed=21, sampling_mode="fast")]
        )
        monolithic = model.sample(2400, seed=22, sampling_mode="fast")["x0"]
        assert stats.ks_2samp(streamed, monolithic).pvalue > P_FLOOR


class TestPackedForward:
    def _mlp(self, seed=0, **kwargs):
        return MLP(12, [24, 16], 8, seed=seed, **kwargs)

    def test_matches_graph_forward_to_float32(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(64, 12))
        for kwargs in ({}, {"fused": False}, {"activation": "tanh"}, {"dropout": 0.3}):
            mlp = self._mlp(**kwargs)
            mlp.eval()
            with no_grad():
                reference = mlp(Tensor(x)).numpy()
            packed = PackedForward(mlp, np.float32)
            np.testing.assert_allclose(packed(x), reference, rtol=2e-4, atol=2e-5)

    def test_buffers_reused_per_batch_size(self):
        packed = PackedForward(self._mlp(), np.float32)
        x = np.zeros((10, 12))
        assert packed(x) is packed(x)

    def test_layer_norm_is_rejected(self):
        mlp = self._mlp(layer_norm=True, fused=False)
        with pytest.raises(TypeError, match="cannot pack"):
            PackedForward(mlp, np.float32)

    def test_non_sequential_rejected(self):
        with pytest.raises(TypeError, match="expected an MLP"):
            PackedForward(LayerNorm(4), np.float32)
        with pytest.raises(ValueError, match="nothing to pack"):
            PackedForward(Sequential(), np.float32)

    def test_packed_denoiser_matches_graph(self):
        denoiser = MLPDenoiser(9, hidden_dims=(16,), time_embedding_dim=8, seed=2)
        denoiser.eval()
        rng = np.random.default_rng(3)
        state = rng.normal(size=(40, 9))
        t_vector = np.full(40, 5, dtype=np.int64)
        with no_grad():
            reference = denoiser(Tensor(state), t_vector).numpy()
        packed = PackedDenoiser(denoiser, np.float32)
        np.testing.assert_allclose(packed(state, 5), reference, rtol=2e-4, atol=2e-5)
        view = packed.serving_state(40)
        view[:] = state
        np.testing.assert_allclose(packed(view, 5), reference, rtol=2e-4, atol=2e-5)


class TestExactChunkedDecoder:
    def test_tvae_exact_forward_chunked_bit_identical_at_100k(self, mixed_table):
        # The exact mode decodes large requests through bounded row chunks;
        # the satellite contract is bit-identity with the monolithic float64
        # graph pass at 100k rows (row-chunked affine/activation forwards are
        # independent per row).
        model = TVAESurrogate(TVAEConfig.fast(), seed=6).fit(mixed_table)
        assert TVAESurrogate._EXACT_FORWARD_CHUNK < 100_000
        chunked = model.sample(100_000, seed=31)
        original = TVAESurrogate._EXACT_FORWARD_CHUNK
        TVAESurrogate._EXACT_FORWARD_CHUNK = 1 << 60  # monolithic pass
        try:
            monolithic = model.sample(100_000, seed=31)
        finally:
            TVAESurrogate._EXACT_FORWARD_CHUNK = original
        assert chunked == monolithic


class TestRelaxedCodeSampler:
    """``sample_codes_fast``: same per-block law, wide blocks lane-batched."""

    def _sampler_and_logits(self, widths, n, seed=0, dtype=np.float64):
        from repro.models.ctabgan import _SoftmaxBlockSampler

        spans, start = [], 0
        for w in widths:
            spans.append((start, start + w))
            start += w
        rng = np.random.default_rng(seed)
        raw = (rng.normal(size=(n, start)) * 2.0).astype(dtype)
        return _SoftmaxBlockSampler(spans), raw

    def test_same_distribution_as_exact_incl_wide_and_huge_blocks(self):
        # Width 9/12 exercises the relaxed wide bucket, width 40 the
        # per-block fallback beyond _FAST_LANE_WIDTH_LIMIT.
        widths = [2, 3, 3, 9, 12, 40]
        sampler, raw = self._sampler_and_logits(widths, n=6000)
        exact = sampler.sample_codes(raw, np.random.default_rng(1))
        fast = sampler.sample_codes_fast(raw, np.random.default_rng(2))
        assert fast.shape == exact.shape
        for b, w in enumerate(widths):
            observed = np.array(
                [
                    np.bincount(exact[:, b], minlength=w),
                    np.bincount(fast[:, b], minlength=w),
                ]
            )
            keep = observed.sum(axis=0) > 0
            result = stats.chi2_contingency(observed[:, keep])
            assert result.pvalue > P_FLOOR, (b, w, result.pvalue)

    def test_width_one_blocks_are_constant_zero(self):
        sampler, raw = self._sampler_and_logits([1, 4, 1], n=200)
        codes = sampler.sample_codes_fast(raw, np.random.default_rng(3))
        assert (codes[:, 0] == 0).all() and (codes[:, 2] == 0).all()
        assert codes[:, 1].max() <= 3

    def test_float32_logits_supported(self):
        sampler, raw = self._sampler_and_logits([3, 10], n=500, dtype=np.float32)
        codes = sampler.sample_codes_fast(raw, np.random.default_rng(4))
        assert codes[:, 0].max() <= 2 and codes[:, 1].max() <= 9


class TestWarmServingCaches:
    def test_warm_builds_the_lazy_caches(self, deep_models):
        expected_cache = {
            "tvae": "_packed_decoder",
            "ctabgan": "_packed_generator",
            "tabddpm": "_packed_serving",
        }
        for name, model in deep_models.items():
            warmed = model.warm_serving_caches(64)
            assert warmed >= 1, name
            assert getattr(model, expected_cache[name], None) is not None

    def test_warm_rejects_unfitted_and_bad_sizes(self, deep_models):
        with pytest.raises(RuntimeError, match="not fitted"):
            TVAESurrogate().warm_serving_caches()
        with pytest.raises(ValueError, match="chunk_rows"):
            deep_models["tvae"].warm_serving_caches(0)

    def test_packed_forward_warm_preallocates_buffers(self):
        packed = PackedForward(MLP(12, [24, 16], 8, seed=0), np.float32)
        packed.warm(32)
        buffers = packed._buffers[32]
        assert all(b is not None and b.shape[0] == 32 for b in buffers)
        x = np.zeros((32, 12))
        out = packed(x)
        assert out is buffers[-1]

    def test_snapshot_round_trip(self, deep_models):
        model = deep_models["tvae"]
        clone = type(model).from_snapshot(model.serving_snapshot())
        assert clone.sample(40, seed=8) == model.sample(40, seed=8)
        with pytest.raises(TypeError, match="snapshot"):
            TabDDPMSurrogate.from_snapshot(model.serving_snapshot())


class TestServingCachesNotPickled:
    def test_save_drops_packed_caches(self, deep_models, tmp_path):
        transient = ("_packed_serving", "_packed_generator", "_packed_decoder",
                     "_serving_block_sampler", "_block_sampler")
        for name, model in deep_models.items():
            model.sample(30, seed=1, sampling_mode="fast")  # builds the caches
            cold_path = tmp_path / f"{name}-cold.pkl"
            model.save(cold_path)
            loaded = type(model).load(cold_path)
            for attr in transient:
                assert getattr(loaded, attr, None) is None, (name, attr)
            # The caches rebuild lazily: the loaded model still serves, and a
            # model that has served is no bigger on disk than a fresh one.
            assert len(loaded.sample(15, seed=2, sampling_mode="fast")) == 15
            warm_path = tmp_path / f"{name}-warm.pkl"
            loaded.save(warm_path)
            assert warm_path.stat().st_size <= cold_path.stat().st_size * 1.01


class TestRefitInvalidation:
    def test_packed_caches_rebuilt_after_refit(self, mixed_table):
        other = Table(
            {
                "y": np.random.default_rng(0).normal(size=400),
                "cat": np.random.default_rng(1).choice(["p", "q", "r", "s"], 400),
            },
            TableSchema.from_columns(numerical=["y"], categorical=["cat"]),
        )
        for factory in (
            lambda: TVAESurrogate(TVAEConfig.fast(), seed=1),
            lambda: CTABGANPlusSurrogate(CTABGANConfig.fast(), seed=1),
            lambda: TabDDPMSurrogate(TabDDPMConfig.fast(), seed=1),
        ):
            model = factory().fit(mixed_table)
            model.sample(50, seed=1, sampling_mode="fast")  # builds the caches
            model.fit(other)
            refit = model.sample(200, seed=2, sampling_mode="fast")
            fresh = factory().fit(other).sample(200, seed=2, sampling_mode="fast")
            assert refit.schema == other.schema
            assert refit == fresh
