"""Seed-vs-optimized equivalence for the fast sampling & encoding stack.

The batched sampling paths — the width-grouped reverse diffusion of TabDDPM
(``MultinomialBlockDiffusion.prior_sample_into`` / ``p_sample_into``), the
stacked mode-specific encoder and the direct-from-logits CTABGAN block
sampler — must be *bit- and stream-identical* to the per-block seed chains in
``benchmarks/seed_baselines.py``.  The relaxed (non-stream-exact) condition
sampling mode is covered separately: its draws follow the same distribution,
asserted with chi-squared tests, even though the streams differ.
"""

import os
import sys

import numpy as np
import pytest
from scipy import stats

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "benchmarks"))

from seed_baselines import (  # noqa: E402
    SeedCTABGANSurrogate,
    SeedConditionSampler,
    SeedModeSpecificEncoder,
    SeedTabDDPMSurrogate,
)

from repro.models.ctabgan import (  # noqa: E402
    CTABGANConfig,
    CTABGANPlusSurrogate,
    _ConditionSampler,
    _ModeSpecificEncoder,
)
from repro.models.tabddpm.model import TabDDPMConfig, TabDDPMSurrogate  # noqa: E402
from repro.models.tabddpm.multinomial import (  # noqa: E402
    MultinomialBlockDiffusion,
    MultinomialDiffusion,
)
from repro.models.tabddpm.schedule import DiffusionSchedule  # noqa: E402
from repro.tabular.schema import TableSchema  # noqa: E402
from repro.tabular.table import Table  # noqa: E402


def _mixed_table(n=900, seed=23):
    """Narrow one-hot blocks, a wide (9-category) block and interleaved
    numerical columns — exercising both the lane-grouped and the per-block
    fallback paths of the batched samplers."""
    rng = np.random.default_rng(seed)
    data = {
        "cat_wide": rng.choice([f"s{i}" for i in range(9)], n),
        "x0": np.round(rng.lognormal(1.0, 0.7, n), 2),
        "cat_a": rng.choice(["a", "b"], n),
        "x1": rng.normal(size=n) * 4.0,
        "cat_b": rng.choice(["u", "v", "w"], n),
        "cat_c": rng.choice([f"t{i}" for i in range(7)], n),
    }
    return Table(
        data,
        TableSchema.from_columns(
            numerical=["x0", "x1"], categorical=["cat_wide", "cat_a", "cat_b", "cat_c"]
        ),
    )


@pytest.fixture(scope="module")
def mixed_table():
    return _mixed_table()


class TestBlockDiffusionReverseChain:
    """Unit-level: the batched reverse step against the per-block chain."""

    def _setup(self, seed=7):
        # Widths 2..4 (lane-grouped) plus 9 and 11 (per-block fallback).
        widths = [3, 2, 9, 4, 3, 11, 2]
        spans = []
        cursor = 0
        for w in widths:
            spans.append((cursor, cursor + w))
            cursor += w
        schedule = DiffusionSchedule.cosine(12)
        block = MultinomialBlockDiffusion(spans, schedule)
        per_block = [MultinomialDiffusion(w, schedule) for w in widths]
        return spans, schedule, block, per_block, cursor

    def _seed_reverse_step(self, state, prediction, t, spans, per_block, rng):
        out = state.copy()
        for (start, stop), diffusion in zip(spans, per_block):
            logits = prediction[:, start:stop]
            logits = logits - logits.max(axis=1, keepdims=True)
            x0_probs = np.exp(logits)
            x0_probs /= np.maximum(x0_probs.sum(axis=1, keepdims=True), 1e-12)
            out[:, start:stop] = diffusion.p_sample_step(state[:, start:stop], t, x0_probs, rng)
        return out

    def test_prior_matches_per_block(self):
        spans, _schedule, block, _per_block, width = self._setup()
        n = 700
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        state_a = np.zeros((n, width))
        chosen = block.prior_sample_into(state_a, rng_a)
        state_b = np.zeros((n, width))
        for start, stop in spans:
            k = stop - start
            uniform = np.full((n, k), 1.0 / k)
            state_b[:, start:stop] = MultinomialDiffusion._sample_onehot(uniform, rng_b)
        np.testing.assert_array_equal(state_a, state_b)
        np.testing.assert_array_equal(chosen, block.chosen_from(state_a))
        assert rng_a.integers(0, 1 << 40) == rng_b.integers(0, 1 << 40)

    @pytest.mark.parametrize("pass_prev", [True, False])
    def test_full_reverse_chain_matches_per_block(self, pass_prev):
        spans, schedule, block, per_block, width = self._setup()
        n = 500
        rng = np.random.default_rng(11)
        predictions = [rng.normal(size=(n, width)) * 3.0 for _ in range(schedule.n_steps)]
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        state_a = np.zeros((n, width))
        chosen = block.prior_sample_into(state_a, rng_a)
        state_b = np.zeros((n, width))
        for start, stop in spans:
            k = stop - start
            uniform = np.full((n, k), 1.0 / k)
            state_b[:, start:stop] = MultinomialDiffusion._sample_onehot(uniform, rng_b)
        np.testing.assert_array_equal(state_a, state_b)
        for t in reversed(range(schedule.n_steps)):
            prediction = predictions[t]
            chosen = block.p_sample_into(
                state_a, prediction, t, rng_a, prev_chosen=chosen if pass_prev else None
            )
            state_b = self._seed_reverse_step(state_b, prediction, t, spans, per_block, rng_b)
            np.testing.assert_array_equal(state_a, state_b)
        assert rng_a.integers(0, 1 << 40) == rng_b.integers(0, 1 << 40)


class TestTabDDPMSamplingEquivalence:
    def test_fixed_seed_samples_bit_identical(self, mixed_table):
        config = TabDDPMConfig(
            n_timesteps=14, hidden_dims=(32,), time_embedding_dim=16, epochs=2, batch_size=128
        )
        live = TabDDPMSurrogate(config, seed=4).fit(mixed_table)
        seed = SeedTabDDPMSurrogate(config, seed=4).fit(mixed_table)
        assert live.sample(1_200, seed=42) == seed.sample(1_200, seed=42)
        # Repeated draws from the optimized path stay deterministic.
        assert live.sample(300, seed=9) == live.sample(300, seed=9)


class TestModeSpecificEncoderEquivalence:
    def test_transform_bit_identical(self, mixed_table):
        live = _ModeSpecificEncoder(4, 0).fit(mixed_table)
        seed = SeedModeSpecificEncoder(4, 0).fit(mixed_table)
        assert live.layout == seed.layout
        rng_a, rng_b = np.random.default_rng(13), np.random.default_rng(13)
        np.testing.assert_array_equal(
            live.transform(mixed_table, rng_a), seed.transform(mixed_table, rng_b)
        )
        assert rng_a.integers(0, 1 << 40) == rng_b.integers(0, 1 << 40)

    def test_inverse_transform_bit_identical(self, mixed_table):
        live = _ModeSpecificEncoder(4, 0).fit(mixed_table)
        seed = SeedModeSpecificEncoder(4, 0).fit(mixed_table)
        rng = np.random.default_rng(3)
        soft = rng.random((400, live.n_features))
        hard = live.transform(mixed_table, np.random.default_rng(1))
        for matrix in (soft, hard):
            table_a = live.inverse_transform(matrix, mixed_table.schema, rng)
            table_b = seed.inverse_transform(matrix, mixed_table.schema, rng)
            assert table_a == table_b


class TestCTABGANSamplingEquivalence:
    def test_fixed_seed_samples_bit_identical(self, mixed_table):
        config = CTABGANConfig(
            noise_dim=8, generator_dims=(24,), discriminator_dims=(24,),
            gmm_components=3, epochs=2, batch_size=128,
        )
        live = CTABGANPlusSurrogate(config, seed=6).fit(mixed_table)
        seed = SeedCTABGANSurrogate(config, seed=6).fit(mixed_table)
        assert live.sample(1_100, seed=42) == seed.sample(1_100, seed=42)
        assert live.sample(250, seed=9) == live.sample(250, seed=9)

    def test_refit_rebuilds_block_sampler(self, mixed_table):
        """A refit on a table with a different block layout must not sample
        through a cached sampler built against the previous layout."""
        config = CTABGANConfig(
            noise_dim=8, generator_dims=(24,), discriminator_dims=(24,),
            gmm_components=3, epochs=1, batch_size=128,
        )
        rng = np.random.default_rng(31)
        n = 500
        narrow = Table(
            {"x0": rng.normal(size=n), "cat": rng.choice(["a", "b", "c"], n)},
            TableSchema.from_columns(numerical=["x0"], categorical=["cat"]),
        )
        wide = Table(
            {"x0": rng.normal(size=n), "cat": rng.choice([f"k{i}" for i in range(7)], n)},
            TableSchema.from_columns(numerical=["x0"], categorical=["cat"]),
        )
        model = CTABGANPlusSurrogate(config, seed=6)
        model.fit(narrow)
        model.sample(100, seed=1)  # caches the sampler for the narrow layout
        model.fit(wide)
        refit_sample = model.sample(400, seed=1)
        fresh_sample = CTABGANPlusSurrogate(config, seed=6).fit(wide).sample(400, seed=1)
        assert refit_sample == fresh_sample


class TestFastConditionMode:
    """The relaxed mode: different stream, same distribution."""

    def _sampler_pair(self, table):
        encoder = _ModeSpecificEncoder(3, 0).fit(table)
        layout = encoder.categorical_layout
        live = _ConditionSampler(table, layout, encoder.categorical_encoders)
        seed = SeedConditionSampler(table, layout, encoder.categorical_encoders)
        return live, seed, layout

    def test_exact_mode_still_matches_seed_stream(self, mixed_table):
        live, seed, _layout = self._sampler_pair(mixed_table)
        rng_a, rng_b = np.random.default_rng(8), np.random.default_rng(8)
        for _ in range(10):
            for a, b in zip(live.sample(64, rng_a, mode="exact"), seed.sample(64, rng_b)):
                np.testing.assert_array_equal(a, b)
        assert rng_a.integers(0, 1 << 40) == rng_b.integers(0, 1 << 40)

    def test_fast_mode_rejects_unknown_mode(self, mixed_table):
        live, _seed, _layout = self._sampler_pair(mixed_table)
        with pytest.raises(ValueError, match="unknown condition sampling mode"):
            live.sample(8, np.random.default_rng(0), mode="turbo")

    def test_fast_mode_rows_match_their_condition(self, mixed_table):
        live, _seed, layout = self._sampler_pair(mixed_table)
        encoder = _ModeSpecificEncoder(3, 0).fit(mixed_table)
        rng = np.random.default_rng(4)
        cond, col_choice, cat_choice, row_choice = live.sample(2_000, rng, mode="fast")
        assert cond.shape == (2_000, live.total_width)
        np.testing.assert_array_equal(cond.sum(axis=1), np.ones(2_000))
        for j, (name, _start, _width) in enumerate(layout):
            mask = col_choice == j
            codes = encoder.categorical_encoders[name].transform_codes(mixed_table[name])
            np.testing.assert_array_equal(codes[row_choice[mask]], cat_choice[mask])

    def test_fast_mode_condition_frequencies_chi_squared(self, mixed_table):
        """Drawn (column, category) frequencies match the log-frequency
        weighting the exact mode samples from, per conditioned column."""
        live, _seed, layout = self._sampler_pair(mixed_table)
        rng = np.random.default_rng(12)
        n_draws = 40_000
        _cond, col_choice, cat_choice, _rows = live.sample(n_draws, rng, mode="fast")
        for j, (_name, _start, width) in enumerate(layout):
            mask = col_choice == j
            observed = np.bincount(cat_choice[mask], minlength=width)
            expected = live._cdfs[j].copy()
            expected[1:] -= expected[:-1]
            expected = expected * mask.sum()
            statistic = float(((observed - expected) ** 2 / np.maximum(expected, 1e-9)).sum())
            p_value = float(stats.chi2.sf(statistic, df=width - 1))
            assert p_value > 1e-3, f"column {j}: chi2={statistic:.1f}, p={p_value:.2e}"

    def test_fast_mode_end_to_end_sampling(self, mixed_table):
        config = CTABGANConfig(
            noise_dim=8, generator_dims=(24,), discriminator_dims=(24,),
            gmm_components=3, epochs=1, batch_size=128, condition_mode="fast",
        )
        model = CTABGANPlusSurrogate(config, seed=2).fit(mixed_table)
        sampled = model.sample(700, seed=5)
        assert len(sampled) == 700
        assert sampled.schema == mixed_table.schema

class TestFusedExactConditionDraws:
    """The fused exact-mode draw path: fewer RNG calls, identical stream."""

    def _sampler(self, table):
        encoder = _ModeSpecificEncoder(3, 0).fit(table)
        return _ConditionSampler(table, encoder.categorical_layout, encoder.categorical_encoders)

    def test_fused_path_is_taken_on_real_fit(self, mixed_table):
        live = self._sampler(mixed_table)
        assert live._fused_ok, "fit-time screen should accept the mixed table's pools"

    def test_fused_matches_forced_legacy(self, mixed_table):
        live = self._sampler(mixed_table)
        for need_rows in (True, False):
            rng_a, rng_b = np.random.default_rng(17), np.random.default_rng(17)
            live._fused_ok = True
            fused_out = [live.sample(96, rng_a, mode="exact", need_rows=need_rows)
                         for _ in range(6)]
            live._fused_ok = False
            legacy_out = [live.sample(96, rng_b, mode="exact", need_rows=need_rows)
                          for _ in range(6)]
            live._fused_ok = True
            for fo, lo in zip(fused_out, legacy_out):
                for a, b in zip(fo, lo):
                    if a is None:
                        assert b is None
                    else:
                        np.testing.assert_array_equal(a, b)
            assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_singleton_pool_fit_falls_back(self):
        # One category appearing exactly once makes its pool size 1 — numpy
        # consumes nothing for such draws, so the fused layout cannot be
        # pinned and the fit-time screen must route to the legacy calls.
        rng = np.random.default_rng(5)
        n = 300
        cats = rng.choice(["a", "b", "c"], n).astype(object)
        cats[0] = "lonely"  # exactly one row in this category's pool
        table = Table(
            {"x0": rng.normal(size=n), "cat": cats},
            TableSchema.from_columns(numerical=["x0"], categorical=["cat"]),
        )
        live = self._sampler(table)
        assert not live._fused_ok
        seed = SeedConditionSampler(
            table,
            _ModeSpecificEncoder(3, 0).fit(table).categorical_layout,
            _ModeSpecificEncoder(3, 0).fit(table).categorical_encoders,
        )
        rng_a, rng_b = np.random.default_rng(4), np.random.default_rng(4)
        for a, b in zip(live.sample(80, rng_a, mode="exact"), seed.sample(80, rng_b)):
            np.testing.assert_array_equal(a, b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state
