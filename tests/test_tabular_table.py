"""Tests for repro.tabular.table."""

import numpy as np
import pytest

from repro.tabular.schema import ColumnKind, TableSchema
from repro.tabular.table import Table


@pytest.fixture()
def schema():
    return TableSchema.from_columns(numerical=["a", "b"], categorical=["c"])


@pytest.fixture()
def table(schema):
    return Table(
        {"a": [1.0, 2.0, 3.0, 4.0], "b": [0.1, 0.2, 0.3, 0.4], "c": ["x", "y", "x", "z"]},
        schema,
    )


class TestConstruction:
    def test_shape(self, table):
        assert table.shape == (4, 3)
        assert len(table) == 4

    def test_missing_column_rejected(self, schema):
        with pytest.raises(ValueError, match="do not match"):
            Table({"a": [1.0], "b": [2.0]}, schema)

    def test_extra_column_rejected(self, schema):
        with pytest.raises(ValueError):
            Table({"a": [1.0], "b": [2.0], "c": ["x"], "d": [1.0]}, schema)

    def test_ragged_columns_rejected(self, schema):
        with pytest.raises(ValueError, match="rows"):
            Table({"a": [1.0, 2.0], "b": [1.0], "c": ["x", "y"]}, schema)

    def test_numerical_cast_to_float(self, table):
        assert table["a"].dtype == np.float64

    def test_categorical_cast_to_str(self, schema):
        t = Table({"a": [1.0], "b": [1.0], "c": [5]}, schema)
        assert t["c"][0] == "5"

    def test_2d_column_rejected(self, schema):
        with pytest.raises(ValueError):
            Table({"a": np.ones((2, 2)), "b": [1.0, 2.0], "c": ["x", "y"]}, schema)

    def test_from_records(self, schema):
        records = [{"a": 1.0, "b": 2.0, "c": "x"}, {"a": 3.0, "b": 4.0, "c": "y"}]
        t = Table.from_records(records, schema)
        assert len(t) == 2
        assert t.row(1)["c"] == "y"

    def test_empty_table(self, schema):
        t = Table.empty(schema)
        assert len(t) == 0
        assert t.columns == ["a", "b", "c"]

    def test_unknown_column_lookup(self, table):
        with pytest.raises(KeyError):
            table["zzz"]


class TestSelection:
    def test_select_preserves_order(self, table):
        sub = table.select(["c", "a"])
        assert sub.columns == ["c", "a"]

    def test_drop(self, table):
        assert table.drop(["b"]).columns == ["a", "c"]

    def test_take(self, table):
        sub = table.take([2, 0])
        assert sub["a"].tolist() == [3.0, 1.0]

    def test_mask(self, table):
        sub = table.mask(np.array([True, False, True, False]))
        assert len(sub) == 2

    def test_mask_wrong_length(self, table):
        with pytest.raises(ValueError):
            table.mask([True, False])

    def test_head(self, table):
        assert len(table.head(2)) == 2
        assert len(table.head(100)) == 4

    def test_with_column_adds(self, table):
        extended = table.with_column("d", [9.0, 8.0, 7.0, 6.0], ColumnKind.NUMERICAL)
        assert "d" in extended.columns
        assert len(extended.schema) == 4

    def test_with_column_replaces(self, table):
        replaced = table.with_column("a", [0.0, 0.0, 0.0, 0.0], "numerical")
        assert replaced["a"].sum() == 0.0
        assert len(replaced.schema) == 3


class TestSamplingAndCombination:
    def test_sample_without_replacement(self, table):
        sub = table.sample(3, seed=0)
        assert len(sub) == 3

    def test_sample_too_many_raises(self, table):
        with pytest.raises(ValueError):
            table.sample(10, replace=False)

    def test_sample_with_replacement(self, table):
        assert len(table.sample(10, replace=True, seed=0)) == 10

    def test_sample_deterministic(self, table):
        a = table.sample(2, seed=3)["a"]
        b = table.sample(2, seed=3)["a"]
        np.testing.assert_array_equal(a, b)

    def test_shuffle_preserves_multiset(self, table):
        shuffled = table.shuffle(seed=1)
        assert sorted(shuffled["a"].tolist()) == sorted(table["a"].tolist())

    def test_concat(self, table):
        combined = Table.concat([table, table])
        assert len(combined) == 8

    def test_concat_schema_mismatch(self, table):
        other = table.drop(["b"])
        with pytest.raises(ValueError):
            Table.concat([table, other])

    def test_concat_empty_list(self):
        with pytest.raises(ValueError):
            Table.concat([])

    def test_equality(self, table):
        assert table == table.take([0, 1, 2, 3])
        assert table != table.take([1, 0, 2, 3])


class TestMatricesAndSummaries:
    def test_numerical_matrix_shape(self, table):
        assert table.numerical_matrix().shape == (4, 2)

    def test_numerical_matrix_rejects_categorical(self, table):
        with pytest.raises(ValueError):
            table.numerical_matrix(["c"])

    def test_categorical_matrix(self, table):
        assert table.categorical_matrix().shape == (4, 1)

    def test_codes_matrix(self, table):
        codes = table.codes_matrix()
        assert codes.shape == (4, 1)
        assert codes.dtype == np.int32
        # Codes index the column's vocab and decode to the original strings.
        vocab = table.vocab("c")
        assert [vocab[i] for i in codes[:, 0]] == ["x", "y", "x", "z"]

    def test_codes_matrix_rejects_numerical(self, table):
        with pytest.raises(ValueError):
            table.codes_matrix(["a"])

    def test_codes_matrix_empty_selection(self, table):
        empty = table.codes_matrix([])
        assert empty.shape == (4, 0)
        assert empty.dtype == np.int32

    def test_categorical_accessors(self, table):
        column = table.categorical_column("c")
        np.testing.assert_array_equal(column.codes, table.codes("c"))
        assert column.vocab == table.vocab("c")
        np.testing.assert_array_equal(column.decode(), table["c"])
        with pytest.raises(ValueError):
            table.categorical_column("a")

    def test_value_counts_sorted(self, table):
        counts = table.value_counts("c")
        assert list(counts)[0] == "x"
        assert counts["x"] == 2

    def test_value_counts_normalized(self, table):
        freqs = table.value_counts("c", normalize=True)
        assert abs(sum(freqs.values()) - 1.0) < 1e-12

    def test_value_counts_types(self, table):
        # Raw counts are true ints, frequencies true floats — the annotation
        # promised Dict[str, float] for both, which was wrong for counts.
        counts = table.value_counts("c")
        assert all(type(v) is int for v in counts.values())
        assert counts == {"x": 2, "y": 1, "z": 1}
        freqs = table.value_counts("c", normalize=True)
        assert all(type(v) is float for v in freqs.values())

    def test_value_counts_on_numeric_raises(self, table):
        with pytest.raises(ValueError):
            table.value_counts("a")

    def test_nunique(self, table):
        assert table.nunique("c") == 3

    def test_describe_numeric(self, table):
        stats = table.describe_numeric("a")
        assert stats["min"] == 1.0 and stats["max"] == 4.0
        assert stats["median"] == pytest.approx(2.5)

    def test_describe_numeric_on_categorical_raises(self, table):
        with pytest.raises(ValueError):
            table.describe_numeric("c")

    def test_profile(self, table):
        profile = {row["name"]: row for row in table.profile()}
        assert profile["c"]["n_unique"] == 3
        assert profile["a"]["kind"] == "numerical"

    def test_row_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.row(10)

    def test_to_records_roundtrip(self, table):
        records = table.to_records()
        rebuilt = Table.from_records(records, table.schema)
        assert rebuilt == table
