"""Unit tests for the observability plane (``repro.obs``).

Metrics: counter/gauge/histogram semantics, the registry's get-or-create
contract, Prometheus text rendering and its validator.  Tracing: the
seed-derived trace/span identity scheme (the property the cross-process
stitching relies on) and both export formats.
"""

import json
import math

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    render_prometheus_multi,
    validate_prometheus_text,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    chunk_span_id,
    make_span,
    request_span_id,
    span_id,
    trace_id_from_child,
    trace_id_from_seed,
    wall_clock,
)


class TestCounter:
    def test_inc_and_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "served requests")
        counter.inc()
        counter.inc(2.0)
        assert counter.total() == 3.0

    def test_labeled_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("rows_total", labels=("tenant",))
        counter.inc(10, tenant="a")
        counter.inc(5, tenant="b")
        counter.inc(1, tenant="a")
        assert counter.value(tenant="a") == 11.0
        assert counter.value(tenant="b") == 5.0
        assert counter.total() == 16.0
        assert counter.series() == {("a",): 11.0, ("b",): 5.0}

    def test_missing_label_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", labels=("tenant",))
        with pytest.raises(ValueError):
            counter.inc()

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1.0)


class TestGauge:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth")
        gauge.set(4)
        assert gauge.value() == 4.0
        gauge.add(-1)
        assert gauge.value() == 3.0


class TestHistogram:
    def test_count_and_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds")
        for value in [0.001, 0.002, 0.004, 0.008, 0.5]:
            hist.observe(value)
        assert hist.count() == 5
        assert hist.total_count() == 5
        # Quantiles come from bucket upper bounds: monotone and bounded by
        # the largest bucket containing an observation.
        p50 = hist.quantile(0.5)
        p99 = hist.quantile(0.99)
        assert 0.0 < p50 <= p99
        # The p99 lands inside the bucket holding the 0.5s outlier (the
        # standard one-doubling histogram_quantile resolution).
        assert 0.25 <= p99 <= 0.512

    def test_default_buckets_log_spaced(self):
        assert len(DEFAULT_LATENCY_BUCKETS) == 21
        assert all(
            b2 == pytest.approx(2.0 * b1)
            for b1, b2 in zip(DEFAULT_LATENCY_BUCKETS, DEFAULT_LATENCY_BUCKETS[1:])
        )


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels=("tenant",))
        b = registry.counter("c", labels=("tenant",))
        assert a is b

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with pytest.raises(ValueError):
            registry.gauge("c")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("tenant",))
        with pytest.raises(ValueError):
            registry.counter("c", labels=("priority",))

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(0.01)
        snap = registry.snapshot()
        assert snap["c"]["type"] == "counter"
        assert snap["g"]["type"] == "gauge"
        assert snap["h"]["type"] == "histogram"
        hist_values = snap["h"]["values"][""]  # the unlabelled series
        assert {"count", "sum", "p50", "p95", "p99"} <= set(hist_values)


class TestPrometheusText:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "requests", labels=("tenant",)).inc(
            2, tenant='we"ird\\'
        )
        registry.gauge("repro_depth", "depth").set(3)
        registry.histogram("repro_wait_seconds", "wait").observe(0.01)
        return registry

    def test_render_and_validate_round_trip(self):
        text = self._populated().render_prometheus()
        assert "# TYPE repro_requests_total counter" in text
        assert "# HELP repro_depth depth" in text
        assert "repro_wait_seconds_bucket" in text
        problems = validate_prometheus_text(
            text,
            required=("repro_requests_total", "repro_depth", "repro_wait_seconds_bucket"),
        )
        assert problems == []

    def test_validate_reports_missing_required_series(self):
        text = self._populated().render_prometheus()
        problems = validate_prometheus_text(text, required=("repro_nonexistent_total",))
        assert any("repro_nonexistent_total" in p for p in problems)

    def test_multi_registry_render_tags_backend(self):
        prod, canary = self._populated(), self._populated()
        text = render_prometheus_multi({"prod": prod, "canary": canary})
        assert 'backend="prod"' in text
        assert 'backend="canary"' in text
        assert validate_prometheus_text(text, required=("repro_requests_total",)) == []


class TestTraceIdentity:
    def test_trace_id_deterministic_for_int_seed(self):
        assert trace_id_from_seed(42) == trace_id_from_seed(42)
        assert trace_id_from_seed(42) != trace_id_from_seed(43)

    def test_trace_id_random_for_none_seed(self):
        assert trace_id_from_seed(None) != trace_id_from_seed(None)

    def test_child_recovers_parent_trace_id(self):
        # The cross-process stitching trick: a worker holding only chunk i's
        # SeedSequence child derives the same trace ID the parent derived
        # from the request seed.
        parent = np.random.SeedSequence(42)
        for child in parent.spawn(4):
            assert trace_id_from_child(child) == trace_id_from_seed(parent)

    def test_span_ids_deterministic_and_distinct(self):
        trace = trace_id_from_seed(7)
        assert request_span_id(trace) == request_span_id(trace)
        assert chunk_span_id(trace, 0) != chunk_span_id(trace, 1)
        assert span_id(trace, "admission") != span_id(trace, "queue_wait")

    def test_wall_clock_maps_perf_stamp_to_epoch(self):
        import time

        now = wall_clock(time.perf_counter())
        assert abs(now - time.time()) < 1.0


class TestTracer:
    def _spanful_tracer(self):
        tracer = Tracer()
        trace = trace_id_from_seed(1)
        root = request_span_id(trace)
        tracer.record_span(
            "request", trace, span_id=root, start=100.0, duration=2.0
        )
        tracer.record_span(
            "chunk[0]",
            trace,
            span_id=chunk_span_id(trace, 0),
            parent_id=root,
            start=100.5,
            duration=1.0,
            attrs={"rows": 512},
        )
        return tracer, trace

    def test_record_and_traces_grouping(self):
        tracer, trace = self._spanful_tracer()
        assert len(tracer) == 2
        grouped = tracer.traces()
        assert list(grouped) == [trace]
        assert [s.name for s in grouped[trace]] == ["request", "chunk[0]"]

    def test_span_context_manager_measures(self):
        tracer = Tracer()
        trace = trace_id_from_seed(2)
        with tracer.span("work", trace, span_id=span_id(trace, "work")):
            pass
        (span,) = tracer.spans()
        assert span.name == "work"
        assert span.duration >= 0.0

    def test_make_span_clamps_negative_duration(self):
        span = make_span("s", "t", span_id="i", start=0.0, duration=-1.0)
        assert span.duration == 0.0

    def test_export_jsonl(self, tmp_path):
        tracer, _trace = self._spanful_tracer()
        path = tmp_path / "spans.jsonl"
        assert tracer.export(str(path)) == 2
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["request", "chunk[0]"]
        assert records[1]["attrs"] == {"rows": 512}

    def test_export_chrome(self, tmp_path):
        tracer, trace = self._spanful_tracer()
        path = tmp_path / "trace.json"
        assert tracer.export(str(path)) == 2  # .json selects the chrome format
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["args"]["trace_id"] == trace
            assert math.isfinite(event["ts"]) and event["dur"] > 0

    def test_clear(self):
        tracer, _trace = self._spanful_tracer()
        tracer.clear()
        assert len(tracer) == 0

    def test_span_as_dict_round_trip(self):
        span = Span(
            name="s", trace_id="t", span_id="i", parent_id=None,
            start=1.0, duration=0.5, pid=1, tid=2, attrs={},
        )
        assert json.loads(json.dumps(span.as_dict()))["name"] == "s"
