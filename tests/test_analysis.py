"""Tests for the analysis extensions (temporal structure, diffusion anomaly
scoring, dataset popularity)."""

import numpy as np
import pytest

from repro.analysis.anomaly import DiffusionAnomalyDetector
from repro.analysis.popularity import dataset_popularity, reuse_factor_table, top_datasets
from repro.analysis.temporal import (
    TemporalProfile,
    arrival_counts,
    compare_temporal_profiles,
    dominant_periods,
    periodogram,
    weekly_profile,
)
from repro.models.tabddpm import TabDDPMConfig, TabDDPMSurrogate
from repro.panda.temporal import ArrivalProcess


class TestArrivalCountsAndPeriodogram:
    def test_counts_conserve_total(self):
        times = np.random.default_rng(0).uniform(0, 30, size=5000)
        _, counts = arrival_counts(times, bins_per_day=8)
        assert counts.sum() == 5000

    def test_counts_empty_rejected(self):
        with pytest.raises(ValueError):
            arrival_counts(np.array([]))

    def test_periodogram_requires_enough_samples(self):
        with pytest.raises(ValueError):
            periodogram(np.array([1.0, 2.0]))

    def test_periodogram_finds_injected_daily_cycle(self):
        # Build a synthetic series with a strong 1-day cycle.
        bins_per_day = 8
        t = np.arange(0, 60, 1.0 / bins_per_day)
        counts = 100 + 50 * np.sin(2 * np.pi * t)
        periods, power = periodogram(counts, bins_per_day=bins_per_day)
        assert abs(periods[np.argmax(power)] - 1.0) < 0.1

    def test_dominant_periods_detect_weekly_cycle(self):
        process = ArrivalProcess(n_days=140.0, diurnal_amplitude=0.0, weekly_amplitude=0.6,
                                 drift_scale=0.0, bursts=[])
        times = process.sample_times(60_000, seed=0)
        top = dominant_periods(times, bins_per_day=4, top_k=3, min_period_days=2.0)
        assert any(abs(p - 7.0) < 1.0 for p in top)

    def test_dominant_periods_detect_daily_cycle(self):
        process = ArrivalProcess(n_days=60.0, diurnal_amplitude=0.8, weekly_amplitude=0.0,
                                 drift_scale=0.0, bursts=[])
        times = process.sample_times(60_000, seed=1)
        top = dominant_periods(times, bins_per_day=12, top_k=3, min_period_days=0.3)
        assert any(abs(p - 1.0) < 0.2 for p in top)


class TestWeeklyProfile:
    def test_profile_shape_and_mean(self):
        times = np.random.default_rng(0).uniform(0, 70, size=20000)
        profile = weekly_profile(times, bins_per_day=4)
        assert profile.shape == (28,)
        assert profile.mean() == pytest.approx(1.0, rel=1e-6)

    def test_weekend_suppression_detected(self):
        process = ArrivalProcess(n_days=140.0, diurnal_amplitude=0.0, weekly_amplitude=0.5,
                                 drift_scale=0.0, bursts=[])
        times = process.sample_times(50_000, seed=2)
        profile = TemporalProfile.from_times(times)
        assert profile.weekend_suppression > 0.2

    def test_uniform_stream_has_no_suppression(self):
        times = np.random.default_rng(1).uniform(0, 140, size=50_000)
        profile = TemporalProfile.from_times(times)
        assert abs(profile.weekend_suppression) < 0.1


class TestCompareTemporalProfiles:
    def test_identical_traces_match(self, panda_table):
        result = compare_temporal_profiles(panda_table, panda_table)
        assert result["weekly_profile_correlation"] == pytest.approx(1.0)
        assert result["weekend_suppression_gap"] == pytest.approx(0.0)
        assert result["dominant_period_match"] == 1.0

    def test_uniform_synthetic_scores_worse_than_real(self, panda_table):
        rng = np.random.default_rng(0)
        uniform_times = rng.uniform(0, 60, size=len(panda_table))
        uniform = panda_table.with_column("creationtime", uniform_times, "numerical")
        matched = compare_temporal_profiles(panda_table, panda_table)
        mismatched = compare_temporal_profiles(panda_table, uniform)
        assert mismatched["weekly_profile_correlation"] < matched["weekly_profile_correlation"]


class TestDiffusionAnomalyDetector:
    @pytest.fixture(scope="class")
    def fitted_surrogate(self, train_table):
        model = TabDDPMSurrogate(
            TabDDPMConfig(n_timesteps=50, hidden_dims=(128, 128), epochs=40, batch_size=256,
                          learning_rate=1e-3),
            seed=0,
        )
        model.fit(train_table.head(1500))
        return model

    def test_requires_fitted_surrogate(self):
        with pytest.raises(ValueError):
            DiffusionAnomalyDetector(TabDDPMSurrogate(TabDDPMConfig.fast()))

    def test_scores_shape_and_finite(self, fitted_surrogate, train_table):
        detector = DiffusionAnomalyDetector(fitted_surrogate, seed=0)
        scores = detector.score(train_table.head(100))
        assert scores.shape == (100,)
        assert np.isfinite(scores).all()

    def test_off_manifold_records_score_higher(self, fitted_surrogate, train_table):
        """Records whose columns are independently permuted break the joint
        structure the diffusion model learned and must score higher on average."""
        from repro.tabular.table import Table

        detector = DiffusionAnomalyDetector(fitted_surrogate, n_repeats=3, seed=0)
        inliers = train_table.head(150)
        rng = np.random.default_rng(0)
        permuted = Table(
            {c: np.asarray(inliers[c])[rng.permutation(len(inliers))] for c in inliers.columns},
            inliers.schema,
        )
        inlier_scores = detector.score(inliers)
        outlier_scores = detector.score(permuted)
        assert outlier_scores.mean() > inlier_scores.mean()

    def test_calibrated_threshold(self, fitted_surrogate, train_table):
        detector = DiffusionAnomalyDetector(fitted_surrogate, seed=0)
        detector.calibrate(train_table.head(200))
        flags = detector.is_anomalous(train_table.head(100), percentile=99.0)
        assert flags.dtype == bool
        assert flags.mean() < 0.2  # most in-distribution records pass

    def test_invalid_parameters(self, fitted_surrogate):
        with pytest.raises(ValueError):
            DiffusionAnomalyDetector(fitted_surrogate, timesteps=[10_000])
        with pytest.raises(ValueError):
            DiffusionAnomalyDetector(fitted_surrogate, n_repeats=0)
        detector = DiffusionAnomalyDetector(fitted_surrogate, seed=0)
        with pytest.raises(RuntimeError):
            detector.is_anomalous(None)  # not calibrated yet


class TestDatasetPopularity:
    def test_counts_sum_to_rows(self, raw_table):
        stats = dataset_popularity(raw_table)
        assert sum(s.n_uses for s in stats) == len(raw_table)
        assert all(s.n_uses >= 1 for s in stats)

    def test_sorted_by_use_count(self, raw_table):
        stats = dataset_popularity(raw_table)
        uses = [s.n_uses for s in stats]
        assert uses == sorted(uses, reverse=True)

    def test_reuse_factor_definition(self, raw_table):
        stats = dataset_popularity(raw_table)
        assert all(s.reuse_factor == s.n_uses - 1 for s in stats)

    def test_time_span_consistent(self, raw_table):
        stats = dataset_popularity(raw_table)
        assert all(s.last_use_day >= s.first_use_day for s in stats)

    def test_top_datasets(self, raw_table):
        top = top_datasets(raw_table, k=5)
        assert len(top) == 5
        assert top[0].n_uses >= top[-1].n_uses

    def test_missing_column_rejected(self, panda_table):
        with pytest.raises(KeyError):
            dataset_popularity(panda_table)

    def test_reuse_factor_table_schema(self, raw_table):
        table = reuse_factor_table(raw_table)
        assert set(table.columns) == {
            "reuse_factor", "total_gigabytes", "active_span_days", "project", "datatype",
        }
        assert (np.asarray(table["reuse_factor"]) >= 0).all()
        assert len(table) == len(dataset_popularity(raw_table))

    def test_reuse_factor_predictable_with_boosting(self, raw_table):
        """End-to-end check of the paper's follow-up idea: reuse factors can be
        regressed from dataset attributes with the boosting substrate."""
        from repro.boosting.gbdt import TabularBoostingRegressor

        table = reuse_factor_table(raw_table)
        if len(table) < 50:
            pytest.skip("not enough datasets in the fixture trace")
        model = TabularBoostingRegressor(
            target_column="reuse_factor", n_estimators=20, learning_rate=0.3, max_depth=4, seed=0
        )
        model.fit(table)
        predictions = model.predict(table)
        assert predictions.shape == (len(table),)
        assert np.isfinite(predictions).all()
