"""Fig. 1 — cumulative data volume of the workload over the observation window.

The paper's Fig. 1 shows the ATLAS experiment's stored data volume growing
towards the exabyte scale.  The reproduction reports the cumulative input
volume consumed by the generated job stream: the benchmark times the series
computation and asserts the defining property of the figure — a monotone,
steadily growing curve whose final value matches the sum of all job inputs.
"""

import numpy as np
import pytest

from repro.experiments.figures import fig1_data_volume


def test_fig1_cumulative_data_volume(benchmark, bench_config, bench_dataset):
    series = benchmark(fig1_data_volume, bench_config, dataset=bench_dataset, n_bins=30)

    cumulative = series["cumulative_bytes"]
    assert np.all(np.diff(cumulative) >= 0), "data volume must grow monotonically"
    total = float(np.asarray(bench_dataset.table["inputfilebytes"]).sum())
    assert cumulative[-1] == pytest.approx(total, rel=1e-9)
    # The growth should be spread across the window, not a single burst:
    # at mid-window at least 20% (and at most 80%) of the data has arrived.
    mid = cumulative[len(cumulative) // 2]
    assert 0.2 * total < mid < 0.8 * total

    benchmark.extra_info["total_petabytes"] = round(float(series["total_petabytes"][0]), 4)
    benchmark.extra_info["n_jobs"] = len(bench_dataset.table)
