"""Fig. 5 — pairwise association matrices and their difference from ground truth.

Fig. 5(a) shows the association matrix (Pearson / correlation ratio /
Theil's U) of the real training data; Fig. 5(b) shows each model's synthetic
matrix and its element-wise difference from the ground truth.  The benchmark
times the matrix computation for all models and asserts the paper's finding
that SMOTE and TabDDPM reproduce the correlation structure far better than
TVAE and CTABGAN+ (their difference matrices are close to zero, the deep
baselines show large residuals).
"""

import numpy as np
from repro.experiments.figures import fig5_correlations


def test_fig5_association_matrices(benchmark, bench_config, bench_dataset, synthetic_tables):
    def run():
        return fig5_correlations(
            bench_config, dataset=bench_dataset, synthetic_tables=synthetic_tables
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    k = len(result["columns"])
    ground_truth = result["ground_truth"]
    assert ground_truth.shape == (k, k)
    np.testing.assert_allclose(np.diag(ground_truth), 1.0)

    diff_corr = {name: info["diff_corr"] for name, info in result["models"].items()}
    for name, info in result["models"].items():
        assert info["difference"].shape == (k, k)
        benchmark.extra_info[f"{name}_diff_corr"] = round(diff_corr[name], 4)

    # Paper's reading of Fig. 5(b) / Table I: SMOTE and TabDDPM reproduce the
    # correlation structure better than the TVAE / CTABGAN+ pair.
    top_pair = max(diff_corr["SMOTE"], diff_corr["TabDDPM"])
    deep_pair = min(diff_corr["TVAE"], diff_corr["CTABGAN+"])
    assert top_pair <= deep_pair + 0.02

    # And SMOTE's difference matrix is small in absolute terms.
    assert diff_corr["SMOTE"] < 0.15
