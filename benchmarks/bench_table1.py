"""Table I — performance comparison of the surrogate models.

Regenerates the five-metric grid of the paper's Table I on the benchmark
dataset.  The timed section per model is the metric evaluation (the training
cost is reported separately by ``bench_model_training.py``); the resulting
metric values are attached to ``benchmark.extra_info`` and checked against
the paper's qualitative findings:

* SMOTE and TabDDPM have (much) lower diff-CORR and diff-MLEF than TVAE and
  CTABGAN+,
* SMOTE has the lowest DCR (worst privacy) of all models,
* TabDDPM keeps a clearly higher DCR than SMOTE while staying close on the
  fidelity metrics.

Paper reference values (Table I):
    TVAE      WD 0.961  JSD 0.806  diff-CORR 0.653  DCR 0.143  diff-MLEF  5.875
    CTABGAN+  WD 1.000  JSD 0.820  diff-CORR 0.658  DCR 0.105  diff-MLEF 10.464
    SMOTE     WD 0.871  JSD 0.799  diff-CORR 0.011  DCR 0.001  diff-MLEF  0.058
    TabDDPM   WD 0.874  JSD 0.799  diff-CORR 0.036  DCR 0.025  diff-MLEF  0.826

Absolute values differ (different substrate, scaled-down training); the
*orderings* are what the assertions verify.
"""

import pytest

from repro.metrics.report import evaluate_surrogate_data, format_table
from repro.utils.rng import derive_seed

MODELS = ("TVAE", "CTABGAN+", "SMOTE", "TabDDPM")

#: Collected scores, filled as the per-model benchmarks run.
_SCORES = {}


@pytest.mark.parametrize("model_name", MODELS)
def test_table1_model_row(benchmark, model_name, bench_config, bench_dataset, synthetic_tables):
    """Time the Table-I metric evaluation for one model and record its row."""
    synthetic = synthetic_tables[model_name]

    def evaluate():
        return evaluate_surrogate_data(
            model_name,
            bench_dataset.train,
            bench_dataset.test,
            synthetic,
            mlef_config=bench_config.mlef,
            seed=derive_seed(bench_config.seed, "bench-mlef", model_name),
        )

    score = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    _SCORES[model_name] = score
    benchmark.extra_info.update({k: round(v, 4) for k, v in score.as_row().items()})


def test_table1_orderings(benchmark, bench_dataset):
    """Check the paper's qualitative Table-I findings on the collected rows.

    Uses the benchmark fixture (timing the table assembly) so it still runs
    under ``--benchmark-only`` and the assembled Table-I text is attached to
    the benchmark record.
    """
    if set(MODELS) - set(_SCORES):
        pytest.skip("run the per-model Table-I benchmarks first (pytest benchmarks/ --benchmark-only)")
    table_text = benchmark(lambda: format_table([_SCORES[m] for m in MODELS]))
    benchmark.extra_info["table"] = {m: _SCORES[m].as_row() for m in MODELS}
    print()
    print(table_text)

    smote, tabddpm = _SCORES["SMOTE"], _SCORES["TabDDPM"]
    tvae, ctabgan = _SCORES["TVAE"], _SCORES["CTABGAN+"]

    # SMOTE: best-in-class fidelity, worst-in-class privacy.
    assert smote.dcr == min(s.dcr for s in _SCORES.values())
    assert smote.diff_corr <= min(tvae.diff_corr, ctabgan.diff_corr)

    # TabDDPM: close to SMOTE on fidelity, clearly better on privacy.
    assert tabddpm.dcr > smote.dcr
    assert tabddpm.diff_corr <= min(tvae.diff_corr, ctabgan.diff_corr) + 0.05
    assert tabddpm.wd <= max(tvae.wd, ctabgan.wd) + 0.05

    # The deep baselines trail the top pair on the efficacy gap.
    best_neural_gap = min(tvae.diff_mlef, ctabgan.diff_mlef)
    assert min(smote.diff_mlef, tabddpm.diff_mlef) <= best_neural_gap + 1e-9
