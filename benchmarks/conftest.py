"""Shared fixtures for the benchmark suite.

Every benchmark works off one shared CI-sized experiment: a synthetic PanDA
trace (the stand-in for the paper's 150-day collection) and the four
surrogate models trained on its training split.  Model training happens once
per benchmark session — individual benchmarks then time the piece of the
pipeline they are about (training, sampling, evaluation, simulation) and
record the paper-relevant numbers in ``benchmark.extra_info``.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.data import DatasetBundle, build_dataset
from repro.experiments.table1 import _DISPLAY_NAMES, build_model
from repro.tabular.table import Table
from repro.utils.rng import derive_seed


def pytest_addoption(parser):
    parser.addoption(
        "--bench-raw-jobs",
        action="store",
        type=int,
        default=6000,
        help="number of raw PanDA records generated for the benchmark dataset",
    )


@pytest.fixture(scope="session")
def bench_config(request) -> ExperimentConfig:
    raw_jobs = request.config.getoption("--bench-raw-jobs")
    return dataclasses.replace(ExperimentConfig.ci(), n_raw_jobs=int(raw_jobs))


@pytest.fixture(scope="session")
def bench_dataset(bench_config) -> DatasetBundle:
    return build_dataset(bench_config)


@pytest.fixture(scope="session")
def fitted_models(bench_config, bench_dataset) -> Dict[str, object]:
    """All four paper models fitted once on the shared training split."""
    models = {}
    for name in bench_config.models:
        display = _DISPLAY_NAMES[name.lower()]
        model = build_model(name, bench_config)
        model.fit(bench_dataset.train)
        models[display] = model
    return models


@pytest.fixture(scope="session")
def synthetic_tables(bench_config, bench_dataset, fitted_models) -> Dict[str, Table]:
    """One synthetic table per fitted model, sized like the training split."""
    n = bench_config.n_synthetic or bench_dataset.n_train
    return {
        display: model.sample(n, seed=derive_seed(bench_config.seed, "bench-sample", display))
        for display, model in fitted_models.items()
    }
