"""Fig. 3 — dataset profile (3a) and filtering funnel (3b).

The paper's Fig. 3(a) lists the nine selected features with their types and
unique-entry counts; Fig. 3(b) shows how ~9.6 M gross PanDA records reduce to
the ~1.65 M used for training/testing.  The benchmark times the full raw
generation + filtering pipeline and asserts the structural properties: the
exact feature schema of 3(a), a strictly shrinking funnel, and a final
retention fraction in the plausible range implied by the paper (the funnel
removes a substantial share of gross records but keeps the majority of
user-analysis DAOD jobs).
"""

from repro.panda.generator import GeneratorConfig, PandaWorkloadGenerator
from repro.panda.pipeline import FilteringPipeline
from repro.panda.records import CATEGORICAL_FEATURES, JOB_STATUSES, NUMERICAL_FEATURES


def test_fig3_profile_and_funnel(benchmark, bench_config):
    def run():
        generator = PandaWorkloadGenerator(
            GeneratorConfig(n_jobs=bench_config.n_raw_jobs, n_days=bench_config.n_days,
                            seed=bench_config.seed)
        )
        raw = generator.generate_raw()
        pipeline = FilteringPipeline(generator.sites)
        table, report = pipeline.run(raw)
        return table, report

    table, report = benchmark.pedantic(run, rounds=1, iterations=1)

    # Fig. 3(a): feature kinds match the paper's nine-column schema.
    profile = {row["name"]: row for row in table.profile()}
    for name in NUMERICAL_FEATURES:
        assert profile[name]["kind"] == "numerical"
    for name in CATEGORICAL_FEATURES:
        assert profile[name]["kind"] == "categorical"
    assert profile["jobstatus"]["n_unique"] <= len(JOB_STATUSES)
    assert profile["computingsite"]["n_unique"] >= 10

    # Fig. 3(b): strictly shrinking funnel with a plausible retention fraction.
    rows = [r["rows"] for r in report.as_rows()]
    assert all(a >= b for a, b in zip(rows, rows[1:]))
    retention = report.final_records / report.gross_records
    assert 0.3 < retention < 0.8

    benchmark.extra_info["gross_records"] = report.gross_records
    benchmark.extra_info["final_records"] = report.final_records
    benchmark.extra_info["retention"] = round(retention, 3)
    benchmark.extra_info["funnel"] = {r["stage"]: r["rows"] for r in report.as_rows()}
    benchmark.extra_info["unique_counts"] = {
        name: profile[name]["n_unique"] for name in profile
    }
