"""Ablation benchmarks for the design choices called out in DESIGN.md.

Three sweeps (none of them a paper table, but each justifying a default of the
reproduction):

* TabDDPM timesteps — sampling cost grows linearly with the chain length
  while fidelity saturates, justifying the CPU-scale default of ~100 steps
  (the reference implementation uses 1000).
* SMOTE neighbourhood size k — interpolating across a wider neighbourhood
  trades a little fidelity for a little privacy (DCR), but never approaches
  the diffusion model's privacy margin.
* Numerical pre-processing — the Gaussian quantile transform (the paper's
  choice) versus plain standardisation for TVAE on heavy-tailed columns.
"""

import dataclasses

import numpy as np
from repro.experiments.ablations import (
    ablate_diffusion_steps,
    ablate_numerical_transform,
    ablate_smote_k,
)


def _small_ddpm_config(bench_config):
    """A cheaper TabDDPM budget so the timestep sweep stays benchmark-sized."""
    return dataclasses.replace(
        bench_config,
        tabddpm=dataclasses.replace(
            bench_config.tabddpm, epochs=20, hidden_dims=(128,), n_timesteps=100
        ),
    )


def test_ablation_diffusion_steps(benchmark, bench_config, bench_dataset):
    config = _small_ddpm_config(bench_config)

    def run():
        return ablate_diffusion_steps(config, bench_dataset, steps=(10, 50, 100))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert [row["timesteps"] for row in rows] == [10.0, 50.0, 100.0]
    for row in rows:
        assert np.isfinite(row["WD"]) and np.isfinite(row["JSD"])
        benchmark.extra_info[f"T={int(row['timesteps'])}_WD"] = round(row["WD"], 4)
        benchmark.extra_info[f"T={int(row['timesteps'])}_DCR"] = round(row["DCR"], 4)
    # More denoising steps should not hurt numerical fidelity materially.
    assert rows[-1]["WD"] <= rows[0]["WD"] + 0.05


def test_ablation_smote_k(benchmark, bench_config, bench_dataset):
    def run():
        return ablate_smote_k(bench_config, bench_dataset, ks=(1, 5, 25))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert [row["k"] for row in rows] == [1.0, 5.0, 25.0]
    for row in rows:
        benchmark.extra_info[f"k={int(row['k'])}_WD"] = round(row["WD"], 4)
        benchmark.extra_info[f"k={int(row['k'])}_DCR"] = round(row["DCR"], 4)
    # Wider neighbourhoods may not *reduce* the distance to the closest record.
    assert rows[-1]["DCR"] >= rows[0]["DCR"] - 1e-3
    # Fidelity stays tight for every k (SMOTE's defining property).
    assert all(row["WD"] < 0.05 for row in rows)


def test_ablation_numerical_transform(benchmark, bench_config, bench_dataset):
    def run():
        return ablate_numerical_transform(bench_config, bench_dataset)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_transform = {row["transform"]: row for row in rows}
    assert set(by_transform) == {"quantile", "standard"}
    for name, row in by_transform.items():
        benchmark.extra_info[f"{name}_WD"] = round(row["WD"], 4)
        benchmark.extra_info[f"{name}_JSD"] = round(row["JSD"], 4)
    # The quantile transform is the default because it copes with the
    # heavy-tailed workload / byte-size columns at least as well as plain
    # standardisation.
    assert by_transform["quantile"]["WD"] <= by_transform["standard"]["WD"] + 0.02
