"""Throughput benchmarks of the substrates the reproduction is built on.

Not paper artefacts — these track the cost of the building blocks so
regressions in the numpy NN framework, the boosting stack, the metric kernels
or the workload generator are visible independently of the end-to-end
experiments.
"""

import numpy as np
from repro.boosting.gbdt import GradientBoostingRegressor
from repro.metrics.correlation import association_matrix
from repro.metrics.distribution import wasserstein_1d
from repro.metrics.privacy import nearest_record_distances
from repro.mixture.gmm import GaussianMixture
from repro.nn import MLP, Adam, Tensor, mse_loss
from repro.panda.generator import GeneratorConfig, PandaWorkloadGenerator
from repro.tabular.mixed import MixedEncoder


class TestNeuralSubstrate:
    def test_mlp_forward_backward_step(self, benchmark):
        """One Adam step of a 256x256 MLP on a 256-row batch (the TabDDPM inner loop)."""
        rng = np.random.default_rng(0)
        model = MLP(32, [256, 256], 32, activation="relu", seed=0)
        optimizer = Adam(model.parameters(), lr=1e-3)
        x = rng.normal(size=(256, 32))
        y = rng.normal(size=(256, 32))

        def step():
            optimizer.zero_grad()
            loss = mse_loss(model(Tensor(x)), y)
            loss.backward()
            optimizer.step()
            return loss.item()

        value = benchmark(step)
        assert np.isfinite(value)

    def test_mlp_inference_throughput(self, benchmark):
        model = MLP(32, [256, 256], 32, seed=0)
        x = Tensor(np.random.default_rng(1).normal(size=(2048, 32)))
        out = benchmark(lambda: model(x).numpy())
        assert out.shape == (2048, 32)


class TestTabularSubstrate:
    def test_mixed_encoder_transform(self, benchmark, bench_dataset):
        encoder = MixedEncoder().fit(bench_dataset.train)
        matrix = benchmark(lambda: encoder.transform(bench_dataset.train))
        assert matrix.n_rows == bench_dataset.n_train

    def test_workload_generation_throughput(self, benchmark):
        generator = PandaWorkloadGenerator(GeneratorConfig(n_jobs=5000, seed=1))
        table = benchmark(lambda: generator.generate_raw(5000, seed=2))
        assert len(table) == 5000


class TestModelSubstrates:
    def test_gmm_fit(self, benchmark, bench_dataset):
        values = np.asarray(bench_dataset.train["workload"])
        gmm = benchmark(lambda: GaussianMixture(n_components=8, seed=0).fit(values))
        assert gmm.n_active_components >= 1

    def test_gbdt_fit(self, benchmark, bench_dataset):
        X = bench_dataset.train.numerical_matrix()
        y = np.log(np.asarray(bench_dataset.train["workload"]))

        def fit():
            return GradientBoostingRegressor(
                n_estimators=30, learning_rate=0.3, max_depth=6, seed=0
            ).fit(X, y)

        model = benchmark.pedantic(fit, rounds=2, iterations=1)
        assert model.score_mse(X, y) < np.var(y)


class TestMetricKernels:
    def test_wasserstein_kernel(self, benchmark, bench_dataset):
        a = np.asarray(bench_dataset.train["workload"])
        b = np.asarray(bench_dataset.test["workload"])
        value = benchmark(lambda: wasserstein_1d(a, b))
        assert value >= 0.0

    def test_association_matrix_kernel(self, benchmark, bench_dataset):
        matrix, _ = benchmark.pedantic(
            lambda: association_matrix(bench_dataset.train), rounds=2, iterations=1
        )
        assert matrix.shape[0] == len(bench_dataset.train.columns)

    def test_dcr_kernel(self, benchmark, bench_dataset):
        synthetic = bench_dataset.test
        distances = benchmark.pedantic(
            lambda: nearest_record_distances(bench_dataset.train, synthetic),
            rounds=2,
            iterations=1,
        )
        assert distances.shape == (len(synthetic),)
