"""Seed (pre-optimization) implementations of the four hot-path kernels.

These are verbatim ports of the implementations the repository shipped with
before the vectorized hot-path engine: the per-feature histogram loop of the
GBDT tree, the O(d^2) per-pair association matrix, the row-by-row dataset-name
parse of the filtering pipeline and the per-event backlog rescan of the grid
simulator.  They exist for two reasons:

* ``bench_hotpaths.py`` times them against the optimized kernels so the
  speedup is a measured number rather than a claim, and
* ``tests/test_perf_equivalence.py`` checks the optimized kernels produce the
  same outputs.

They are *not* part of the library API and should never be imported from
``src/``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.boosting.tree import FeatureBinner, TreeNode
from repro.metrics.correlation import correlation_ratio, pearson_correlation, theils_u
from repro.panda.daod import parse_dataset_name
from repro.panda.records import JOB_STATUSES, PANDA_SCHEMA
from repro.panda.workload import hs23_workload
from repro.scheduler.events import Event, EventQueue, EventType
from repro.scheduler.jobs import SimulatedJob
from repro.tabular.schema import ColumnKind
from repro.tabular.table import Table
from repro.utils.rng import SeedLike, as_rng

# ---------------------------------------------------------------------------
# 1. Boosting: per-feature histogram loop, full rescan of both children.
# ---------------------------------------------------------------------------


class SeedRegressionTree:
    """The seed histogram tree: one ``np.bincount`` per feature per node."""

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 20,
        min_gain: float = 1e-12,
        lambda_reg: float = 1.0,
    ) -> None:
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.min_gain = float(min_gain)
        self.lambda_reg = float(lambda_reg)
        self.nodes_: Optional[List[TreeNode]] = None

    def fit(self, binned, residuals, n_bins_per_feature):
        g = np.asarray(residuals, dtype=np.float64)
        n_features = binned.shape[1]
        nodes: List[TreeNode] = []

        def leaf_value(grad_sum, count):
            return grad_sum / (count + self.lambda_reg)

        root_idx = np.arange(binned.shape[0])
        nodes.append(TreeNode(value=leaf_value(float(g.sum()), g.size), n_samples=g.size))
        stack = [(0, root_idx, 0)]
        while stack:
            node_id, rows, depth = stack.pop()
            node = nodes[node_id]
            grad_sum = float(g[rows].sum())
            count = rows.size
            node.value = leaf_value(grad_sum, count)
            node.n_samples = count
            if depth >= self.max_depth or count < 2 * self.min_samples_leaf:
                continue
            parent_score = grad_sum * grad_sum / (count + self.lambda_reg)
            best_gain = self.min_gain
            best_feature = -1
            best_bin = -1
            sub_binned = binned[rows]
            sub_g = g[rows]
            for j in range(n_features):
                nb = n_bins_per_feature[j]
                if nb < 2:
                    continue
                codes = sub_binned[:, j]
                grad_hist = np.bincount(codes, weights=sub_g, minlength=nb)
                cnt_hist = np.bincount(codes, minlength=nb)
                grad_cum = np.cumsum(grad_hist)[:-1]
                cnt_cum = np.cumsum(cnt_hist)[:-1]
                n_left = cnt_cum
                n_right = count - cnt_cum
                valid = (n_left >= self.min_samples_leaf) & (n_right >= self.min_samples_leaf)
                if not valid.any():
                    continue
                g_left = grad_cum
                g_right = grad_sum - grad_cum
                gain = (
                    g_left * g_left / (n_left + self.lambda_reg)
                    + g_right * g_right / (n_right + self.lambda_reg)
                    - parent_score
                )
                gain = np.where(valid, gain, -np.inf)
                best_j = int(np.argmax(gain))
                if gain[best_j] > best_gain:
                    best_gain = float(gain[best_j])
                    best_feature = j
                    best_bin = best_j
            if best_feature < 0:
                continue
            mask = sub_binned[:, best_feature] <= best_bin
            node.feature = best_feature
            node.threshold_bin = best_bin
            node.left = len(nodes)
            nodes.append(TreeNode())
            node.right = len(nodes)
            nodes.append(TreeNode())
            stack.append((node.left, rows[mask], depth + 1))
            stack.append((node.right, rows[~mask], depth + 1))
        self.nodes_ = nodes
        return self

    def predict(self, binned):
        n = binned.shape[0]
        out = np.zeros(n, dtype=np.float64)
        node_of_row = np.zeros(n, dtype=np.int64)
        active = np.arange(n)
        while active.size:
            current = node_of_row[active]
            feats = np.array([self.nodes_[c].feature for c in current])
            is_leaf = feats < 0
            if is_leaf.any():
                out[active[is_leaf]] = [self.nodes_[c].value for c in current[is_leaf]]
            keep = ~is_leaf
            active = active[keep]
            if not active.size:
                break
            current = current[keep]
            feats = feats[keep]
            thresholds = np.array([self.nodes_[c].threshold_bin for c in current])
            lefts = np.array([self.nodes_[c].left for c in current])
            rights = np.array([self.nodes_[c].right for c in current])
            go_left = binned[active, feats] <= thresholds
            node_of_row[active] = np.where(go_left, lefts, rights)
        return out


class SeedGradientBoostingRegressor:
    """The seed GBDT loop, consuming randomness exactly like the optimized one."""

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 6,
        min_samples_leaf: int = 20,
        subsample: float = 1.0,
        max_bins: int = 64,
        lambda_reg: float = 1.0,
        *,
        seed: SeedLike = None,
    ) -> None:
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.subsample = float(subsample)
        self.max_bins = int(max_bins)
        self.lambda_reg = float(lambda_reg)
        self._rng = as_rng(seed)
        self.binner_ = None
        self.trees_ = None
        self.base_prediction_ = None
        self.train_losses_ = None

    def fit(self, X, y):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self.binner_ = FeatureBinner(max_bins=self.max_bins)
        binned = self.binner_.fit_transform(X)
        n_bins = [self.binner_.n_bins(j) for j in range(X.shape[1])]
        self.base_prediction_ = float(y.mean())
        prediction = np.full(y.shape[0], self.base_prediction_)
        trees = []
        losses = []
        n = y.shape[0]
        for _ in range(self.n_estimators):
            residuals = y - prediction
            losses.append(float(np.mean(residuals ** 2)))
            if self.subsample < 1.0:
                idx = self._rng.choice(n, size=max(2, int(round(self.subsample * n))), replace=False)
            else:
                idx = np.arange(n)
            tree = SeedRegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                lambda_reg=self.lambda_reg,
            )
            tree.fit(binned[idx], residuals[idx], n_bins)
            prediction = prediction + self.learning_rate * tree.predict(binned)
            trees.append(tree)
        self.trees_ = trees
        self.train_losses_ = losses
        return self

    def predict(self, X):
        X = np.asarray(X, dtype=np.float64)
        binned = self.binner_.transform(X)
        prediction = np.full(X.shape[0], self.base_prediction_)
        for tree in self.trees_:
            prediction = prediction + self.learning_rate * tree.predict(binned)
        return prediction


# ---------------------------------------------------------------------------
# 2. Metrics: per-pair association matrix, re-encoding columns per pair.
# ---------------------------------------------------------------------------


def seed_association_matrix(
    table: Table, columns: Optional[Sequence[str]] = None
) -> Tuple[np.ndarray, Sequence[str]]:
    """The seed O(d^2) double loop over column pairs."""
    cols = list(columns) if columns is not None else table.columns
    k = len(cols)
    matrix = np.eye(k)
    kinds = {c: table.schema.kind_of(c) for c in cols}
    for i, ci in enumerate(cols):
        for j, cj in enumerate(cols):
            if i == j:
                continue
            ki, kj = kinds[ci], kinds[cj]
            if ki is ColumnKind.NUMERICAL and kj is ColumnKind.NUMERICAL:
                value = abs(pearson_correlation(table[ci], table[cj]))
            elif ki is ColumnKind.CATEGORICAL and kj is ColumnKind.CATEGORICAL:
                value = theils_u(table[ci], table[cj])
            elif ki is ColumnKind.CATEGORICAL:
                value = correlation_ratio(table[ci], table[cj])
            else:
                value = correlation_ratio(table[cj], table[ci])
            matrix[i, j] = value
    return matrix, cols


# ---------------------------------------------------------------------------
# 3. Panda: row-by-row dataset-name parsing in the filtering pipeline.
# ---------------------------------------------------------------------------


class SeedFilteringPipeline:
    """The seed pipeline: ``parse_dataset_name`` called once per row."""

    def __init__(self, sites):
        self.sites = sites

    def run(self, raw: Table):
        from repro.panda.pipeline import FilterReport

        report = FilterReport(gross_records=len(raw))
        analysis = raw.mask(np.asarray(raw["tasktype"]) == "analysis")
        report.add("user analysis jobs", len(raw), len(analysis))
        datatypes = np.array(
            [parse_dataset_name(name)["datatype"] for name in analysis["inputdatasetname"]]
        )
        daod_mask = np.char.startswith(datatypes.astype(str), "DAOD")
        daod = analysis.mask(daod_mask)
        report.add("DAOD input datasets", len(analysis), len(daod))
        final_mask = np.isin(np.asarray(daod["jobstatus"]), np.asarray(JOB_STATUSES))
        final = daod.mask(final_mask)
        report.add("final job status", len(daod), len(final))
        table = self.derive_features(final)
        report.add("feature derivation", len(final), len(table))
        return table, report

    def derive_features(self, records: Table) -> Table:
        parsed = [parse_dataset_name(name) for name in records["inputdatasetname"]]
        project = np.array([p["project"] for p in parsed], dtype=object).astype(str)
        prodstep = np.array([p["prodstep"] for p in parsed], dtype=object).astype(str)
        datatype = np.array([p["datatype"] for p in parsed], dtype=object).astype(str)
        hs23 = self.sites.hs23_of(records["computingsite"])
        workload = hs23_workload(records["corecount"], records["cputime_hours"], hs23)
        data = {
            "workload": workload,
            "creationtime": records["creationtime"],
            "ninputdatafiles": records["ninputdatafiles"],
            "inputfilebytes": records["inputfilebytes"],
            "jobstatus": records["jobstatus"],
            "computingsite": records["computingsite"],
            "project": project,
            "prodstep": prodstep,
            "datatype": datatype,
        }
        return Table(data, PANDA_SCHEMA)


# ---------------------------------------------------------------------------
# 4. Scheduler: full backlog rescan (broker call per queued job) per event.
# ---------------------------------------------------------------------------

_HOURS_PER_DAY = 24.0


class SeedGridSimulator:
    """The seed event loop: every event rescans the whole FIFO backlog."""

    def __init__(self, cluster, broker) -> None:
        self.cluster = cluster
        self.broker = broker

    def run(self, jobs: Sequence[SimulatedJob], *, max_backlog: Optional[int] = None):
        from repro.scheduler.simulator import SimulationResult

        jobs = list(jobs)
        queue = EventQueue()
        for job in jobs:
            queue.push(Event(job.arrival_time, EventType.JOB_ARRIVAL, job))
        backlog: List[SimulatedJob] = []
        start_times: Dict[int, float] = {}
        finish_times: Dict[int, float] = {}
        runtimes: Dict[int, float] = {}
        site_of_job: Dict[int, str] = {}
        now = 0.0

        def try_dispatch(time: float) -> None:
            still_waiting: List[SimulatedJob] = []
            for job in backlog:
                site_name = self.broker.select_site(job, self.cluster)
                if site_name is None:
                    still_waiting.append(job)
                    continue
                state = self.cluster[site_name]
                state.allocate(job.cores, time)
                runtime_hours = job.runtime_at(state.site.hs23_per_core)
                start_times[job.job_id] = time
                runtimes[job.job_id] = runtime_hours
                site_of_job[job.job_id] = site_name
                queue.push(
                    Event(time + runtime_hours / _HOURS_PER_DAY, EventType.JOB_FINISH, job)
                )
            backlog[:] = still_waiting

        while queue:
            event = queue.pop()
            now = event.time
            job = event.payload
            if event.kind is EventType.JOB_ARRIVAL:
                backlog.append(job)
                if max_backlog is not None and len(backlog) > max_backlog:
                    raise RuntimeError(
                        f"backlog exceeded {max_backlog} jobs; the cluster is undersized"
                    )
                try_dispatch(now)
            elif event.kind is EventType.JOB_FINISH:
                site_name = site_of_job[job.job_id]
                state = self.cluster[site_name]
                state.release(job.cores, now)
                state.completed_jobs += 1
                finish_times[job.job_id] = now
                try_dispatch(now)

        horizon = max(now, 1e-9)
        for state in self.cluster.sites.values():
            state.advance_to(horizon)
        completed = sorted(finish_times.keys())
        jobs_by_id = {job.job_id: job for job in jobs}
        wait_hours = np.array(
            [(start_times[j] - jobs_by_id[j].arrival_time) * _HOURS_PER_DAY for j in completed]
        )
        runtime_hours = np.array([runtimes[j] for j in completed]) if completed else np.empty(0)
        return SimulationResult(
            broker=self.broker.name,
            n_jobs=len(jobs),
            n_completed=len(completed),
            makespan_days=float(horizon - min((j.arrival_time for j in jobs), default=0.0)),
            mean_wait_hours=float(wait_hours.mean()) if wait_hours.size else 0.0,
            p95_wait_hours=float(np.percentile(wait_hours, 95)) if wait_hours.size else 0.0,
            mean_runtime_hours=float(runtime_hours.mean()) if runtime_hours.size else 0.0,
            utilization_by_site=self.cluster.utilization_by_site(horizon),
            wait_times_hours=wait_hours,
        )
