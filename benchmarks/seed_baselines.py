"""Seed (pre-optimization) implementations of the hot-path kernels.

These are verbatim ports of the implementations the repository shipped with
before the perf PRs: the per-feature histogram loop of the GBDT tree, the
O(d^2) per-pair association matrix, the row-by-row dataset-name parse of the
filtering pipeline, the per-event backlog rescan of the grid simulator, the
unfused per-block deep-model training loops (TVAE / CTABGAN+ / TabDDPM with
allocation-per-parameter Adam/SGD steps), the O(sites) linear-scan brokers
and the watermark simulator that recomputed its free-core maximum with a
full pass per allocation.  They exist for two reasons:

* ``bench_hotpaths.py`` times them against the optimized kernels so the
  speedup is a measured number rather than a claim, and
* ``tests/test_perf_equivalence.py`` / ``tests/test_train_equivalence.py``
  check the optimized kernels produce the same outputs (bit-identical
  losses, parameters and samples for the training stacks).

They are *not* part of the library API and should never be imported from
``src/``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.boosting.tree import FeatureBinner, TreeNode
from repro.metrics.correlation import correlation_ratio, pearson_correlation, theils_u
from repro.panda.daod import parse_dataset_name
from repro.panda.records import JOB_STATUSES, PANDA_SCHEMA
from repro.panda.workload import hs23_workload
from repro.scheduler.events import Event, EventQueue, EventType
from repro.scheduler.jobs import SimulatedJob
from repro.tabular.schema import ColumnKind
from repro.tabular.table import Table
from repro.utils.rng import SeedLike, as_rng

# ---------------------------------------------------------------------------
# 1. Boosting: per-feature histogram loop, full rescan of both children.
# ---------------------------------------------------------------------------


class SeedRegressionTree:
    """The seed histogram tree: one ``np.bincount`` per feature per node."""

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 20,
        min_gain: float = 1e-12,
        lambda_reg: float = 1.0,
    ) -> None:
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.min_gain = float(min_gain)
        self.lambda_reg = float(lambda_reg)
        self.nodes_: Optional[List[TreeNode]] = None

    def fit(self, binned, residuals, n_bins_per_feature):
        g = np.asarray(residuals, dtype=np.float64)
        n_features = binned.shape[1]
        nodes: List[TreeNode] = []

        def leaf_value(grad_sum, count):
            return grad_sum / (count + self.lambda_reg)

        root_idx = np.arange(binned.shape[0])
        nodes.append(TreeNode(value=leaf_value(float(g.sum()), g.size), n_samples=g.size))
        stack = [(0, root_idx, 0)]
        while stack:
            node_id, rows, depth = stack.pop()
            node = nodes[node_id]
            grad_sum = float(g[rows].sum())
            count = rows.size
            node.value = leaf_value(grad_sum, count)
            node.n_samples = count
            if depth >= self.max_depth or count < 2 * self.min_samples_leaf:
                continue
            parent_score = grad_sum * grad_sum / (count + self.lambda_reg)
            best_gain = self.min_gain
            best_feature = -1
            best_bin = -1
            sub_binned = binned[rows]
            sub_g = g[rows]
            for j in range(n_features):
                nb = n_bins_per_feature[j]
                if nb < 2:
                    continue
                codes = sub_binned[:, j]
                grad_hist = np.bincount(codes, weights=sub_g, minlength=nb)
                cnt_hist = np.bincount(codes, minlength=nb)
                grad_cum = np.cumsum(grad_hist)[:-1]
                cnt_cum = np.cumsum(cnt_hist)[:-1]
                n_left = cnt_cum
                n_right = count - cnt_cum
                valid = (n_left >= self.min_samples_leaf) & (n_right >= self.min_samples_leaf)
                if not valid.any():
                    continue
                g_left = grad_cum
                g_right = grad_sum - grad_cum
                gain = (
                    g_left * g_left / (n_left + self.lambda_reg)
                    + g_right * g_right / (n_right + self.lambda_reg)
                    - parent_score
                )
                gain = np.where(valid, gain, -np.inf)
                best_j = int(np.argmax(gain))
                if gain[best_j] > best_gain:
                    best_gain = float(gain[best_j])
                    best_feature = j
                    best_bin = best_j
            if best_feature < 0:
                continue
            mask = sub_binned[:, best_feature] <= best_bin
            node.feature = best_feature
            node.threshold_bin = best_bin
            node.left = len(nodes)
            nodes.append(TreeNode())
            node.right = len(nodes)
            nodes.append(TreeNode())
            stack.append((node.left, rows[mask], depth + 1))
            stack.append((node.right, rows[~mask], depth + 1))
        self.nodes_ = nodes
        return self

    def predict(self, binned):
        n = binned.shape[0]
        out = np.zeros(n, dtype=np.float64)
        node_of_row = np.zeros(n, dtype=np.int64)
        active = np.arange(n)
        while active.size:
            current = node_of_row[active]
            feats = np.array([self.nodes_[c].feature for c in current])
            is_leaf = feats < 0
            if is_leaf.any():
                out[active[is_leaf]] = [self.nodes_[c].value for c in current[is_leaf]]
            keep = ~is_leaf
            active = active[keep]
            if not active.size:
                break
            current = current[keep]
            feats = feats[keep]
            thresholds = np.array([self.nodes_[c].threshold_bin for c in current])
            lefts = np.array([self.nodes_[c].left for c in current])
            rights = np.array([self.nodes_[c].right for c in current])
            go_left = binned[active, feats] <= thresholds
            node_of_row[active] = np.where(go_left, lefts, rights)
        return out


class SeedGradientBoostingRegressor:
    """The seed GBDT loop, consuming randomness exactly like the optimized one."""

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 6,
        min_samples_leaf: int = 20,
        subsample: float = 1.0,
        max_bins: int = 64,
        lambda_reg: float = 1.0,
        *,
        seed: SeedLike = None,
    ) -> None:
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.subsample = float(subsample)
        self.max_bins = int(max_bins)
        self.lambda_reg = float(lambda_reg)
        self._rng = as_rng(seed)
        self.binner_ = None
        self.trees_ = None
        self.base_prediction_ = None
        self.train_losses_ = None

    def fit(self, X, y):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self.binner_ = FeatureBinner(max_bins=self.max_bins)
        binned = self.binner_.fit_transform(X)
        n_bins = [self.binner_.n_bins(j) for j in range(X.shape[1])]
        self.base_prediction_ = float(y.mean())
        prediction = np.full(y.shape[0], self.base_prediction_)
        trees = []
        losses = []
        n = y.shape[0]
        for _ in range(self.n_estimators):
            residuals = y - prediction
            losses.append(float(np.mean(residuals ** 2)))
            if self.subsample < 1.0:
                idx = self._rng.choice(n, size=max(2, int(round(self.subsample * n))), replace=False)
            else:
                idx = np.arange(n)
            tree = SeedRegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                lambda_reg=self.lambda_reg,
            )
            tree.fit(binned[idx], residuals[idx], n_bins)
            prediction = prediction + self.learning_rate * tree.predict(binned)
            trees.append(tree)
        self.trees_ = trees
        self.train_losses_ = losses
        return self

    def predict(self, X):
        X = np.asarray(X, dtype=np.float64)
        binned = self.binner_.transform(X)
        prediction = np.full(X.shape[0], self.base_prediction_)
        for tree in self.trees_:
            prediction = prediction + self.learning_rate * tree.predict(binned)
        return prediction


# ---------------------------------------------------------------------------
# 1b. Mixture: the seed per-point GMM — every Lloyd assignment and EM E-step
#     evaluated on the full column, no duplicate-value compression.
# ---------------------------------------------------------------------------

from repro.mixture.gmm import MixtureParameters, _LOG_2PI  # noqa: E402
from repro.utils.validation import check_array  # noqa: E402


def seed_kmeans_1d(values, k, *, n_iter=25, seed=None):
    """The seed ``kmeans_1d``: per-point argmin assignment every iteration."""
    arr = check_array(values, ndim=1, dtype=np.float64, allow_empty=False, name="values")
    uniques = np.unique(arr)
    k = int(min(k, uniques.size))
    centers = np.quantile(arr, np.linspace(0.0, 1.0, k)) if k > 1 else np.array([arr.mean()])
    centers = np.unique(centers)
    for _ in range(n_iter):
        assign = np.argmin(np.abs(arr[:, None] - centers[None, :]), axis=1)
        new_centers = np.array(
            [arr[assign == j].mean() if np.any(assign == j) else centers[j] for j in range(centers.size)]
        )
        if np.allclose(new_centers, centers):
            centers = new_centers
            break
        centers = new_centers
    return np.sort(centers)


class SeedGaussianMixture:
    """The seed EM loop: every E/M pass runs over all ``n`` rows."""

    def __init__(self, n_components=10, *, max_iter=100, tol=1e-4,
                 weight_threshold=5e-3, reg_var=1e-6, seed=None):
        self.n_components = int(n_components)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.weight_threshold = float(weight_threshold)
        self.reg_var = float(reg_var)
        self._rng = as_rng(seed)
        self.params_ = None
        self.log_likelihood_ = None
        self.n_iter_ = None

    def _log_prob_components(self, x, params):
        diff = x[:, None] - params.means[None, :]
        var = params.stds[None, :] ** 2
        log_pdf = -0.5 * (diff * diff / var + np.log(var) + _LOG_2PI)
        return log_pdf + np.log(params.weights[None, :])

    @staticmethod
    def _logsumexp(a, axis=1):
        amax = a.max(axis=axis, keepdims=True)
        return (amax + np.log(np.exp(a - amax).sum(axis=axis, keepdims=True))).squeeze(axis)

    def fit(self, values):
        x = check_array(values, ndim=1, dtype=np.float64, allow_empty=False, name="values")
        n = x.size
        k = min(self.n_components, np.unique(x).size)
        means = seed_kmeans_1d(x, k)
        k = means.size
        global_std = max(float(x.std()), np.sqrt(self.reg_var))
        stds = np.full(k, global_std if k == 1 else max(global_std / k, np.sqrt(self.reg_var)))
        weights = np.full(k, 1.0 / k)
        params = MixtureParameters(weights, means, stds)

        prev_ll = -np.inf
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            log_joint = self._log_prob_components(x, params)
            log_norm = self._logsumexp(log_joint, axis=1)
            resp = np.exp(log_joint - log_norm[:, None])
            ll = float(log_norm.mean())

            nk = resp.sum(axis=0) + 1e-12
            weights = nk / n
            means = (resp * x[:, None]).sum(axis=0) / nk
            var = (resp * (x[:, None] - means[None, :]) ** 2).sum(axis=0) / nk + self.reg_var
            stds = np.sqrt(var)
            params = MixtureParameters(weights, means, stds)

            if np.isfinite(prev_ll) and abs(ll - prev_ll) < self.tol * max(abs(prev_ll), 1.0):
                prev_ll = ll
                break
            prev_ll = ll

        keep = params.weights >= self.weight_threshold
        if not keep.any():
            keep = params.weights == params.weights.max()
        params = MixtureParameters(
            params.weights[keep] / params.weights[keep].sum(),
            params.means[keep],
            params.stds[keep],
        )
        self.params_ = params
        self.log_likelihood_ = prev_ll
        self.n_iter_ = n_iter
        return self

    @property
    def n_active_components(self):
        return self.params_.n_components

    def responsibilities(self, values):
        x = np.asarray(values, dtype=np.float64)
        log_joint = self._log_prob_components(x, self.params_)
        log_norm = self._logsumexp(log_joint, axis=1)
        return np.exp(log_joint - log_norm[:, None])

    def sample_component(self, values, rng=None):
        rng = rng or self._rng
        resp = self.responsibilities(values)
        cum = np.cumsum(resp, axis=1)
        u = rng.random((resp.shape[0], 1))
        return (u < cum).argmax(axis=1)

    def normalize(self, values, components):
        x = np.asarray(values, dtype=np.float64)
        c = np.asarray(components, dtype=np.int64)
        alpha = (x - self.params_.means[c]) / (4.0 * self.params_.stds[c])
        return np.clip(alpha, -1.0, 1.0)

    def denormalize(self, alphas, components):
        a = np.asarray(alphas, dtype=np.float64)
        c = np.asarray(components, dtype=np.int64)
        return a * 4.0 * self.params_.stds[c] + self.params_.means[c]


# ---------------------------------------------------------------------------
# 2. Metrics: per-pair association matrix, re-encoding columns per pair.
# ---------------------------------------------------------------------------


def seed_association_matrix(
    table: Table, columns: Optional[Sequence[str]] = None
) -> Tuple[np.ndarray, Sequence[str]]:
    """The seed O(d^2) double loop over column pairs."""
    cols = list(columns) if columns is not None else table.columns
    k = len(cols)
    matrix = np.eye(k)
    kinds = {c: table.schema.kind_of(c) for c in cols}
    for i, ci in enumerate(cols):
        for j, cj in enumerate(cols):
            if i == j:
                continue
            ki, kj = kinds[ci], kinds[cj]
            if ki is ColumnKind.NUMERICAL and kj is ColumnKind.NUMERICAL:
                value = abs(pearson_correlation(table[ci], table[cj]))
            elif ki is ColumnKind.CATEGORICAL and kj is ColumnKind.CATEGORICAL:
                value = theils_u(table[ci], table[cj])
            elif ki is ColumnKind.CATEGORICAL:
                value = correlation_ratio(table[ci], table[cj])
            else:
                value = correlation_ratio(table[cj], table[ci])
            matrix[i, j] = value
    return matrix, cols


# ---------------------------------------------------------------------------
# 3. Panda: row-by-row dataset-name parsing in the filtering pipeline.
# ---------------------------------------------------------------------------


class SeedFilteringPipeline:
    """The seed pipeline: ``parse_dataset_name`` called once per row."""

    def __init__(self, sites):
        self.sites = sites

    def run(self, raw: Table):
        from repro.panda.pipeline import FilterReport

        report = FilterReport(gross_records=len(raw))
        analysis = raw.mask(np.asarray(raw["tasktype"]) == "analysis")
        report.add("user analysis jobs", len(raw), len(analysis))
        datatypes = np.array(
            [parse_dataset_name(name)["datatype"] for name in analysis["inputdatasetname"]]
        )
        daod_mask = np.char.startswith(datatypes.astype(str), "DAOD")
        daod = analysis.mask(daod_mask)
        report.add("DAOD input datasets", len(analysis), len(daod))
        final_mask = np.isin(np.asarray(daod["jobstatus"]), np.asarray(JOB_STATUSES))
        final = daod.mask(final_mask)
        report.add("final job status", len(daod), len(final))
        table = self.derive_features(final)
        report.add("feature derivation", len(final), len(table))
        return table, report

    def derive_features(self, records: Table) -> Table:
        parsed = [parse_dataset_name(name) for name in records["inputdatasetname"]]
        project = np.array([p["project"] for p in parsed], dtype=object).astype(str)
        prodstep = np.array([p["prodstep"] for p in parsed], dtype=object).astype(str)
        datatype = np.array([p["datatype"] for p in parsed], dtype=object).astype(str)
        hs23 = self.sites.hs23_of(records["computingsite"])
        workload = hs23_workload(records["corecount"], records["cputime_hours"], hs23)
        data = {
            "workload": workload,
            "creationtime": records["creationtime"],
            "ninputdatafiles": records["ninputdatafiles"],
            "inputfilebytes": records["inputfilebytes"],
            "jobstatus": records["jobstatus"],
            "computingsite": records["computingsite"],
            "project": project,
            "prodstep": prodstep,
            "datatype": datatype,
        }
        return Table(data, PANDA_SCHEMA)


# ---------------------------------------------------------------------------
# 4. Scheduler: full backlog rescan (broker call per queued job) per event.
# ---------------------------------------------------------------------------

_HOURS_PER_DAY = 24.0


class SeedGridSimulator:
    """The seed event loop: every event rescans the whole FIFO backlog."""

    def __init__(self, cluster, broker) -> None:
        self.cluster = cluster
        self.broker = broker

    def run(self, jobs: Sequence[SimulatedJob], *, max_backlog: Optional[int] = None):
        from repro.scheduler.simulator import SimulationResult

        jobs = list(jobs)
        queue = EventQueue()
        for job in jobs:
            queue.push(Event(job.arrival_time, EventType.JOB_ARRIVAL, job))
        backlog: List[SimulatedJob] = []
        start_times: Dict[int, float] = {}
        finish_times: Dict[int, float] = {}
        runtimes: Dict[int, float] = {}
        site_of_job: Dict[int, str] = {}
        now = 0.0

        def try_dispatch(time: float) -> None:
            still_waiting: List[SimulatedJob] = []
            for job in backlog:
                site_name = self.broker.select_site(job, self.cluster)
                if site_name is None:
                    still_waiting.append(job)
                    continue
                state = self.cluster[site_name]
                state.allocate(job.cores, time)
                runtime_hours = job.runtime_at(state.site.hs23_per_core)
                start_times[job.job_id] = time
                runtimes[job.job_id] = runtime_hours
                site_of_job[job.job_id] = site_name
                queue.push(
                    Event(time + runtime_hours / _HOURS_PER_DAY, EventType.JOB_FINISH, job)
                )
            backlog[:] = still_waiting

        while queue:
            event = queue.pop()
            now = event.time
            job = event.payload
            if event.kind is EventType.JOB_ARRIVAL:
                backlog.append(job)
                if max_backlog is not None and len(backlog) > max_backlog:
                    raise RuntimeError(
                        f"backlog exceeded {max_backlog} jobs; the cluster is undersized"
                    )
                try_dispatch(now)
            elif event.kind is EventType.JOB_FINISH:
                site_name = site_of_job[job.job_id]
                state = self.cluster[site_name]
                state.release(job.cores, now)
                state.completed_jobs += 1
                finish_times[job.job_id] = now
                try_dispatch(now)

        horizon = max(now, 1e-9)
        for state in self.cluster.sites.values():
            state.advance_to(horizon)
        completed = sorted(finish_times.keys())
        jobs_by_id = {job.job_id: job for job in jobs}
        wait_hours = np.array(
            [(start_times[j] - jobs_by_id[j].arrival_time) * _HOURS_PER_DAY for j in completed]
        )
        runtime_hours = np.array([runtimes[j] for j in completed]) if completed else np.empty(0)
        return SimulationResult(
            broker=self.broker.name,
            n_jobs=len(jobs),
            n_completed=len(completed),
            makespan_days=float(horizon - min((j.arrival_time for j in jobs), default=0.0)),
            mean_wait_hours=float(wait_hours.mean()) if wait_hours.size else 0.0,
            p95_wait_hours=float(np.percentile(wait_hours, 95)) if wait_hours.size else 0.0,
            mean_runtime_hours=float(runtime_hours.mean()) if runtime_hours.size else 0.0,
            utilization_by_site=self.cluster.utilization_by_site(horizon),
            wait_times_hours=wait_hours,
        )


# ---------------------------------------------------------------------------
# 5. NN: the pre-fusion optimisers (fresh arrays per parameter per step).
# ---------------------------------------------------------------------------

from repro.models.ctabgan import CTABGANPlusSurrogate, _ModeSpecificEncoder  # noqa: E402
from repro.models.tabddpm.denoiser import MLPDenoiser, timestep_embedding  # noqa: E402
from repro.models.tabddpm.gaussian import GaussianDiffusion  # noqa: E402
from repro.models.tabddpm.model import TabDDPMSurrogate  # noqa: E402
from repro.models.tabddpm.multinomial import MultinomialDiffusion  # noqa: E402
from repro.models.tabddpm.schedule import DiffusionSchedule  # noqa: E402
from repro.models.tvae import TVAESurrogate  # noqa: E402
from repro.nn import (  # noqa: E402
    MLP,
    Tensor,
    bce_with_logits,
    clip_grad_norm,
    cross_entropy_logits,
    gaussian_kl,
    mse_loss,
    no_grad,
)
from repro.nn.optim import CosineSchedule, Optimizer  # noqa: E402
from repro.tabular.encoding import OneHotEncoder  # noqa: E402
from repro.tabular.mixed import MixedEncoder  # noqa: E402
from repro.tabular.schema import ColumnKind  # noqa: E402
from repro.utils.rng import derive_seed  # noqa: E402


class SeedSGD(Optimizer):
    """The seed SGD step: a fresh velocity/update array per parameter."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [None] * len(self.parameters)

    def step(self) -> None:
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            if self.momentum > 0:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + p.grad
                update = self._velocity[i]
            else:
                update = p.grad
            p.data -= self.lr * update


class SeedAdam(Optimizer):
    """The seed Adam step: ~7 temporary arrays per parameter per step."""

    def __init__(self, parameters, lr: float = 2e-4, betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [None] * len(self.parameters)
        self._v = [None] * len(self.parameters)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self._m[i] is None:
                self._m[i] = np.zeros_like(p.data)
                self._v[i] = np.zeros_like(p.data)
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            if self.weight_decay > 0:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


# ---------------------------------------------------------------------------
# 6. Models: the seed training loops — unfused Linear+activation autograd,
#    per-block Tensor losses, per-block diffusion sampling, SeedAdam steps.
#    Each subclass overrides only fit()/network construction, so sampling and
#    the public API stay those of the live models.
# ---------------------------------------------------------------------------


class SeedTVAESurrogate(TVAESurrogate):
    """TVAE trained through the seed (unfused, per-block) step."""

    def _build(self, n_features: int) -> None:
        cfg = self.config
        net_seed = derive_seed(self._seed if isinstance(self._seed, int) else None, "tvae")
        self._encoder_net = MLP(
            n_features, list(cfg.hidden_dims), 2 * cfg.latent_dim,
            activation="relu", fused=False, seed=net_seed,
        )
        self._decoder_net = MLP(
            cfg.latent_dim, list(cfg.hidden_dims), n_features,
            activation="relu", fused=False, seed=net_seed + 1,
        )

    def _reconstruction_loss(self, decoded: Tensor, batch: np.ndarray) -> Tensor:
        encoded = self._encoder_data
        num_idx = self._numerical_indices
        loss = Tensor(0.0)
        if num_idx.size:
            loss = loss + mse_loss(decoded[:, num_idx], batch[:, num_idx]) * float(num_idx.size)
        for block in encoded.blocks_:
            if block.kind.value != "categorical":
                continue
            logits = decoded[:, block.start : block.stop]
            target = batch[:, block.start : block.stop]
            loss = loss + cross_entropy_logits(logits, target)
        return loss

    def fit(self, table) -> "SeedTVAESurrogate":
        self._mark_fitted(table)
        cfg = self.config
        rng = as_rng(derive_seed(self._seed if isinstance(self._seed, int) else None, "fit"))

        self._encoder_data = MixedEncoder(
            numerical_transform_factory=self._numerical_transform_factory
        )
        encoded = self._encoder_data.fit_transform(table)
        X = encoded.values
        self._numerical_indices = encoded.numerical_indices
        self._categorical_spans = [
            (b.start, b.stop) for b in self._encoder_data.blocks_
            if b.kind.value == "categorical"
        ]
        self._build(X.shape[1])

        params = self._encoder_net.parameters() + self._decoder_net.parameters()
        optimizer = SeedAdam(params, lr=cfg.learning_rate)
        n_batches_per_epoch = max(1, X.shape[0] // cfg.batch_size)
        schedule = CosineSchedule(optimizer, total_steps=cfg.epochs * n_batches_per_epoch)

        losses = []
        for epoch in range(cfg.epochs):
            permutation = rng.permutation(X.shape[0])
            epoch_loss = 0.0
            for b in range(n_batches_per_epoch):
                idx = permutation[b * cfg.batch_size : (b + 1) * cfg.batch_size]
                if idx.size < 2:
                    continue
                batch = X[idx]
                batch_t = Tensor(batch)

                stats = self._encoder_net(batch_t)
                mu = stats[:, : cfg.latent_dim]
                logvar = stats[:, cfg.latent_dim :].clip(-8.0, 8.0)
                noise = Tensor(rng.standard_normal((idx.size, cfg.latent_dim)))
                z = mu + (logvar * 0.5).exp() * noise
                decoded = self._decoder_net(z)

                recon = self._reconstruction_loss(decoded, batch)
                kl = gaussian_kl(mu, logvar)
                loss = recon + cfg.kl_weight * kl

                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(params, cfg.grad_clip)
                optimizer.step()
                schedule.step()
                epoch_loss += loss.item()
            losses.append(epoch_loss / n_batches_per_epoch)
        self.loss_history_ = losses
        return self


class SeedModeSpecificEncoder(_ModeSpecificEncoder):
    """The seed mode-specific encoder: a full per-column loop in ``fit``,
    ``transform`` and ``inverse_transform``, with the seed (uncompressed)
    Gaussian mixtures underneath."""

    def fit(self, table):
        cursor = 0
        for col in table.schema:
            if col.is_numerical:
                gmm = SeedGaussianMixture(
                    n_components=self.gmm_components,
                    seed=derive_seed(self.seed, "gmm", col.name),
                )
                gmm.fit(table[col.name])
                self.numerical_gmms[col.name] = gmm
                width = 1 + gmm.n_active_components
            else:
                enc = OneHotEncoder()
                enc.fit(table[col.name])
                self.categorical_encoders[col.name] = enc
                width = enc.n_categories
            self.layout.append((col.name, col.kind.value, cursor, width))
            cursor += width
        self.n_features = cursor
        return self

    def transform(self, table, rng):
        parts = []
        for name, kind, _start, _width in self.layout:
            if kind == ColumnKind.NUMERICAL.value:
                gmm = self.numerical_gmms[name]
                values = np.asarray(table[name], dtype=np.float64)
                comp = gmm.sample_component(values, rng)
                alpha = gmm.normalize(values, comp)
                onehot = np.zeros((values.shape[0], gmm.n_active_components))
                onehot[np.arange(values.shape[0]), comp] = 1.0
                parts.append(np.concatenate([alpha[:, None], onehot], axis=1))
            else:
                parts.append(self.categorical_encoders[name].transform(table[name]))
        return np.concatenate(parts, axis=1)

    def inverse_transform(self, matrix, schema, rng):
        data = {}
        for name, kind, start, width in self.layout:
            chunk = matrix[:, start : start + width]
            if kind == ColumnKind.NUMERICAL.value:
                gmm = self.numerical_gmms[name]
                alpha = np.clip(chunk[:, 0], -1.0, 1.0)
                comp = np.argmax(chunk[:, 1:], axis=1)
                data[name] = gmm.denormalize(alpha, comp)
            else:
                data[name] = self.categorical_encoders[name].inverse_transform(chunk)
        return Table(data, schema)


class SeedConditionSampler:
    """The seed training-by-sampling loop: ``rng.choice`` per column plus a
    Python loop drawing one matching real row per batch element."""

    def __init__(self, table, layout, encoders):
        self.layout = layout
        self.total_width = sum(width for _, _, width in layout)
        self.offsets = np.cumsum([0] + [width for _, _, width in layout])[:-1]
        self.category_probs: List[np.ndarray] = []
        self.category_rows: List[List[np.ndarray]] = []
        for (name, _start, width) in layout:
            codes = encoders[name].transform_codes(table[name])
            counts = np.bincount(codes, minlength=width).astype(np.float64)
            logfreq = np.log1p(counts)
            probs = logfreq / logfreq.sum() if logfreq.sum() > 0 else np.full(width, 1.0 / width)
            self.category_probs.append(probs)
            self.category_rows.append([np.nonzero(codes == c)[0] for c in range(width)])

    def sample(self, batch_size: int, rng: np.random.Generator):
        n_columns = len(self.layout)
        cond = np.zeros((batch_size, self.total_width))
        col_choice = rng.integers(0, n_columns, size=batch_size)
        cat_choice = np.empty(batch_size, dtype=np.int64)
        row_choice = np.empty(batch_size, dtype=np.int64)
        for j in range(n_columns):
            mask = col_choice == j
            count = int(mask.sum())
            if count == 0:
                continue
            cats = rng.choice(self.category_probs[j].size, size=count, p=self.category_probs[j])
            cat_choice[mask] = cats
            cond[np.nonzero(mask)[0], self.offsets[j] + cats] = 1.0
            rows = np.empty(count, dtype=np.int64)
            for i, cat in enumerate(cats):
                pool = self.category_rows[j][cat]
                rows[i] = pool[rng.integers(0, pool.size)] if pool.size else rng.integers(0, 1)
            row_choice[mask] = rows
        return cond, col_choice, cat_choice, row_choice


class SeedCTABGANSurrogate(CTABGANPlusSurrogate):
    """CTABGAN+ trained through the seed (unfused, per-block) step."""

    def _activate_generator_output(self, raw: Tensor) -> Tensor:
        parts = []
        for name, kind, start, width in self._encoder.layout:
            if kind == ColumnKind.NUMERICAL.value:
                parts.append(raw[:, start : start + 1].tanh())
                parts.append(raw[:, start + 1 : start + width].softmax(axis=-1))
            else:
                parts.append(raw[:, start : start + width].softmax(axis=-1))
        return Tensor.concat(parts, axis=1)

    def _condition_loss(self, raw: Tensor, col_choice: np.ndarray, cat_choice: np.ndarray) -> Tensor:
        layout = self._encoder.categorical_layout
        loss = Tensor(0.0)
        n_terms = 0
        for j, (name, start, width) in enumerate(layout):
            mask = col_choice == j
            if not mask.any():
                continue
            rows = np.nonzero(mask)[0]
            logits = raw[rows][:, start : start + width]
            loss = loss + cross_entropy_logits(logits, cat_choice[mask])
            n_terms += 1
        return loss * (1.0 / max(n_terms, 1))

    def fit(self, table) -> "SeedCTABGANSurrogate":
        self._mark_fitted(table)
        cfg = self.config
        seed_int = self._seed if isinstance(self._seed, int) else None
        rng = as_rng(derive_seed(seed_int, "fit"))

        self._encoder = SeedModeSpecificEncoder(cfg.gmm_components, seed_int).fit(table)
        encoded = self._encoder.transform(table, rng)
        self._activation_layout = self._output_layout()
        cat_layout = self._encoder.categorical_layout
        self._condition = SeedConditionSampler(table, cat_layout, self._encoder.categorical_encoders)

        data_dim = self._encoder.n_features
        cond_dim = self._condition.total_width
        self._generator = MLP(
            cfg.noise_dim + cond_dim, list(cfg.generator_dims), data_dim,
            activation="relu", fused=False, seed=derive_seed(seed_int, "generator"),
        )
        self._discriminator = MLP(
            data_dim + cond_dim, list(cfg.discriminator_dims), 1,
            activation="leaky_relu", dropout=0.25, fused=False,
            seed=derive_seed(seed_int, "discriminator"),
        )

        g_params = self._generator.parameters()
        d_params = self._discriminator.parameters()
        g_optimizer = SeedAdam(g_params, lr=cfg.learning_rate, betas=(0.5, 0.9))
        d_optimizer = SeedAdam(d_params, lr=cfg.learning_rate, betas=(0.5, 0.9))

        n = encoded.shape[0]
        steps_per_epoch = max(1, n // cfg.batch_size)
        history = []
        ones = None
        zeros = None
        for epoch in range(cfg.epochs):
            d_loss_value = 0.0
            g_loss_value = 0.0
            for _ in range(steps_per_epoch):
                for _ in range(cfg.discriminator_steps):
                    cond, col_c, cat_c, row_c = self._condition.sample(cfg.batch_size, rng)
                    real = encoded[row_c]
                    noise = rng.standard_normal((cfg.batch_size, cfg.noise_dim))
                    with no_grad():
                        fake_raw = self._generator(Tensor(np.concatenate([noise, cond], axis=1)))
                        fake = self._activate_generator_output(fake_raw).numpy()
                    real_in = Tensor(np.concatenate([real, cond], axis=1))
                    fake_in = Tensor(np.concatenate([fake, cond], axis=1))
                    real_logit = self._discriminator(real_in)
                    fake_logit = self._discriminator(fake_in)
                    if ones is None or ones.shape[0] != cfg.batch_size:
                        ones = np.ones((cfg.batch_size, 1))
                        zeros = np.zeros((cfg.batch_size, 1))
                    d_loss = bce_with_logits(real_logit, ones) + bce_with_logits(fake_logit, zeros)
                    d_optimizer.zero_grad()
                    d_loss.backward()
                    clip_grad_norm(d_params, cfg.grad_clip)
                    d_optimizer.step()
                    d_loss_value += d_loss.item()

                cond, col_c, cat_c, _rows = self._condition.sample(cfg.batch_size, rng)
                noise = rng.standard_normal((cfg.batch_size, cfg.noise_dim))
                fake_raw = self._generator(Tensor(np.concatenate([noise, cond], axis=1)))
                fake = self._activate_generator_output(fake_raw)
                fake_logit = self._discriminator(Tensor.concat([fake, Tensor(cond)], axis=1))
                adv_loss = bce_with_logits(fake_logit, np.ones((cfg.batch_size, 1)))
                cond_loss = self._condition_loss(fake_raw, col_c, cat_c)
                g_loss = adv_loss + cond_loss
                g_optimizer.zero_grad()
                g_loss.backward()
                clip_grad_norm(g_params, cfg.grad_clip)
                g_optimizer.step()
                g_loss_value += g_loss.item()

            history.append(
                {
                    "epoch": epoch + 1,
                    "d_loss": d_loss_value / (steps_per_epoch * cfg.discriminator_steps),
                    "g_loss": g_loss_value / steps_per_epoch,
                }
            )
        self.loss_history_ = history
        return self

    def sample(self, n, *, seed=None):
        """The seed sampling loop: per-batch activation, one hardening pass
        per block, per-column inverse transform."""
        self._require_fitted()
        cfg = self.config
        rng = as_rng(seed)
        self._generator.eval()
        outputs = []
        remaining = n
        with no_grad():
            while remaining > 0:
                batch = min(cfg.batch_size, remaining)
                cond, _, _, _ = self._condition.sample(batch, rng)
                noise = rng.standard_normal((batch, cfg.noise_dim))
                raw = self._generator(Tensor(np.concatenate([noise, cond], axis=1)))
                activated = self._activate_generator_output(raw).numpy()
                outputs.append(activated)
                remaining -= batch
        self._generator.train()
        matrix = np.concatenate(outputs, axis=0)
        hardened = matrix.copy()
        for name, kind, start, width in self._encoder.layout:
            block_start = start + 1 if kind == ColumnKind.NUMERICAL.value else start
            block_width = width - 1 if kind == ColumnKind.NUMERICAL.value else width
            if block_width <= 0:
                continue
            probs = matrix[:, block_start : block_start + block_width]
            probs = probs / np.maximum(probs.sum(axis=1, keepdims=True), 1e-12)
            cumulative = np.cumsum(probs, axis=1)
            draws = rng.random((matrix.shape[0], 1))
            chosen = (draws < cumulative).argmax(axis=1)
            onehot = np.zeros_like(probs)
            onehot[np.arange(matrix.shape[0]), chosen] = 1.0
            hardened[:, block_start : block_start + block_width] = onehot
        return self._encoder.inverse_transform(hardened, self.schema_, rng)


class SeedMLPDenoiser(MLPDenoiser):
    """The seed denoiser forward: per-row timestep embedding + concatenation
    on every call (no shared-timestep inference fast path)."""

    def forward(self, x_t, t):
        emb = timestep_embedding(t, self.time_embedding_dim)
        inputs = Tensor.concat([x_t, Tensor(emb)], axis=1)
        return self.net(inputs)


class SeedTabDDPMSurrogate(TabDDPMSurrogate):
    """TabDDPM trained through the seed (per-block diffusion/loss) step."""

    def _build(self, n_features: int) -> None:
        cfg = self.config
        if cfg.schedule == "cosine":
            schedule = DiffusionSchedule.cosine(cfg.n_timesteps)
        else:
            schedule = DiffusionSchedule.linear(cfg.n_timesteps)
        self._gaussian = GaussianDiffusion(schedule)
        self._multinomials = [
            (block, MultinomialDiffusion(block.width, schedule))
            for block in self._encoder.blocks_
            if block.kind.value == "categorical"
        ]
        self._categorical_spans = [(b.start, b.stop) for b, _ in self._multinomials]
        self._denoiser = SeedMLPDenoiser(
            n_features,
            hidden_dims=list(cfg.hidden_dims),
            time_embedding_dim=cfg.time_embedding_dim,
            fused=False,
            seed=derive_seed(self._seed if isinstance(self._seed, int) else None, "denoiser"),
        )

    def fit(self, table) -> "SeedTabDDPMSurrogate":
        self._mark_fitted(table)
        cfg = self.config
        rng = as_rng(derive_seed(self._seed if isinstance(self._seed, int) else None, "fit"))

        self._encoder = MixedEncoder()
        encoded = self._encoder.fit_transform(table)
        X = encoded.values
        self._numerical_indices = encoded.numerical_indices
        self._build(X.shape[1])

        params = self._denoiser.parameters()
        optimizer = SeedAdam(params, lr=cfg.learning_rate)
        steps_per_epoch = max(1, X.shape[0] // cfg.batch_size)
        lr_schedule = CosineSchedule(optimizer, total_steps=cfg.epochs * steps_per_epoch)

        num_idx = self._numerical_indices
        losses = []
        for epoch in range(cfg.epochs):
            permutation = rng.permutation(X.shape[0])
            epoch_loss = 0.0
            for b in range(steps_per_epoch):
                idx = permutation[b * cfg.batch_size : (b + 1) * cfg.batch_size]
                if idx.size < 2:
                    continue
                batch = X[idx]
                t = rng.integers(0, cfg.n_timesteps, size=idx.size)

                noisy = np.empty_like(batch)
                noise = rng.standard_normal((idx.size, num_idx.size)) if num_idx.size else None
                if num_idx.size:
                    noisy[:, num_idx] = self._gaussian.q_sample(batch[:, num_idx], t, noise)
                for block, diffusion in self._multinomials:
                    noisy[:, block.slice] = diffusion.q_sample(batch[:, block.slice], t, rng)

                prediction = self._denoiser(Tensor(noisy), t)

                loss = Tensor(0.0)
                if num_idx.size:
                    loss = loss + mse_loss(prediction[:, num_idx], noise) * float(num_idx.size)
                for block, _diffusion in self._multinomials:
                    logits = prediction[:, block.start : block.stop]
                    loss = loss + cross_entropy_logits(logits, batch[:, block.slice])

                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(params, cfg.grad_clip)
                optimizer.step()
                lr_schedule.step()
                epoch_loss += loss.item()
            losses.append(epoch_loss / steps_per_epoch)
        self.loss_history_ = losses
        return self

    def sample(self, n, *, seed=None):
        """The seed reverse chain: one softmax + posterior draw per block per step."""
        self._require_fitted()
        cfg = self.config
        rng = as_rng(seed)
        self._denoiser.eval()

        num_idx = self._numerical_indices
        n_features = self._encoder.n_features
        state = np.zeros((n, n_features))
        if num_idx.size:
            state[:, num_idx] = rng.standard_normal((n, num_idx.size))
        for block, diffusion in self._multinomials:
            uniform = np.full((n, block.width), 1.0 / block.width)
            state[:, block.slice] = MultinomialDiffusion._sample_onehot(uniform, rng)

        for t in reversed(range(cfg.n_timesteps)):
            t_vector = np.full(n, t, dtype=np.int64)
            prediction = self._denoise_batch(state, t_vector)
            if num_idx.size:
                eps = prediction[:, num_idx]
                state[:, num_idx] = self._gaussian.p_sample_step(state[:, num_idx], t, eps, rng)
            for block, diffusion in self._multinomials:
                logits = prediction[:, block.start : block.stop]
                logits = logits - logits.max(axis=1, keepdims=True)
                x0_probs = np.exp(logits)
                x0_probs /= np.maximum(x0_probs.sum(axis=1, keepdims=True), 1e-12)
                state[:, block.slice] = diffusion.p_sample_step(state[:, block.slice], t, x0_probs, rng)

        self._denoiser.train()
        return self._encoder.inverse_transform(state)


# ---------------------------------------------------------------------------
# 7. Scheduler: the seed O(sites) brokerage — a Python scan over every site
#    per placement — and the watermark simulator that recomputed its
#    free-core maximum with a full pass after every allocation.
# ---------------------------------------------------------------------------


class SeedScanLeastLoadedBroker:
    """The seed least-loaded policy: linear scan of all sites per call."""

    name = "least_loaded"

    def select_site(self, job, cluster):
        best_name = None
        best_key = (-1.0, -1.0)
        for state in cluster.sites.values():
            if state.free_cores < job.cores:
                continue
            key = (float(state.free_cores), state.site.hs23_per_core)
            if key > best_key:
                best_key = key
                best_name = state.site.name
        return best_name


class SeedScanDataLocalityBroker:
    """The seed data-locality policy with the linear-scan fallback.

    Replica placement reuses the live stable per-project hash so that the
    comparison against the indexed broker isolates the scan strategy.
    """

    name = "data_locality"

    def __init__(self, cluster, *, replicas_per_project: int = 3, seed: SeedLike = None):
        self._rng = as_rng(seed)
        self._fallback = SeedScanLeastLoadedBroker()
        self.replicas_per_project = int(replicas_per_project)
        self._hosting = {}
        self._site_names = list(cluster.sites.keys())

    def _hosts_of(self, project: str):
        if project not in self._hosting:
            rng = np.random.default_rng(derive_seed(None, "replica", project))
            k = min(self.replicas_per_project, len(self._site_names))
            chosen = rng.choice(len(self._site_names), size=k, replace=False)
            self._hosting[project] = [self._site_names[i] for i in chosen]
        return self._hosting[project]

    def select_site(self, job, cluster):
        hosts = self._hosts_of(job.project)
        candidates = [cluster[name] for name in hosts if cluster[name].free_cores >= job.cores]
        if candidates:
            best = max(candidates, key=lambda s: (s.free_cores, s.site.hs23_per_core))
            return best.site.name
        return self._fallback.select_site(job, cluster)


class SeedWatermarkGridSimulator:
    """The seed watermark event loop: free_max recomputed by an O(sites) pass."""

    def __init__(self, cluster, broker) -> None:
        self.cluster = cluster
        self.broker = broker

    def run(self, jobs: Sequence[SimulatedJob], *, max_backlog: Optional[int] = None):
        from repro.scheduler.simulator import SimulationResult

        jobs = list(jobs)
        queue = EventQueue()
        for job in jobs:
            queue.push(Event(job.arrival_time, EventType.JOB_ARRIVAL, job))

        backlog: List[SimulatedJob] = []
        start_times: Dict[int, float] = {}
        finish_times: Dict[int, float] = {}
        runtimes: Dict[int, float] = {}
        site_of_job: Dict[int, str] = {}
        now = 0.0
        site_states = list(self.cluster.sites.values())
        free_max = max((s.free_cores for s in site_states), default=0)
        backlog_min_cores = float("inf")

        def try_dispatch(time: float) -> None:
            nonlocal free_max, backlog_min_cores
            if free_max < backlog_min_cores:
                return
            still_waiting: List[SimulatedJob] = []
            for pos, job in enumerate(backlog):
                if free_max < backlog_min_cores:
                    still_waiting.extend(backlog[pos:])
                    break
                if job.cores > free_max:
                    still_waiting.append(job)
                    continue
                site_name = self.broker.select_site(job, self.cluster)
                if site_name is None:
                    still_waiting.append(job)
                    continue
                state = self.cluster[site_name]
                state.allocate(job.cores, time)
                free_max = max(s.free_cores for s in site_states)
                runtime_hours = job.runtime_at(state.site.hs23_per_core)
                start_times[job.job_id] = time
                runtimes[job.job_id] = runtime_hours
                site_of_job[job.job_id] = site_name
                queue.push(
                    Event(time + runtime_hours / _HOURS_PER_DAY, EventType.JOB_FINISH, job)
                )
            backlog[:] = still_waiting
            if not backlog:
                backlog_min_cores = float("inf")

        while queue:
            event = queue.pop()
            now = event.time
            job = event.payload
            if event.kind is EventType.JOB_ARRIVAL:
                backlog.append(job)
                backlog_min_cores = min(backlog_min_cores, job.cores)
                if max_backlog is not None and len(backlog) > max_backlog:
                    raise RuntimeError(
                        f"backlog exceeded {max_backlog} jobs; the cluster is undersized"
                    )
                try_dispatch(now)
            elif event.kind is EventType.JOB_FINISH:
                site_name = site_of_job[job.job_id]
                state = self.cluster[site_name]
                state.release(job.cores, now)
                state.completed_jobs += 1
                free_max = max(free_max, state.free_cores)
                finish_times[job.job_id] = now
                try_dispatch(now)

        horizon = max(now, 1e-9)
        for state in self.cluster.sites.values():
            state.advance_to(horizon)
        completed = sorted(finish_times.keys())
        jobs_by_id = {job.job_id: job for job in jobs}
        wait_hours = np.array(
            [(start_times[j] - jobs_by_id[j].arrival_time) * _HOURS_PER_DAY for j in completed]
        )
        runtime_hours = np.array([runtimes[j] for j in completed]) if completed else np.empty(0)
        return SimulationResult(
            broker=self.broker.name,
            n_jobs=len(jobs),
            n_completed=len(completed),
            makespan_days=float(horizon - min((j.arrival_time for j in jobs), default=0.0)),
            mean_wait_hours=float(wait_hours.mean()) if wait_hours.size else 0.0,
            p95_wait_hours=float(np.percentile(wait_hours, 95)) if wait_hours.size else 0.0,
            mean_runtime_hours=float(runtime_hours.mean()) if runtime_hours.size else 0.0,
            utilization_by_site=self.cluster.utilization_by_site(horizon),
            wait_times_hours=wait_hours,
        )
