#!/usr/bin/env python
"""Time the optimized hot-path kernels against their seed baselines.

Each kernel — GBDT fit, association matrix, filtering-pipeline funnel, grid
simulator, the three deep-model training stacks (TVAE, CTABGAN+, TabDDPM),
the broker dispatch path, the per-column Gaussian-mixture fit, the two
deep-model sampling chains (TabDDPM reverse diffusion, CTABGAN+ generation)
and the two columnar data-plane kernels (dictionary-coded label encoding,
the shared-memory chunk transport)
— is timed at two problem sizes in both the seed implementation
(``seed_baselines.py``) and the optimized one shipped in ``src/repro``, and
the results (plus per-kernel speedups) are written to
``BENCH_hotpaths.json``.  The committed copy of that file is the perf
baseline that ``check_regression.py`` guards.

The three relaxed serving-mode kernels (``sample_tabddpm_fast``,
``sample_ctabgan_fast``, ``sample_tvae_fast``) are baselined against the
bit-exact default sampling path instead of a seed port (see
:func:`bench_fast_sampling`): their recorded speedup *is* the serving-mode
contract.

The training benchmarks run on a wide mixed table (2 numerical + 96
low-cardinality categorical columns): that shape stresses exactly what the
fused training stack removes — per-block autograd slices, per-feature
diffusion loops and per-row condition sampling — while the trained
parameters stay bit-identical to the seed implementation
(``tests/test_train_equivalence.py`` proves it).

Run with::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py [--output PATH] [--quick]
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from seed_baselines import (  # noqa: E402
    SeedCTABGANSurrogate,
    SeedFilteringPipeline,
    SeedGaussianMixture,
    SeedGradientBoostingRegressor,
    SeedGridSimulator,
    SeedScanLeastLoadedBroker,
    SeedTVAESurrogate,
    SeedTabDDPMSurrogate,
    SeedWatermarkGridSimulator,
    seed_association_matrix,
)

from repro.boosting.gbdt import GradientBoostingRegressor  # noqa: E402
from repro.metrics.correlation import association_matrix  # noqa: E402
from repro.mixture.gmm import GaussianMixture  # noqa: E402
from repro.models.ctabgan import CTABGANConfig, CTABGANPlusSurrogate  # noqa: E402
from repro.models.tabddpm.model import TabDDPMConfig, TabDDPMSurrogate  # noqa: E402
from repro.models.tvae import TVAEConfig, TVAESurrogate  # noqa: E402
from repro.panda.generator import GeneratorConfig, PandaWorkloadGenerator  # noqa: E402
from repro.panda.pipeline import FilteringPipeline  # noqa: E402
from repro.panda.sites import SiteCatalog  # noqa: E402
from repro.scheduler.broker import LeastLoadedBroker  # noqa: E402
from repro.scheduler.cluster import GridCluster  # noqa: E402
from repro.scheduler.jobs import SimulatedJob, jobs_from_table  # noqa: E402
from repro.scheduler.simulator import GridSimulator  # noqa: E402
from repro.serve import (  # noqa: E402
    Fault,
    FaultPlan,
    FrontDoor,
    RequestSpec,
    SamplingService,
    ShardedSampler,
)
from repro.models.smote import SMOTESurrogate  # noqa: E402
from repro.obs.tracing import Tracer  # noqa: E402
from repro.serve import shm as shm_transport  # noqa: E402
from repro.tabular.encoding import LabelEncoder  # noqa: E402
from repro.tabular.schema import TableSchema  # noqa: E402
from repro.tabular.table import Table  # noqa: E402
from repro.utils.profiling import BenchmarkRegistry  # noqa: E402

DEFAULT_OUTPUT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_hotpaths.json")


def _gbdt_case(n_rows: int):
    rng = np.random.default_rng(11)
    X = rng.normal(size=(n_rows, 8))
    y = (
        3.0 * X[:, 0]
        - 2.0 * X[:, 1]
        + np.sin(2.0 * X[:, 2])
        + 0.5 * X[:, 3] * X[:, 4]
        + 0.1 * rng.normal(size=n_rows)
    )
    params = dict(n_estimators=20, learning_rate=0.2, max_depth=6, max_bins=64, seed=0)
    return X, y, params


def bench_gbdt(registry: BenchmarkRegistry, sizes, repeats: int) -> None:
    for n_rows in sizes:
        X, y, params = _gbdt_case(n_rows)
        size = f"n={n_rows}"
        registry.measure(
            "gbdt_fit", "seed", size, lambda: SeedGradientBoostingRegressor(**params).fit(X, y)
        )
        registry.measure(
            "gbdt_fit",
            "optimized",
            size,
            lambda: GradientBoostingRegressor(**params).fit(X, y),
            repeats=repeats,
        )


def _table_case(n_rows: int):
    generator = PandaWorkloadGenerator(
        GeneratorConfig(n_jobs=int(n_rows / 0.35), n_days=90.0, seed=5)
    )
    return generator, generator.generate_training_table()


def bench_association(registry: BenchmarkRegistry, sizes, repeats: int) -> None:
    for n_rows in sizes:
        _generator, table = _table_case(n_rows)
        size = f"n={len(table)}"
        registry.measure(
            "association_matrix", "seed", size, lambda: seed_association_matrix(table)
        )
        registry.measure(
            "association_matrix",
            "optimized",
            size,
            lambda: association_matrix(table),
            repeats=repeats,
        )


def bench_pipeline(registry: BenchmarkRegistry, sizes, repeats: int) -> None:
    for n_rows in sizes:
        generator = PandaWorkloadGenerator(GeneratorConfig(n_jobs=n_rows, n_days=90.0, seed=5))
        raw = generator.generate_raw()
        size = f"n={n_rows}"
        registry.measure(
            "pipeline_funnel", "seed", size, lambda: SeedFilteringPipeline(generator.sites).run(raw)
        )
        registry.measure(
            "pipeline_funnel",
            "optimized",
            size,
            lambda: FilteringPipeline(generator.sites).run(raw),
            repeats=repeats,
        )


def bench_simulator(registry: BenchmarkRegistry, sizes, repeats: int) -> None:
    # One burst-arrival workload (fixed-size so quick and full runs slice the
    # same job stream), sliced per size; a 40-core cluster keeps the backlog
    # deep so the per-event dispatch cost dominates.
    generator = PandaWorkloadGenerator(
        GeneratorConfig(n_jobs=int(4_000 / 0.35), n_days=10.0, seed=5)
    )
    all_jobs = jobs_from_table(generator.generate_training_table())
    for n_jobs in sizes:
        jobs = all_jobs[:n_jobs]
        size = f"n={len(jobs)}"

        def run_seed():
            cluster = GridCluster(generator.sites, capacity_scale=1e-9, min_capacity=1)
            return SeedGridSimulator(cluster, LeastLoadedBroker()).run(jobs)

        def run_optimized():
            cluster = GridCluster(generator.sites, capacity_scale=1e-9, min_capacity=1)
            return GridSimulator(cluster, LeastLoadedBroker()).run(jobs)

        registry.measure("simulator", "seed", size, run_seed)
        registry.measure("simulator", "optimized", size, run_optimized, repeats=repeats)


def wide_mixed_table(n_rows: int, *, n_numerical: int = 2, n_categorical: int = 96, seed: int = 11) -> Table:
    """A wide mixed-type table: the shape the fused training stack targets."""
    rng = np.random.default_rng(seed)
    data = {}
    numerical = [f"x{j}" for j in range(n_numerical)]
    categorical = [f"c{j}" for j in range(n_categorical)]
    for name in numerical:
        data[name] = rng.normal(size=n_rows) * rng.uniform(0.5, 20)
    for name in categorical:
        k = int(rng.integers(2, 5))
        data[name] = rng.choice([f"v{i}" for i in range(k)], size=n_rows)
    return Table(data, TableSchema.from_columns(numerical=numerical, categorical=categorical))


_TRAIN_CASES = {
    "train_tvae": (
        SeedTVAESurrogate,
        TVAESurrogate,
        lambda: TVAEConfig(latent_dim=16, hidden_dims=(64,), epochs=3, batch_size=256),
    ),
    "train_ctabgan": (
        SeedCTABGANSurrogate,
        CTABGANPlusSurrogate,
        lambda: CTABGANConfig(
            noise_dim=8, generator_dims=(32,), discriminator_dims=(32,),
            gmm_components=3, epochs=2, batch_size=128, discriminator_steps=1,
        ),
    ),
    "train_tabddpm": (
        SeedTabDDPMSurrogate,
        TabDDPMSurrogate,
        lambda: TabDDPMConfig(
            n_timesteps=50, hidden_dims=(48,), time_embedding_dim=16, epochs=3, batch_size=256,
        ),
    ),
}


def bench_training(registry: BenchmarkRegistry, sizes, repeats: int) -> None:
    for n_rows in sizes:
        table = wide_mixed_table(n_rows)
        size = f"n={n_rows}"
        for kernel, (seed_cls, opt_cls, config_factory) in _TRAIN_CASES.items():
            registry.measure(
                kernel, "seed", size, lambda: seed_cls(config_factory(), seed=0).fit(table)
            )
            registry.measure(
                kernel,
                "optimized",
                size,
                lambda: opt_cls(config_factory(), seed=0).fit(table),
                repeats=repeats,
            )


def gmm_columns(n_rows: int, *, seed: int = 13) -> dict:
    """Tabular-realistic 1-D columns for the GMM benchmark.

    Real PanDA numerical columns (file counts, rounded byte sizes, discrete
    workload grids) carry far fewer unique values than rows — the shape the
    duplicate-compressed EM exploits; one multimodal rounded column keeps the
    mixture structure non-trivial.
    """
    rng = np.random.default_rng(seed)
    half = n_rows // 2
    return {
        "nfiles": rng.poisson(40, n_rows).astype(np.float64),
        "gigabytes": np.round(rng.lognormal(1.0, 0.8, n_rows), 2),
        "workload": rng.choice(np.round(np.linspace(0.5, 128.0, 512), 3), n_rows),
        "wait_hours": np.round(
            np.concatenate([rng.normal(2.0, 0.5, half), rng.lognormal(2.5, 0.4, n_rows - half)]), 1
        ),
    }


def bench_gmm(registry: BenchmarkRegistry, sizes, repeats: int) -> None:
    for n_rows in sizes:
        columns = gmm_columns(n_rows)
        size = f"n={n_rows}"

        def run_seed():
            return [SeedGaussianMixture(8, seed=0).fit(col) for col in columns.values()]

        def run_optimized():
            return [GaussianMixture(8, seed=0).fit(col) for col in columns.values()]

        registry.measure("gmm_fit", "seed", size, run_seed)
        registry.measure("gmm_fit", "optimized", size, run_optimized, repeats=repeats)


def bench_sampling(registry: BenchmarkRegistry, tabddpm_sizes, ctabgan_sizes, repeats: int) -> None:
    """Fixed-seed generation through the fitted deep surrogates.

    Both variants sample from their own (bit-identically trained) model, so
    the measured gap is purely the sampling chain: the per-block reverse
    diffusion / per-batch activation+hardening loops of the seed against the
    width-grouped lane passes of the optimized stack, in the default
    (bit-exact) condition mode.
    """
    table = wide_mixed_table(2000)

    ddpm_config = lambda: TabDDPMConfig(  # noqa: E731
        n_timesteps=50, hidden_dims=(48,), time_embedding_dim=16, epochs=1, batch_size=256
    )
    seed_ddpm = SeedTabDDPMSurrogate(ddpm_config(), seed=0).fit(table)
    live_ddpm = TabDDPMSurrogate(ddpm_config(), seed=0).fit(table)
    for n_rows in tabddpm_sizes:
        size = f"n={n_rows}"
        registry.measure("sample_tabddpm", "seed", size, lambda: seed_ddpm.sample(n_rows, seed=1))
        registry.measure(
            "sample_tabddpm", "optimized", size,
            lambda: live_ddpm.sample(n_rows, seed=1), repeats=repeats,
        )

    gan_config = lambda: CTABGANConfig(  # noqa: E731
        noise_dim=8, generator_dims=(32,), discriminator_dims=(32,),
        gmm_components=3, epochs=1, batch_size=128, discriminator_steps=1,
    )
    seed_gan = SeedCTABGANSurrogate(gan_config(), seed=0).fit(table)
    live_gan = CTABGANPlusSurrogate(gan_config(), seed=0).fit(table)
    for n_rows in ctabgan_sizes:
        size = f"n={n_rows}"
        registry.measure("sample_ctabgan", "seed", size, lambda: seed_gan.sample(n_rows, seed=1))
        registry.measure(
            "sample_ctabgan", "optimized", size,
            lambda: live_gan.sample(n_rows, seed=1), repeats=repeats,
        )


def bench_fast_sampling(
    registry: BenchmarkRegistry, ddpm_sizes, gan_sizes, tvae_sizes, repeats: int
) -> None:
    """Relaxed serving-mode kernels against their exact-mode baselines.

    For the ``sample_*_fast`` kernels the ``"seed"`` variant is the
    *bit-exact default sampling path* (itself already optimized and pinned to
    the seed bits by ``tests/test_sampling_equivalence.py``): the recorded
    speedup is exactly the serving contract — what switching
    ``sampling_mode="exact"`` → ``"fast"`` buys at serving sizes.  Fast-mode
    outputs are distribution-identical, not bit-identical
    (``tests/test_serving_modes.py``), so there is no seed port to compare
    against.

    TabDDPM runs the model's default-size denoiser (256, 256): the serving
    mode exists precisely because those float64 matmuls dominate exact-mode
    sampling at scale (the float32 pre-packed forward halves them, the padded
    lane-plane posterior removes most of the remaining passes).

    Both variants are timed best-of-``repeats`` (at least 5) after a warm-up
    draw: the exact path here is already fast, so a single cold measurement
    (first-touch page faults of the large request matrices) would skew the
    recorded serving speedup in either direction.
    """
    repeats = max(repeats, 5)
    table = wide_mixed_table(2000)

    cases = [
        (
            "sample_tabddpm_fast",
            TabDDPMSurrogate(
                TabDDPMConfig(
                    n_timesteps=50, hidden_dims=(256, 256), time_embedding_dim=64,
                    epochs=1, batch_size=256,
                ),
                seed=0,
            ),
            ddpm_sizes,
        ),
        (
            "sample_ctabgan_fast",
            CTABGANPlusSurrogate(
                CTABGANConfig(
                    noise_dim=8, generator_dims=(32,), discriminator_dims=(32,),
                    gmm_components=3, epochs=1, batch_size=128, discriminator_steps=1,
                ),
                seed=0,
            ),
            gan_sizes,
        ),
        (
            "sample_tvae_fast",
            TVAESurrogate(
                TVAEConfig(latent_dim=16, hidden_dims=(64,), epochs=1, batch_size=256),
                seed=0,
            ),
            tvae_sizes,
        ),
    ]
    for kernel, model, sizes in cases:
        model.fit(table)
        for n_rows in sizes:
            size = f"n={n_rows}"
            model.sample(n_rows, seed=1)
            model.sample(n_rows, seed=1, sampling_mode="fast")
            registry.measure(
                kernel, "seed", size,
                lambda: model.sample(n_rows, seed=1), repeats=repeats,
            )
            registry.measure(
                kernel, "optimized", size,
                lambda: model.sample(n_rows, seed=1, sampling_mode="fast"),
                repeats=repeats,
            )


def serving_mixed_table(
    n_rows: int, *, n_numerical: int = 4, n_narrow: int = 12, n_wide: int = 20, seed: int = 11
) -> Table:
    """A serving-shaped mixed table: narrow flags plus wide categoricals.

    Real PanDA serving requests decode site/user/task-style columns with
    8-24 categories next to a handful of narrow attribute columns — the
    shape where the per-block reverse-diffusion loop used to dominate
    fast-mode TabDDPM sampling (the relaxed width-bucket cube kernel removes
    it) and where table reassembly is wide enough to be honest about
    serving-side concat/IPC costs.
    """
    rng = np.random.default_rng(seed)
    data = {}
    numerical = [f"x{j}" for j in range(n_numerical)]
    categorical = []
    for name in numerical:
        data[name] = rng.normal(size=n_rows) * rng.uniform(0.5, 20)
    for j in range(n_narrow):
        k = int(rng.integers(2, 5))
        name = f"c{j}"
        categorical.append(name)
        data[name] = rng.choice([f"v{i}" for i in range(k)], size=n_rows)
    for j in range(n_wide):
        k = int(rng.integers(8, 25))
        name = f"w{j}"
        categorical.append(name)
        data[name] = rng.choice([f"s{i}" for i in range(k)], size=n_rows)
    return Table(data, TableSchema.from_columns(numerical=numerical, categorical=categorical))


#: The serving benchmark's sharding grain and worker count ("target ≥2.5x at
#: 4 workers" is the subsystem's acceptance bar).
SERVE_CHUNK = 16_384
SERVE_WORKERS = 4


def bench_serve_sharded(registry: BenchmarkRegistry, tvae_sizes, ddpm_sizes, repeats: int) -> None:
    """The serving stack against the single-worker path it replaces.

    The ``"seed"`` variant is the *single-worker serving path* the repo had
    before :mod:`repro.serve`: consuming the default (bit-exact)
    ``sample_batches`` stream chunk by chunk and concatenating — the only
    way to serve a 100k-row request in PR 4's world.  The ``"optimized"``
    variant is the serve subsystem's request path: the same chunk plan,
    relaxed ``"fast"`` mode, fanned across a warm 4-worker
    :class:`~repro.serve.sharded.ShardedSampler` pool (per-chunk
    ``SeedSequence`` streams keep the bytes worker-count-invariant, so the
    pool changes wall clock only).

    The recorded speedup is therefore the end-to-end serving contract: the
    relaxed-mode kernels (float32 packed forwards, width-bucket lane-plane
    posteriors) compose with multi-core sharding.  On a few-core box the
    sharding factor degenerates to ~1 and the measurement is dominated by
    the serving-mode kernels (and honestly charged the pool's IPC); every
    additional core multiplies it.  Both variants are timed warm —
    persistent-pool serving amortises startup, so cold costs (pool spawn,
    cache builds) stay outside the timed region, matching how the service
    runs.
    """
    repeats = max(repeats, 2)
    table = serving_mixed_table(2000)
    cases = [
        (
            "serve_sharded_tvae",
            TVAESurrogate(
                TVAEConfig(latent_dim=16, hidden_dims=(64,), epochs=1, batch_size=256),
                seed=0,
            ),
            tvae_sizes,
        ),
        (
            "serve_sharded_tabddpm",
            TabDDPMSurrogate(
                TabDDPMConfig(
                    n_timesteps=16, hidden_dims=(64, 64), time_embedding_dim=32,
                    epochs=1, batch_size=256,
                ),
                seed=0,
            ),
            ddpm_sizes,
        ),
    ]
    for kernel, model, sizes in cases:
        model.fit(table)
        with ShardedSampler(model, workers=SERVE_WORKERS, chunk_size=SERVE_CHUNK) as sampler:
            for n_rows in sizes:
                size = f"n={n_rows}"

                def run_single_worker():
                    return Table.concat(list(model.sample_batches(n_rows, SERVE_CHUNK, seed=1)))

                def run_sharded():
                    return sampler.sample(n_rows, seed=1, sampling_mode="fast")

                # Warm both paths (exact-mode inference buffers at the chunk
                # size; the pool's caches and result plumbing).
                Table.concat(list(model.sample_batches(SERVE_CHUNK, SERVE_CHUNK, seed=1)))
                run_sharded()
                registry.measure(kernel, "seed", size, run_single_worker)
                registry.measure(kernel, "optimized", size, run_sharded, repeats=repeats)


def bench_serve_faulty(registry: BenchmarkRegistry, sizes, repeats: int) -> None:
    """Serving throughput *under failure*: one worker kill per measured run.

    Same shape as ``serve_sharded_tvae`` — the single-worker exact
    ``sample_batches`` concatenation as the ``"seed"`` variant, the warm
    4-worker sharded fast path as ``"optimized"`` — except a ``kill@1``
    fault plan is re-armed before every optimized run, so each measurement
    pays exactly one worker crash: pool teardown, executor rebuild, the
    snapshot/warm-cache initializer, and resubmission of the chunks queued
    behind the crash.  The recorded speedup is therefore the *recovery-
    inclusive* serving contract, and the perf gate guards the overhead of
    supervision itself: a regression that makes recovery slow (or worse,
    makes the supervised happy path slow) shows up here even if the
    fault-free kernels hold.  The output is still byte-checked against the
    fault-free plan by ``tests/test_serve_faults.py``; this kernel only
    times it.
    """
    repeats = max(repeats, 2)
    table = serving_mixed_table(2000)
    model = TVAESurrogate(
        TVAEConfig(latent_dim=16, hidden_dims=(64,), epochs=1, batch_size=256), seed=0
    )
    model.fit(table)
    plan = FaultPlan([Fault("kill", 1)])
    try:
        with ShardedSampler(
            model,
            workers=SERVE_WORKERS,
            chunk_size=SERVE_CHUNK,
            fault_plan=plan,
            max_pool_restarts=repeats + 8,  # one restart per armed run + warm-up
        ) as sampler:
            for n_rows in sizes:
                size = f"n={n_rows}"

                def run_single_worker():
                    return Table.concat(list(model.sample_batches(n_rows, SERVE_CHUNK, seed=1)))

                def run_faulty():
                    plan.arm()  # the kill fires afresh inside every timed run
                    return sampler.sample(n_rows, seed=1, sampling_mode="fast")

                Table.concat(list(model.sample_batches(SERVE_CHUNK, SERVE_CHUNK, seed=1)))
                run_faulty()  # warm pool + one full recovery before timing
                registry.measure("serve_sharded_tvae_faulty", "seed", size, run_single_worker)
                registry.measure(
                    "serve_sharded_tvae_faulty", "optimized", size, run_faulty, repeats=repeats
                )
    finally:
        plan.cleanup()


#: Rows per request in the front-door stream benchmark: small enough that a
#: request is one chunk (the stream shape the front door exists for), large
#: enough that sampling dominates the per-chunk IPC.
FRONT_DOOR_ROWS = 2048


def bench_front_door(registry: BenchmarkRegistry, sizes, repeats: int) -> None:
    """A mixed-tenant request stream: the front-door path vs the client loop.

    The ``"seed"`` variant serves the stream the only way PR 4's world
    could: a client loop making one blocking in-process (bit-exact)
    ``sample_batches`` call per request — no queue, no coalescing, no
    pool.  The ``"optimized"`` variant is the serving stack's front-door
    path end to end: every request becomes a :class:`RequestSpec` submitted
    through :class:`FrontDoor` (broker slot accounting included), the
    service's dispatcher coalesces the queued stream into weighted-fair
    micro-batches, and the warm 4-worker pool serves the chunks in relaxed
    ``"fast"`` mode.  Like the ``serve_sharded_*`` kernels, the recorded
    speedup is the end-to-end serving contract — serving-mode kernels
    compose with micro-batched, pool-backed dispatch — plus the
    front door's own plumbing, charged honestly (routing, fair queueing and
    ticket resolution are all inside the timed region).  Requests are one
    chunk each on purpose: a stream of small requests is the shape the
    front door exists for, and it maximises the per-request overhead this
    kernel guards.  Bytes are equivalent either way (each request keeps its
    own seed's chunk streams); ``tests/test_serve_http.py`` proves the
    byte contract, this kernel only times it.
    """
    repeats = max(repeats, 2)
    table = serving_mixed_table(2000)
    model = TVAESurrogate(
        TVAEConfig(latent_dim=16, hidden_dims=(64,), epochs=1, batch_size=256), seed=0
    )
    model.fit(table)
    priorities = ("interactive", "normal", "batch")
    with SamplingService(
        model, workers=SERVE_WORKERS, chunk_size=FRONT_DOOR_ROWS
    ) as service:
        door = FrontDoor({"prod": service})
        try:
            for n_requests in sizes:
                size = f"requests={n_requests}"
                specs = [
                    RequestSpec(
                        FRONT_DOOR_ROWS,
                        seed=1000 + i,
                        tenant=f"tenant{i % 4:02d}",
                        priority=priorities[i % 3],
                    )
                    for i in range(n_requests)
                ]

                def run_client_loop():
                    return [
                        Table.concat(
                            list(
                                model.sample_batches(
                                    spec.n, FRONT_DOOR_ROWS, seed=spec.seed
                                )
                            )
                        )
                        for spec in specs
                    ]

                def run_front_door():
                    tickets = [door.submit(spec) for spec in specs]
                    return [ticket.result() for ticket in tickets]

                # Warm both paths (exact-mode inference buffers; the pool's
                # caches and the dispatch plumbing).
                Table.concat(
                    list(model.sample_batches(FRONT_DOOR_ROWS, FRONT_DOOR_ROWS, seed=1))
                )
                run_front_door()
                registry.measure("serve_front_door", "seed", size, run_client_loop)
                registry.measure(
                    "serve_front_door", "optimized", size, run_front_door, repeats=repeats
                )
        finally:
            door.close()


def bench_encode_categorical(registry: BenchmarkRegistry, sizes, repeats: int) -> None:
    """Label-encoding a wide categorical table: codes path vs string path.

    Both variants run the same :class:`LabelEncoder` fit + transform over
    every categorical column of the serving-shaped table.  The ``"seed"``
    variant feeds decoded string arrays (the only representation the
    pre-columnar data plane had), paying ``np.unique`` over unicode data per
    column; the ``"optimized"`` variant feeds the table's
    :class:`~repro.tabular.table.CategoricalColumn` objects, where fit is a
    bincount over the stored dictionary codes and transform a vocabulary-
    sized remap.  Outputs are bit-identical either way
    (``tests/test_tabular_encoding.py`` proves it); this kernel times the
    data-plane contract that no hot path re-uniques strings.
    """
    for n_rows in sizes:
        table = serving_mixed_table(n_rows)
        names = list(table.schema.categorical)
        strings = {name: np.asarray(table[name]) for name in names}
        size = f"n={n_rows}"

        def run_strings():
            for name in names:
                enc = LabelEncoder().fit(strings[name])
                enc.transform(strings[name])

        def run_codes():
            for name in names:
                column = table.categorical_column(name)
                enc = LabelEncoder().fit(column)
                enc.transform(column)

        registry.measure("encode_categorical_codes", "seed", size, run_strings)
        registry.measure(
            "encode_categorical_codes", "optimized", size, run_codes, repeats=repeats
        )


def bench_serve_shm(registry: BenchmarkRegistry, sizes, repeats: int) -> None:
    """The chunk transport itself: shm envelopes vs pickled chunk tables.

    Both variants serve the identical request (same chunk plan, same warm
    4-worker pool, relaxed ``"fast"`` mode) through a cheap SMOTE surrogate
    on the wide-categorical serving table — a model whose per-chunk sampling
    cost is small enough that moving the chunk dominates, which is exactly
    what this kernel guards.  The ``"seed"`` variant forces the
    ``transport="pickle"`` path (each chunk table pickled through the pool
    pipe); the ``"optimized"`` variant is the shared-memory transport (codes
    written to a named segment, only a tiny envelope pickled).  Output bytes
    are transport-invariant (``tests/test_serve_shm.py`` proves it).

    Each record carries ``extra["ipc_bytes_per_chunk"]`` — the pickled size
    of what actually crosses the pool pipe for one full chunk — so the
    committed baseline also documents the transport's data-movement
    contract: the envelope must stay well under the pickled table
    (``tests/test_ci_workflow.py`` asserts the >=5x reduction).
    """
    repeats = max(repeats, 2)
    table = serving_mixed_table(2000)
    model = SMOTESurrogate(k_neighbors=3).fit(table)
    shm_ok = shm_transport.shm_available()

    # What one chunk costs on the pipe, per transport.
    import pickle

    chunk = model.sample(SERVE_CHUNK, seed=1, sampling_mode="fast")
    table_bytes = float(len(pickle.dumps(chunk)))
    envelope_bytes = table_bytes
    if shm_ok:
        session = shm_transport.ShmSession(model)
        encoder = shm_transport.ChunkEncoder(session.config, model)
        envelope = encoder.encode(chunk)
        envelope_bytes = float(len(pickle.dumps(envelope)))
        session.decoder.discard(envelope)
        session.close()

    cases = [
        ("seed", "pickle", table_bytes),
        ("optimized", "shm" if shm_ok else "pickle", envelope_bytes),
    ]
    for n_rows in sizes:
        size = f"n={n_rows}"
        for variant, transport, ipc_bytes in cases:
            with ShardedSampler(
                model, workers=SERVE_WORKERS, chunk_size=SERVE_CHUNK, transport=transport
            ) as sampler:
                sampler.sample(n_rows, seed=1, sampling_mode="fast")  # warm pool
                registry.measure(
                    "serve_sharded_shm",
                    variant,
                    size,
                    lambda: sampler.sample(n_rows, seed=1, sampling_mode="fast"),
                    repeats=repeats,
                    extra={"ipc_bytes_per_chunk": ipc_bytes},
                )


def bench_serve_traced(registry: BenchmarkRegistry, sizes, repeats: int) -> None:
    """Tracing overhead: the traced serving path vs the identical untraced one.

    Both variants serve the same request (same model, chunk plan, warm
    4-worker pool, relaxed ``"fast"`` mode); the only difference is a
    :class:`~repro.obs.tracing.Tracer` installed on the ``"optimized"``
    variant's sampler, which turns on the full span taxonomy — worker-side
    ``worker_compute``/``shm_encode`` spans shipped back with every chunk,
    parent-side ``shm_decode``/``attempt``/``chunk`` spans recorded per
    attempt.  The recorded "speedup" is therefore the *inverse* of tracing
    overhead and the committed baseline is the observability plane's cost
    contract: ``tests/test_ci_workflow.py`` asserts the traced run stays
    within 5% of the untraced one (``seed * 1.05 >= optimized``).  Bytes are
    tracing-invariant by construction (spans ride alongside chunk payloads,
    never inside them); ``tests/test_obs_serving.py`` proves it, this kernel
    only prices it.
    """
    repeats = max(repeats, 3)  # a ratio-near-1 gate needs low-noise minima
    table = serving_mixed_table(2000)
    model = TVAESurrogate(
        TVAEConfig(latent_dim=16, hidden_dims=(64,), epochs=1, batch_size=256), seed=0
    )
    model.fit(table)
    tracer = Tracer()
    with ShardedSampler(
        model, workers=SERVE_WORKERS, chunk_size=SERVE_CHUNK
    ) as plain, ShardedSampler(
        model, workers=SERVE_WORKERS, chunk_size=SERVE_CHUNK, tracer=tracer
    ) as traced:
        for n_rows in sizes:
            size = f"n={n_rows}"

            def run_untraced():
                return plain.sample(n_rows, seed=1, sampling_mode="fast")

            def run_traced():
                tracer.clear()  # each run records (and pays for) its own spans
                return traced.sample(n_rows, seed=1, sampling_mode="fast")

            run_untraced()  # warm both pools before timing
            run_traced()
            spans_per_request = float(len(tracer))
            registry.measure("serve_traced", "seed", size, run_untraced, repeats=repeats)
            registry.measure(
                "serve_traced",
                "optimized",
                size,
                run_traced,
                repeats=repeats,
                extra={"spans_per_request": spans_per_request},
            )


def _broker_jobs(n_jobs: int = 3000) -> list:
    rng = np.random.default_rng(7)
    arrivals = np.sort(rng.uniform(0.0, 2.0, n_jobs))
    workloads = rng.lognormal(4.0, 1.0, n_jobs)
    return [
        SimulatedJob(
            job_id=i, arrival_time=float(arrivals[i]), cores=1,
            workload=float(workloads[i]), project=f"p{i % 20}",
        )
        for i in range(n_jobs)
    ]


def bench_broker(registry: BenchmarkRegistry, sizes, repeats: int) -> None:
    # One-core-per-site clusters keep every site near saturation, so the
    # dispatch path (broker selection + free-core bookkeeping per placement)
    # dominates; the O(sites) seed scan then separates cleanly from the
    # O(log sites) indexed broker.
    jobs = _broker_jobs()
    for n_sites in sizes:
        catalog = SiteCatalog.default(n_sites, seed=3)
        size = f"sites={n_sites}"

        def run_seed():
            cluster = GridCluster(catalog, capacity_scale=1e-9, min_capacity=1)
            return SeedWatermarkGridSimulator(cluster, SeedScanLeastLoadedBroker()).run(jobs)

        def run_optimized():
            cluster = GridCluster(catalog, capacity_scale=1e-9, min_capacity=1)
            return GridSimulator(cluster, LeastLoadedBroker()).run(jobs)

        registry.measure("broker_dispatch", "seed", size, run_seed)
        registry.measure("broker_dispatch", "optimized", size, run_optimized, repeats=repeats)


def run_benchmarks(
    *, quick: bool = False, repeats: int = 3, kernels: Optional[Sequence[str]] = None
) -> BenchmarkRegistry:
    registry = BenchmarkRegistry()
    # Quick mode keeps only the smaller size of each kernel so its size labels
    # stay comparable with a committed full-mode baseline.
    gbdt_sizes = [5_000, 40_000]
    table_sizes = [5_000, 40_000]
    pipe_sizes = [20_000, 150_000]
    sim_sizes = [1_000, 4_000]
    train_sizes = [2_000, 8_000]
    broker_sizes = [64, 512]
    gmm_sizes = [20_000, 100_000]
    ddpm_sample_sizes = [500, 1_000]
    gan_sample_sizes = [5_000, 20_000]
    ddpm_fast_sizes = [1_000, 4_000]
    gan_fast_sizes = [5_000, 20_000]
    tvae_fast_sizes = [20_000, 100_000]
    # The serving kernels run one serving-scale size (n >= 100k): the
    # single-worker exact baseline alone costs tens of seconds there, and the
    # contract they guard is a throughput ratio, not a size sweep.
    serve_tvae_sizes = [100_000]
    serve_ddpm_sizes = [100_000]
    # The front-door kernel serves a stream of one-chunk mixed-tenant
    # requests at one stream length (the ratio is the contract, not a sweep).
    front_door_sizes = [48]
    encode_sizes = [20_000, 100_000]
    # The transport kernel serves one serving-scale request; its contract is
    # the per-chunk IPC-bytes reduction plus wall-clock parity, not a sweep.
    serve_shm_sizes = [100_000]
    # The tracing kernel prices the span taxonomy on one serving-scale
    # request; its contract is the <=5% overhead ratio, not a sweep.
    serve_traced_sizes = [100_000]
    if quick:
        encode_sizes = encode_sizes[:1]
        (gbdt_sizes, table_sizes, pipe_sizes, sim_sizes, train_sizes, broker_sizes,
         gmm_sizes, ddpm_sample_sizes, gan_sample_sizes,
         ddpm_fast_sizes, gan_fast_sizes, tvae_fast_sizes) = (
            gbdt_sizes[:1],
            table_sizes[:1],
            pipe_sizes[:1],
            sim_sizes[:1],
            train_sizes[:1],
            broker_sizes[:1],
            gmm_sizes[:1],
            ddpm_sample_sizes[:1],
            gan_sample_sizes[:1],
            ddpm_fast_sizes[:1],
            gan_fast_sizes[:1],
            tvae_fast_sizes[:1],
        )
    # Each job is gated on its kernel names so ``--kernels`` re-measures one
    # kernel (e.g. to refresh its committed baseline) without paying the
    # whole sweep.
    jobs = [
        (("gbdt_fit",), lambda: bench_gbdt(registry, gbdt_sizes, repeats)),
        (("association_matrix",), lambda: bench_association(registry, table_sizes, repeats)),
        (("pipeline_funnel",), lambda: bench_pipeline(registry, pipe_sizes, repeats)),
        (("simulator",), lambda: bench_simulator(registry, sim_sizes, repeats)),
        (
            ("train_tvae", "train_ctabgan", "train_tabddpm"),
            lambda: bench_training(registry, train_sizes, repeats),
        ),
        (("broker_dispatch",), lambda: bench_broker(registry, broker_sizes, repeats)),
        (("gmm_fit",), lambda: bench_gmm(registry, gmm_sizes, repeats)),
        (
            ("sample_tabddpm", "sample_ctabgan"),
            lambda: bench_sampling(registry, ddpm_sample_sizes, gan_sample_sizes, repeats),
        ),
        (
            ("sample_tabddpm_fast", "sample_ctabgan_fast", "sample_tvae_fast"),
            lambda: bench_fast_sampling(
                registry, ddpm_fast_sizes, gan_fast_sizes, tvae_fast_sizes, repeats
            ),
        ),
        (
            ("serve_sharded_tvae", "serve_sharded_tabddpm"),
            lambda: bench_serve_sharded(registry, serve_tvae_sizes, serve_ddpm_sizes, repeats),
        ),
        (
            ("serve_sharded_tvae_faulty",),
            lambda: bench_serve_faulty(registry, serve_tvae_sizes, repeats),
        ),
        (
            ("serve_front_door",),
            lambda: bench_front_door(registry, front_door_sizes, repeats),
        ),
        (
            ("encode_categorical_codes",),
            lambda: bench_encode_categorical(registry, encode_sizes, repeats),
        ),
        (
            ("serve_sharded_shm",),
            lambda: bench_serve_shm(registry, serve_shm_sizes, repeats),
        ),
        (
            ("serve_traced",),
            lambda: bench_serve_traced(registry, serve_traced_sizes, repeats),
        ),
    ]
    if kernels is not None:
        selected = set(kernels)
        known = {name for names, _job in jobs for name in names}
        unknown = selected - known
        if unknown:
            raise ValueError(
                f"unknown kernel(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        jobs = [(names, job) for names, job in jobs if selected & set(names)]
    for _names, job in jobs:
        job()
    return registry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=DEFAULT_OUTPUT, help="where to write the JSON report")
    parser.add_argument(
        "--quick", action="store_true", help="single small size per kernel (smoke test)"
    )
    parser.add_argument("--repeats", type=int, default=3, help="repeats for optimized variants")
    parser.add_argument(
        "--kernels", nargs="+", default=None,
        help="only run the benchmarks producing these kernels",
    )
    parser.add_argument(
        "--merge", action="store_true",
        help="keep the other kernels' records from an existing --output file "
        "(for refreshing a subset of the committed baseline with --kernels)",
    )
    args = parser.parse_args(argv)

    registry = run_benchmarks(quick=args.quick, repeats=args.repeats, kernels=args.kernels)
    if args.merge and os.path.exists(args.output):
        measured = {rec.kernel for rec in registry.records}
        for rec in BenchmarkRegistry.from_json(args.output).records:
            if rec.kernel not in measured:
                registry.record(
                    rec.kernel, rec.variant, rec.size, rec.seconds,
                    repeats=rec.repeats, extra=rec.extra,
                )
    registry.write_json(args.output)

    print(f"wrote {args.output}")
    print(f"{'kernel':<20} {'size':<12} {'seed (s)':>10} {'optimized (s)':>14} {'speedup':>9}")
    for kernel, by_size in sorted(registry.speedups().items()):
        for size, speedup in sorted(by_size.items()):
            seed_s = registry.seconds_of(kernel, "seed", size)
            opt_s = registry.seconds_of(kernel, "optimized", size)
            print(f"{kernel:<20} {size:<12} {seed_s:>10.3f} {opt_s:>14.3f} {speedup:>8.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
