"""Training and sampling cost of each surrogate model.

Not a paper table by itself, but the practical companion to Table I: how long
does each surrogate take to fit on the benchmark trace, and how fast can it
emit synthetic records?  TabDDPM's sampling cost scales with the number of
diffusion timesteps, SMOTE's with the k-NN query — both are visible here.
"""

import pytest

from repro.experiments.table1 import build_model
from repro.utils.rng import derive_seed

MODELS = ("TVAE", "CTABGAN+", "SMOTE", "TabDDPM")
_NAME_TO_KEY = {"TVAE": "tvae", "CTABGAN+": "ctabgan+", "SMOTE": "smote", "TabDDPM": "tabddpm"}


@pytest.mark.parametrize("model_name", MODELS)
def test_model_fit_cost(benchmark, model_name, bench_config, bench_dataset):
    """Time one full fit() on the benchmark training split."""

    def fit():
        model = build_model(_NAME_TO_KEY[model_name], bench_config)
        model.fit(bench_dataset.train)
        return model

    model = benchmark.pedantic(fit, rounds=1, iterations=1)
    benchmark.extra_info["n_train_rows"] = bench_dataset.n_train
    if hasattr(model, "loss_history_") and model.loss_history_:
        last = model.loss_history_[-1]
        benchmark.extra_info["final_loss"] = (
            round(float(last), 4) if not isinstance(last, dict) else {k: round(float(v), 4) for k, v in last.items()}
        )


@pytest.mark.parametrize("model_name", MODELS)
def test_model_sampling_throughput(benchmark, model_name, fitted_models):
    """Time sampling 1000 synthetic records from an already-fitted model."""
    model = fitted_models[model_name]
    counter = {"i": 0}

    def sample():
        counter["i"] += 1
        return model.sample(1000, seed=derive_seed(123, "throughput", model_name, counter["i"]))

    table = benchmark.pedantic(sample, rounds=3, iterations=1)
    assert len(table) == 1000
    benchmark.extra_info["rows_per_call"] = 1000
