#!/usr/bin/env python
"""Single CI entry point: tier-1 tests, then the perf-regression gate.

Runs, in order::

    python -m pytest -x -q           # tier-1 (functional) suite
    benchmarks/check_regression.py   # tier-2 perf gate vs BENCH_hotpaths.json

and exits non-zero if either step fails.  Use from the repository root::

    PYTHONPATH=src python -m benchmarks.ci [--skip-tests|--skip-perf] [--full]

``--full`` runs the perf gate on the full benchmark sizes instead of the
quick (small-size) smoke mode.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-tests", action="store_true", help="skip the pytest step")
    parser.add_argument("--skip-perf", action="store_true", help="skip the perf gate")
    parser.add_argument(
        "--full", action="store_true", help="run the perf gate on full benchmark sizes"
    )
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="perf-gate slowdown threshold (forwarded to check_regression)",
    )
    parser.add_argument(
        "--factor", type=float, default=1.0,
        help="machine-variance multiplier on the perf-gate threshold "
        "(forwarded to check_regression; CI uses a looser factor)",
    )
    args = parser.parse_args(argv)

    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    if not args.skip_tests:
        print("== tier 1: pytest ==")
        code = subprocess.call(
            [sys.executable, "-m", "pytest", "-x", "-q"], cwd=REPO_ROOT, env=env
        )
        if code:
            print("tier-1 tests FAILED")
            return code

    if not args.skip_perf:
        print("== tier 2: perf gate ==")
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        import check_regression

        gate_args = ["--threshold", str(args.threshold), "--factor", str(args.factor)]
        if args.full:
            gate_args.append("--full")
        code = check_regression.main(gate_args)
        if code:
            return code

    print("CI passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
