"""Benchmark harness package (enables ``python -m benchmarks.ci``)."""
