#!/usr/bin/env python
"""Perf-regression gate: compare fresh hot-path timings against the committed
baseline and fail on a large slowdown.

Intended as a tier-2 step next to the test suite::

    PYTHONPATH=src python -m pytest -x -q
    PYTHONPATH=src python benchmarks/check_regression.py

Without ``--fresh``, the benchmarks are (re)run in quick mode and compared
against the committed ``BENCH_hotpaths.json``.  The gate fails (exit 1) when
any optimized kernel is more than ``--threshold * --factor`` times slower
than the baseline measurement of the same kernel/size — naming the offending
kernel(s) in the failure message — and warns (but passes) on timings for
kernel/size pairs missing from the baseline.  ``--factor`` exists for noisy
or slower machines: hosted CI runs use a looser factor (see
``.github/workflows/ci.yml``) so only gross regressions fail remotely while
local runs keep the tight default.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.utils.profiling import BenchmarkRegistry  # noqa: E402

BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_hotpaths.json")

#: Every kernel the gate must see an ``optimized`` measurement for.  A fresh
#: run that silently drops one of these (e.g. a refactor renames a kernel or
#: skips the serving-mode benchmarks) fails the gate instead of shrinking its
#: coverage.
REQUIRED_KERNELS = frozenset(
    {
        "gbdt_fit",
        "association_matrix",
        "pipeline_funnel",
        "simulator",
        "train_tvae",
        "train_ctabgan",
        "train_tabddpm",
        "broker_dispatch",
        "gmm_fit",
        "sample_tabddpm",
        "sample_ctabgan",
        # Relaxed serving-mode kernels (exact-mode baseline; see
        # bench_hotpaths.bench_fast_sampling).
        "sample_tabddpm_fast",
        "sample_ctabgan_fast",
        "sample_tvae_fast",
        # Serving-stack kernels: the sharded fast-mode service against the
        # single-worker exact-mode serving loop (see
        # bench_hotpaths.bench_serve_sharded for the contract).
        "serve_sharded_tvae",
        "serve_sharded_tabddpm",
        # Fault-recovery kernel: the same sharded contract with one injected
        # worker kill per measured run (see bench_hotpaths.bench_serve_faulty)
        # — guards the overhead of pool supervision itself.
        "serve_sharded_tvae_faulty",
        # Front-door kernel: the coalescing dispatch path (FrontDoor routing
        # + micro-batched fair queueing) against a one-request-at-a-time
        # client loop (see bench_hotpaths.bench_front_door) — guards the
        # per-request plumbing the multi-tenant front door adds.
        "serve_front_door",
        # Columnar data-plane kernels: dictionary-coded label encoding vs the
        # string path, and the shm chunk transport vs pickled chunk tables
        # (the latter also records per-chunk IPC bytes in its baseline; see
        # bench_hotpaths.bench_encode_categorical / bench_serve_shm).
        "encode_categorical_codes",
        "serve_sharded_shm",
        # Observability kernel: the traced serving path vs the identical
        # untraced one (see bench_hotpaths.bench_serve_traced) — its committed
        # baseline is the <=5% tracing-overhead contract asserted by
        # tests/test_ci_workflow.py.
        "serve_traced",
    }
)


def compare(
    fresh: BenchmarkRegistry, baseline: BenchmarkRegistry, *, threshold: float
) -> int:
    """Flag kernels whose fresh measurement regressed beyond ``threshold``.

    The primary metric is the seed/optimized *speedup* of each kernel, which
    both runs measure on their own machine — comparing speedups keeps the
    gate meaningful when the baseline was committed from different hardware.
    When either side lacks the seed measurement, absolute optimized seconds
    are compared as a fallback.
    """
    failures = []
    checked = 0
    for rec in fresh.records:
        if rec.variant != "optimized":
            continue
        base_seconds = baseline.seconds_of(rec.kernel, "optimized", rec.size)
        if base_seconds is None:
            print(f"  [warn] no baseline for {rec.kernel} @ {rec.size}; skipping")
            continue
        checked += 1
        fresh_seed = fresh.seconds_of(rec.kernel, "seed", rec.size)
        base_seed = baseline.seconds_of(rec.kernel, "seed", rec.size)
        if fresh_seed and base_seed and rec.seconds > 0 and base_seconds > 0:
            fresh_speedup = fresh_seed / rec.seconds
            base_speedup = base_seed / base_seconds
            ratio = base_speedup / fresh_speedup if fresh_speedup > 0 else float("inf")
            detail = f"speedup {fresh_speedup:.1f}x vs baseline {base_speedup:.1f}x"
        else:
            ratio = rec.seconds / base_seconds if base_seconds > 0 else float("inf")
            detail = f"{rec.seconds:.4f}s vs baseline {base_seconds:.4f}s"
        status = "ok" if ratio <= threshold else "REGRESSION"
        print(f"  [{status}] {rec.kernel} @ {rec.size}: {detail} ({ratio:.2f}x slowdown)")
        if ratio > threshold:
            failures.append((rec.kernel, rec.size, ratio))
    if checked == 0:
        print("  [error] no comparable measurements found")
        return 1
    measured = {rec.kernel for rec in fresh.records if rec.variant == "optimized"}
    missing = sorted(REQUIRED_KERNELS - measured)
    if missing:
        print(f"perf gate: fresh run is missing required kernel(s): {', '.join(missing)}")
        return 1
    if failures:
        worst = max(failures, key=lambda item: item[2])
        names = ", ".join(f"{kernel} @ {size}" for kernel, size, _ in failures)
        print(
            f"perf gate: {len(failures)} kernel(s) regressed beyond {threshold:.2f}x: {names} "
            f"(worst: {worst[0]} @ {worst[1]}, {worst[2]:.2f}x slowdown)"
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fresh",
        default=None,
        help="path to a freshly written BENCH_hotpaths.json; when omitted the "
        "benchmarks are re-run in quick mode",
    )
    parser.add_argument("--baseline", default=BASELINE, help="committed baseline JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="maximum tolerated slowdown factor per kernel/size (default 2x)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=1.0,
        help="multiplier applied to --threshold to absorb machine variance "
        "(hosted CI runners use a looser factor than local runs)",
    )
    parser.add_argument(
        "--full", action="store_true", help="run the full (not quick) benchmark sizes"
    )
    args = parser.parse_args(argv)
    if args.factor <= 0:
        parser.error("--factor must be positive")
    threshold = args.threshold * args.factor

    if not os.path.exists(args.baseline):
        print(f"baseline {args.baseline} not found; run bench_hotpaths.py first")
        return 1
    baseline = BenchmarkRegistry.from_json(args.baseline)

    if args.fresh is not None:
        if not os.path.exists(args.fresh):
            print(f"fresh report {args.fresh} not found; run bench_hotpaths.py first")
            return 1
        fresh = BenchmarkRegistry.from_json(args.fresh)
    else:
        from bench_hotpaths import run_benchmarks

        print("running hot-path benchmarks (quick mode)..." if not args.full else
              "running hot-path benchmarks (full mode)...")
        fresh = run_benchmarks(quick=not args.full)

    print(
        f"comparing against {args.baseline} "
        f"(threshold {args.threshold:.1f}x * factor {args.factor:.1f} = {threshold:.1f}x):"
    )
    code = compare(fresh, baseline, threshold=threshold)
    print("perf gate " + ("FAILED" if code else "passed"))
    return code


if __name__ == "__main__":
    raise SystemExit(main())
