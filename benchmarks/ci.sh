#!/usr/bin/env bash
# Tier-1 tests + tier-2 perf gate, runnable from any working directory:
#   benchmarks/ci.sh [--full] [--skip-tests] [--skip-perf] [--factor N]
set -euo pipefail

# Resolve the repository root from this script's own (physical) location so
# invocations via relative paths, $PATH or symlinks all work.
script_dir="$(cd -- "$(dirname -- "${BASH_SOURCE[0]:-$0}")" >/dev/null 2>&1 && pwd -P)"
repo_root="$(cd -- "${script_dir}/.." >/dev/null 2>&1 && pwd -P)"
cd -- "${repo_root}"

PYTHONPATH="${repo_root}/src${PYTHONPATH:+:$PYTHONPATH}" exec python -m benchmarks.ci "$@"
