#!/usr/bin/env bash
# Tier-1 tests + tier-2 perf gate, from the repository root:
#   benchmarks/ci.sh [--full] [--skip-tests] [--skip-perf]
set -euo pipefail
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m benchmarks.ci "$@"
