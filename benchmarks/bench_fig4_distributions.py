"""Fig. 4 — per-feature distributions of real vs synthetic data.

Fig. 4(a) overlays the densities of the four numerical features for ground
truth and every model; Fig. 4(b) compares the normalised counts of the top
categories of four categorical features.  The benchmark times the series
computation over all models and asserts the paper's qualitative reading:

* SMOTE and TabDDPM track the ground-truth distributions closely (small
  per-feature WD / JSD, top-category frequencies close to real), while
* TVAE and CTABGAN+ deviate more, in particular on the categorical columns
  (the paper calls out TVAE amplifying the top computing site and data type).
"""

import numpy as np
from repro.experiments.figures import fig4_distributions
from repro.metrics.distribution import jensen_shannon_divergence, wasserstein_1d


def test_fig4_distribution_series(benchmark, bench_config, bench_dataset, synthetic_tables):
    def run():
        return fig4_distributions(
            bench_config, dataset=bench_dataset, synthetic_tables=synthetic_tables, bins=40, top_k=5
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert set(result["numerical"]) == set(bench_dataset.train.schema.numerical)
    assert set(result["categorical"]) == set(bench_dataset.train.schema.categorical)

    # Per-feature fidelity, summarised the same way the figure is read.
    train = bench_dataset.train
    per_model_wd = {}
    per_model_jsd = {}
    for model, synth in synthetic_tables.items():
        per_model_wd[model] = float(
            np.mean([wasserstein_1d(train[c], synth[c]) for c in train.schema.numerical])
        )
        per_model_jsd[model] = float(
            np.mean([jensen_shannon_divergence(train[c], synth[c]) for c in train.schema.categorical])
        )
        benchmark.extra_info[f"{model}_mean_WD"] = round(per_model_wd[model], 4)
        benchmark.extra_info[f"{model}_mean_JSD"] = round(per_model_jsd[model], 4)

    # Paper's reading: the SMOTE/TabDDPM pair tracks the ground truth at least
    # as well as the TVAE/CTABGAN+ pair on both numerical and categorical sides.
    top_pair_wd = max(per_model_wd["SMOTE"], per_model_wd["TabDDPM"])
    deep_pair_wd = max(per_model_wd["TVAE"], per_model_wd["CTABGAN+"])
    assert top_pair_wd <= deep_pair_wd + 0.05

    top_pair_jsd = max(per_model_jsd["SMOTE"], per_model_jsd["TabDDPM"])
    deep_pair_jsd = max(per_model_jsd["TVAE"], per_model_jsd["CTABGAN+"])
    assert top_pair_jsd <= deep_pair_jsd + 0.05

    # Fig. 4(b): for the dominant computing site, SMOTE's frequency stays close.
    top_site_rows = result["categorical"]["computingsite"]["SMOTE"]
    top = top_site_rows[0]
    assert abs(top["real"] - top["synthetic"]) < 0.15
