"""Fig. 2 — the job-allocation / data-placement optimisation setting.

The paper's Fig. 2 illustrates the brokerage problem the surrogates are meant
to support: deciding where to run jobs and place data across the grid.  The
benchmark drives the discrete-event grid simulator with the held-out real
workload under three brokerage policies, then re-runs the same policies on a
TabDDPM-generated workload, checking that

* smarter brokerage (least-loaded / data-locality) does not increase mean
  wait time relative to random assignment, and
* the synthetic workload reproduces the real workload's policy ranking —
  i.e. the surrogate is good enough to calibrate scheduling studies.
"""

from repro.experiments.figures import fig2_scheduler_comparison

BROKERS = ("random", "least_loaded", "data_locality")


def test_fig2_policy_comparison_real_vs_synthetic(
    benchmark, bench_config, bench_dataset, synthetic_tables
):
    synthetic = synthetic_tables["TabDDPM"]

    def run():
        return fig2_scheduler_comparison(
            bench_config,
            dataset=bench_dataset,
            synthetic=synthetic,
            brokers=BROKERS,
            max_jobs=1500,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = result["rows"]
    real = {r["broker"]: r for r in rows if r["workload"] == "real"}
    synth = {r["broker"]: r for r in rows if r["workload"] == "synthetic"}

    assert set(real) == set(BROKERS) and set(synth) == set(BROKERS)
    for per_policy in (real, synth):
        assert all(r["completed"] == r["jobs"] for r in per_policy.values())
        # The compressed trace must actually exercise the queues...
        assert any(r["mean_utilization"] > 0.01 for r in per_policy.values())
        # ...and an informed policy should not be dramatically worse than
        # random assignment (at saturation the FIFO backlog dominates either
        # way, so only rough parity is required).
        assert (
            per_policy["least_loaded"]["mean_wait_h"]
            <= 1.5 * per_policy["random"]["mean_wait_h"] + 1.0
        )

    # System-level surrogate fidelity: the synthetic workload keeps the
    # simulation in the same operating regime as the real workload (wait times
    # within an order of magnitude, utilisation within a factor of a few).
    real_wait = max(real["least_loaded"]["mean_wait_h"], 0.1)
    synth_wait = max(synth["least_loaded"]["mean_wait_h"], 0.1)
    assert 0.1 < synth_wait / real_wait < 10.0
    real_util = max(real["least_loaded"]["mean_utilization"], 1e-3)
    synth_util = max(synth["least_loaded"]["mean_utilization"], 1e-3)
    assert 0.2 < synth_util / real_util < 5.0

    for broker in BROKERS:
        benchmark.extra_info[f"real_{broker}_wait_h"] = real[broker]["mean_wait_h"]
        benchmark.extra_info[f"synthetic_{broker}_wait_h"] = synth[broker]["mean_wait_h"]
        benchmark.extra_info[f"real_{broker}_util"] = real[broker]["mean_utilization"]
        benchmark.extra_info[f"synthetic_{broker}_util"] = synth[broker]["mean_utilization"]
