"""Ordered target statistics for categorical features.

CatBoost's core trick for categorical columns is *ordered target encoding*:
each row's category is replaced by the running mean of the target over the
rows that precede it in a random permutation, which avoids target leakage
while still injecting target information.  At inference time the full
training-set statistics are used.  This module implements exactly that, with
Laplace-style smoothing towards the global prior.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_fitted


class OrderedTargetEncoder:
    """Encode one categorical column with (ordered) target statistics.

    Parameters
    ----------
    smoothing:
        Pseudo-count weight of the global prior mean; larger values shrink
        rare categories harder towards the prior.
    seed:
        Seed for the encoding permutation used by :meth:`fit_transform_ordered`.
    """

    def __init__(self, smoothing: float = 1.0, *, seed: SeedLike = None) -> None:
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.smoothing = float(smoothing)
        self._rng = as_rng(seed)
        self.prior_: Optional[float] = None
        self.statistics_: Optional[Dict[str, float]] = None

    # -- fitting -------------------------------------------------------------
    def fit(self, categories: np.ndarray, target: np.ndarray) -> "OrderedTargetEncoder":
        """Fit full-dataset smoothed category means (used at inference time)."""
        cats = np.asarray(categories).astype(str)
        y = np.asarray(target, dtype=np.float64)
        if cats.shape[0] != y.shape[0]:
            raise ValueError("categories and target must have the same length")
        if cats.size == 0:
            raise ValueError("cannot fit on an empty column")
        self.prior_ = float(y.mean())
        uniques, inverse = np.unique(cats, return_inverse=True)
        sums = np.bincount(inverse, weights=y, minlength=uniques.size)
        counts = np.bincount(inverse, minlength=uniques.size).astype(np.float64)
        smoothed = (sums + self.smoothing * self.prior_) / (counts + self.smoothing)
        self.statistics_ = {str(c): float(v) for c, v in zip(uniques, smoothed)}
        return self

    def transform(self, categories: np.ndarray) -> np.ndarray:
        """Encode categories with the fitted full-dataset statistics."""
        check_fitted(self, ["statistics_", "prior_"])
        cats = np.asarray(categories).astype(str)
        # Vectorised dictionary lookup through a sorted key table.
        keys = np.array(sorted(self.statistics_.keys()))
        vals = np.array([self.statistics_[k] for k in keys])
        pos = np.searchsorted(keys, cats)
        pos = np.clip(pos, 0, keys.size - 1)
        hit = keys[pos] == cats
        out = np.full(cats.shape[0], self.prior_, dtype=np.float64)
        out[hit] = vals[pos[hit]]
        return out

    def fit_transform_ordered(self, categories: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Fit and return leakage-resistant *ordered* encodings for training rows.

        Each row is encoded using only the target values of rows appearing
        earlier in a random permutation (plus the smoothed prior), exactly as
        CatBoost does during training.
        """
        self.fit(categories, target)
        cats = np.asarray(categories).astype(str)
        y = np.asarray(target, dtype=np.float64)
        n = cats.shape[0]
        perm = self._rng.permutation(n)
        uniques, inverse = np.unique(cats, return_inverse=True)
        codes_in_order = inverse[perm]
        y_in_order = y[perm]

        # Running (exclusive) per-category sums and counts along the permutation.
        encoded_in_order = np.empty(n, dtype=np.float64)
        run_sum = np.zeros(uniques.size)
        run_cnt = np.zeros(uniques.size)
        # This loop is O(n) with O(1) numpy work per row; n is the training-set
        # size of the MLEF regressor, so it stays cheap relative to tree fitting.
        for i in range(n):
            c = codes_in_order[i]
            encoded_in_order[i] = (run_sum[c] + self.smoothing * self.prior_) / (
                run_cnt[c] + self.smoothing
            )
            run_sum[c] += y_in_order[i]
            run_cnt[c] += 1.0

        encoded = np.empty(n, dtype=np.float64)
        encoded[perm] = encoded_in_order
        return encoded
