"""Gradient boosting over histogram regression trees.

:class:`GradientBoostingRegressor` works on numeric matrices;
:class:`TabularBoostingRegressor` wraps it for mixed-type
:class:`~repro.tabular.table.Table` inputs, target-encoding categorical
columns the way CatBoost does.  The latter is what the MLEF metric uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.boosting.target_encoding import OrderedTargetEncoder
from repro.boosting.tree import FeatureBinner, RegressionTree
from repro.tabular.table import Table
from repro.utils.rng import SeedLike, as_rng, derive_seed
from repro.utils.validation import check_array, check_fitted


class GradientBoostingRegressor:
    """Squared-error gradient boosting on dense numeric features.

    Parameters mirror the CatBoost configuration used in the paper
    (200 iterations, depth 10, learning rate 1.0 on RMSE loss); the defaults
    here are gentler so the regressor is robust across dataset sizes, and the
    experiment harness overrides them to the paper values when regenerating
    Table I.
    """

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 6,
        min_samples_leaf: int = 20,
        subsample: float = 1.0,
        max_bins: int = 64,
        lambda_reg: float = 1.0,
        *,
        seed: SeedLike = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if not 0.0 < learning_rate <= 10.0:
            raise ValueError("learning_rate must be in (0, 10]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.subsample = float(subsample)
        self.max_bins = int(max_bins)
        self.lambda_reg = float(lambda_reg)
        self._rng = as_rng(seed)
        self.binner_: Optional[FeatureBinner] = None
        self.trees_: Optional[List[RegressionTree]] = None
        self.base_prediction_: Optional[float] = None
        self.train_losses_: Optional[List[float]] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        X = check_array(X, ndim=2, dtype=np.float64, name="X")
        y = check_array(y, ndim=1, dtype=np.float64, name="y")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if X.shape[0] < 2:
            raise ValueError("need at least 2 training rows")

        self.binner_ = FeatureBinner(max_bins=self.max_bins)
        binned = self.binner_.fit_transform(X)
        n_bins = [self.binner_.n_bins(j) for j in range(X.shape[1])]
        # The flattened (feature, bin) histogram index only depends on the
        # binned matrix, so build it once for the whole ensemble.
        flat = RegressionTree.flatten_bins(binned, n_bins)

        self.base_prediction_ = float(y.mean())
        prediction = np.full(y.shape[0], self.base_prediction_)
        trees: List[RegressionTree] = []
        losses: List[float] = []

        n = y.shape[0]
        for _ in range(self.n_estimators):
            residuals = y - prediction
            losses.append(float(np.mean(residuals ** 2)))
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                lambda_reg=self.lambda_reg,
            )
            if self.subsample < 1.0:
                idx = self._rng.choice(n, size=max(2, int(round(self.subsample * n))), replace=False)
                tree.fit(binned[idx], residuals[idx], n_bins, flat_index=flat[idx])
            else:
                tree.fit(binned, residuals, n_bins, flat_index=flat)
            update = tree.predict(binned)
            prediction = prediction + self.learning_rate * update
            trees.append(tree)

        self.trees_ = trees
        self.train_losses_ = losses
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["trees_", "binner_", "base_prediction_"])
        X = check_array(X, ndim=2, dtype=np.float64, name="X")
        binned = self.binner_.transform(X)
        prediction = np.full(X.shape[0], self.base_prediction_)
        for tree in self.trees_:
            prediction = prediction + self.learning_rate * tree.predict(binned)
        return prediction

    def score_mse(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean squared error on ``(X, y)``."""
        y = np.asarray(y, dtype=np.float64)
        return float(np.mean((self.predict(X) - y) ** 2))


class TabularBoostingRegressor:
    """Boosting regressor over a mixed-type table (the MLEF workhorse).

    Numerical feature columns are used as-is; categorical feature columns are
    encoded with CatBoost-style ordered target statistics during training and
    full-dataset statistics at prediction time.
    """

    def __init__(
        self,
        target_column: str,
        *,
        n_estimators: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 6,
        min_samples_leaf: int = 20,
        subsample: float = 1.0,
        max_bins: int = 64,
        log_target: bool = False,
        seed: SeedLike = None,
    ) -> None:
        self.target_column = target_column
        self.log_target = bool(log_target)
        self._seed = seed
        self.model = GradientBoostingRegressor(
            n_estimators=n_estimators,
            learning_rate=learning_rate,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            subsample=subsample,
            max_bins=max_bins,
            seed=derive_seed(seed if isinstance(seed, int) else None, "gbdt"),
        )
        self.encoders_: Optional[Dict[str, OrderedTargetEncoder]] = None
        self.feature_columns_: Optional[List[str]] = None

    # -- feature assembly ------------------------------------------------------
    def _target_of(self, table: Table) -> np.ndarray:
        y = np.asarray(table[self.target_column], dtype=np.float64)
        if self.log_target:
            y = np.log(np.maximum(y, 1e-12))
        return y

    def _assemble(self, table: Table, *, fit: bool, target: Optional[np.ndarray]) -> np.ndarray:
        columns: List[np.ndarray] = []
        for col in table.schema:
            if col.name == self.target_column:
                continue
            if col.is_numerical:
                columns.append(np.asarray(table[col.name], dtype=np.float64))
            else:
                if fit:
                    encoder = OrderedTargetEncoder(
                        seed=derive_seed(
                            self._seed if isinstance(self._seed, int) else None, "te", col.name
                        )
                    )
                    columns.append(encoder.fit_transform_ordered(table[col.name], target))
                    self.encoders_[col.name] = encoder
                else:
                    columns.append(self.encoders_[col.name].transform(table[col.name]))
        return np.column_stack(columns) if columns else np.empty((len(table), 0))

    # -- API --------------------------------------------------------------------
    def fit(self, table: Table) -> "TabularBoostingRegressor":
        if self.target_column not in table.schema:
            raise KeyError(f"target column {self.target_column!r} not in table")
        y = self._target_of(table)
        self.encoders_ = {}
        self.feature_columns_ = [c for c in table.columns if c != self.target_column]
        X = self._assemble(table, fit=True, target=y)
        self.model.fit(X, y)
        return self

    def predict(self, table: Table) -> np.ndarray:
        check_fitted(self, ["encoders_", "feature_columns_"])
        X = self._assemble(table, fit=False, target=None)
        pred = self.model.predict(X)
        return pred

    def score_mse(self, table: Table) -> float:
        """MSE on the (possibly log-transformed) target of ``table``."""
        y = self._target_of(table)
        return float(np.mean((self.predict(table) - y) ** 2))
