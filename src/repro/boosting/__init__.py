"""Gradient-boosted decision trees (CatBoost substitute).

The paper's machine-learning-efficacy metric (MLEF) trains a CatBoost
regressor on real/synthetic data and evaluates it on held-out real data.
CatBoost is not available offline, so this sub-package implements the pieces
needed to play the same role:

* :class:`~repro.boosting.target_encoding.OrderedTargetEncoder` — CatBoost's
  ordered target statistics for categorical features (leakage-resistant
  encoding on the training pass, full-statistics encoding at inference).
* :class:`~repro.boosting.tree.RegressionTree` — histogram-based regression
  tree on pre-binned features.
* :class:`~repro.boosting.gbdt.GradientBoostingRegressor` — squared-error
  gradient boosting over those trees, with shrinkage and row subsampling.
* :class:`~repro.boosting.gbdt.TabularBoostingRegressor` — convenience
  wrapper that consumes a mixed-type :class:`~repro.tabular.table.Table`
  directly (numeric passthrough + target-encoded categoricals).
"""

from repro.boosting.target_encoding import OrderedTargetEncoder
from repro.boosting.tree import RegressionTree
from repro.boosting.gbdt import GradientBoostingRegressor, TabularBoostingRegressor

__all__ = [
    "OrderedTargetEncoder",
    "RegressionTree",
    "GradientBoostingRegressor",
    "TabularBoostingRegressor",
]
