"""Histogram-based regression tree.

Features are pre-binned into at most ``max_bins`` quantile bins (shared across
all trees of an ensemble), so finding the best split of a node reduces to a
cumulative sum over per-bin gradient histograms — the same strategy used by
LightGBM/CatBoost, implemented with vectorised numpy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.validation import check_array, check_fitted


class FeatureBinner:
    """Quantile binning of a float feature matrix into small integer codes."""

    def __init__(self, max_bins: int = 64) -> None:
        if not 2 <= max_bins <= 256:
            raise ValueError("max_bins must be in [2, 256]")
        self.max_bins = int(max_bins)
        self.bin_edges_: Optional[List[np.ndarray]] = None

    def fit(self, X: np.ndarray) -> "FeatureBinner":
        X = check_array(X, ndim=2, dtype=np.float64, name="X")
        edges: List[np.ndarray] = []
        for j in range(X.shape[1]):
            col = X[:, j]
            qs = np.quantile(col, np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1])
            edges.append(np.unique(qs))
        self.bin_edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["bin_edges_"])
        X = check_array(X, ndim=2, dtype=np.float64, name="X")
        if X.shape[1] != len(self.bin_edges_):
            raise ValueError(
                f"expected {len(self.bin_edges_)} features, got {X.shape[1]}"
            )
        binned = np.empty(X.shape, dtype=np.uint8)
        for j, edges in enumerate(self.bin_edges_):
            binned[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return binned

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def n_bins(self, feature: int) -> int:
        check_fitted(self, ["bin_edges_"])
        return len(self.bin_edges_[feature]) + 1

    def threshold_value(self, feature: int, bin_index: int) -> float:
        """Original-space threshold corresponding to "bin <= bin_index"."""
        check_fitted(self, ["bin_edges_"])
        edges = self.bin_edges_[feature]
        idx = min(bin_index, len(edges) - 1)
        return float(edges[idx]) if len(edges) else float("inf")


@dataclass
class TreeNode:
    """A node of the fitted tree (internal or leaf)."""

    feature: int = -1
    threshold_bin: int = -1
    left: int = -1
    right: int = -1
    value: float = 0.0
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class RegressionTree:
    """Depth-limited regression tree on pre-binned features (squared loss).

    Split gain is the standard variance-reduction criterion written in terms
    of gradient statistics: ``G_L^2/N_L + G_R^2/N_R - G^2/N`` where ``G`` is
    the sum of residuals in a node.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 20,
        min_gain: float = 1e-12,
        lambda_reg: float = 1.0,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.min_gain = float(min_gain)
        self.lambda_reg = float(lambda_reg)
        self.nodes_: Optional[List[TreeNode]] = None

    # -- fitting -------------------------------------------------------------
    def fit(self, binned: np.ndarray, residuals: np.ndarray, n_bins_per_feature: List[int]) -> "RegressionTree":
        """Fit to pre-binned features and residual targets."""
        if binned.ndim != 2:
            raise ValueError("binned feature matrix must be 2-D")
        g = np.asarray(residuals, dtype=np.float64)
        if g.shape[0] != binned.shape[0]:
            raise ValueError("residuals length must match number of rows")
        n_features = binned.shape[1]
        nodes: List[TreeNode] = []

        def leaf_value(grad_sum: float, count: int) -> float:
            return grad_sum / (count + self.lambda_reg)

        # Each stack entry: (node_index, row_indices, depth)
        root_idx = np.arange(binned.shape[0])
        nodes.append(TreeNode(value=leaf_value(float(g.sum()), g.size), n_samples=g.size))
        stack: List[Tuple[int, np.ndarray, int]] = [(0, root_idx, 0)]

        while stack:
            node_id, rows, depth = stack.pop()
            node = nodes[node_id]
            grad_sum = float(g[rows].sum())
            count = rows.size
            node.value = leaf_value(grad_sum, count)
            node.n_samples = count
            if depth >= self.max_depth or count < 2 * self.min_samples_leaf:
                continue

            parent_score = grad_sum * grad_sum / (count + self.lambda_reg)
            best_gain = self.min_gain
            best_feature = -1
            best_bin = -1

            sub_binned = binned[rows]
            sub_g = g[rows]
            for j in range(n_features):
                nb = n_bins_per_feature[j]
                if nb < 2:
                    continue
                codes = sub_binned[:, j]
                grad_hist = np.bincount(codes, weights=sub_g, minlength=nb)
                cnt_hist = np.bincount(codes, minlength=nb)
                grad_cum = np.cumsum(grad_hist)[:-1]
                cnt_cum = np.cumsum(cnt_hist)[:-1]
                n_left = cnt_cum
                n_right = count - cnt_cum
                valid = (n_left >= self.min_samples_leaf) & (n_right >= self.min_samples_leaf)
                if not valid.any():
                    continue
                g_left = grad_cum
                g_right = grad_sum - grad_cum
                gain = (
                    g_left * g_left / (n_left + self.lambda_reg)
                    + g_right * g_right / (n_right + self.lambda_reg)
                    - parent_score
                )
                gain = np.where(valid, gain, -np.inf)
                best_j = int(np.argmax(gain))
                if gain[best_j] > best_gain:
                    best_gain = float(gain[best_j])
                    best_feature = j
                    best_bin = best_j

            if best_feature < 0:
                continue

            mask = sub_binned[:, best_feature] <= best_bin
            left_rows = rows[mask]
            right_rows = rows[~mask]
            node.feature = best_feature
            node.threshold_bin = best_bin
            node.left = len(nodes)
            nodes.append(TreeNode())
            node.right = len(nodes)
            nodes.append(TreeNode())
            stack.append((node.left, left_rows, depth + 1))
            stack.append((node.right, right_rows, depth + 1))

        self.nodes_ = nodes
        return self

    # -- prediction -----------------------------------------------------------
    def predict(self, binned: np.ndarray) -> np.ndarray:
        """Predict leaf values for pre-binned features (vectorised routing)."""
        check_fitted(self, ["nodes_"])
        n = binned.shape[0]
        out = np.zeros(n, dtype=np.float64)
        node_of_row = np.zeros(n, dtype=np.int64)
        active = np.arange(n)
        # Route all rows level by level; each iteration advances every row one
        # edge, so the loop count is bounded by the tree depth.
        while active.size:
            current = node_of_row[active]
            feats = np.array([self.nodes_[c].feature for c in current])
            is_leaf = feats < 0
            if is_leaf.any():
                leaf_rows = active[is_leaf]
                out[leaf_rows] = [self.nodes_[c].value for c in current[is_leaf]]
            keep = ~is_leaf
            active = active[keep]
            if not active.size:
                break
            current = current[keep]
            feats = feats[keep]
            thresholds = np.array([self.nodes_[c].threshold_bin for c in current])
            lefts = np.array([self.nodes_[c].left for c in current])
            rights = np.array([self.nodes_[c].right for c in current])
            go_left = binned[active, feats] <= thresholds
            node_of_row[active] = np.where(go_left, lefts, rights)
        return out

    @property
    def n_nodes(self) -> int:
        check_fitted(self, ["nodes_"])
        return len(self.nodes_)

    @property
    def n_leaves(self) -> int:
        check_fitted(self, ["nodes_"])
        return sum(1 for n in self.nodes_ if n.is_leaf)

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        check_fitted(self, ["nodes_"])

        def node_depth(idx: int) -> int:
            node = self.nodes_[idx]
            if node.is_leaf:
                return 0
            return 1 + max(node_depth(node.left), node_depth(node.right))

        return node_depth(0)
