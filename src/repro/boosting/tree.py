"""Histogram-based regression tree.

Features are pre-binned into at most ``max_bins`` quantile bins (shared across
all trees of an ensemble), so finding the best split of a node reduces to a
cumulative sum over per-bin gradient histograms — the same strategy used by
LightGBM/CatBoost, implemented with vectorised numpy.

Two classic histogram tricks keep node evaluation off the Python interpreter:

* all per-feature histograms of a node are built with **one** ``np.bincount``
  over a flattened ``feature * max_bins + bin`` index instead of a per-feature
  loop, and
* only the **smaller** child of a split is scanned; the sibling histogram is
  derived as ``parent - scanned`` (count histograms are exact under this
  subtraction; gradient histograms may differ from a direct rescan by a few
  ulps, which is the documented tolerance of the optimized path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.validation import check_array, check_fitted


class FeatureBinner:
    """Quantile binning of a float feature matrix into small integer codes.

    ``transform`` is a single ``np.searchsorted`` over the stacked (globally
    sorted) bin edges of *all* features: the global insertion rank of a value
    counts every edge below it, and a per-feature cumulative count table
    fitted alongside the edges converts that rank back to "number of
    feature-j edges <= value" — exactly the per-feature ``searchsorted``
    result — without a Python loop over features.

    The rank table is ``(n_features, total_edges + 1)``, i.e. quadratic in
    the feature count, so very wide matrices fall back to the per-feature
    loop instead of allocating it (``_MAX_RANK_TABLE_BYTES``).
    """

    #: rank-table size cap (uint8 bytes) above which fit() skips building it
    _MAX_RANK_TABLE_BYTES = 8_000_000

    def __init__(self, max_bins: int = 64) -> None:
        if not 2 <= max_bins <= 256:
            raise ValueError("max_bins must be in [2, 256]")
        self.max_bins = int(max_bins)
        self.bin_edges_: Optional[List[np.ndarray]] = None
        self._stacked_edges_: Optional[np.ndarray] = None
        self._rank_to_bin_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "FeatureBinner":
        X = check_array(X, ndim=2, dtype=np.float64, name="X")
        edges: List[np.ndarray] = []
        for j in range(X.shape[1]):
            col = X[:, j]
            qs = np.quantile(col, np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1])
            edges.append(np.unique(qs))
        self.bin_edges_ = edges
        # Stack all per-feature edges into one sorted array and record, for
        # every global rank r, how many of the first r edges belong to each
        # feature.  Per-feature bins never exceed max_bins - 1 < 256, so the
        # table fits in uint8 and the gathered codes need no cast.
        counts = np.array([e.size for e in edges], dtype=np.intp)
        stacked = np.concatenate(edges) if edges else np.empty(0)
        if len(edges) * (stacked.size + 1) > self._MAX_RANK_TABLE_BYTES:
            self._stacked_edges_ = None
            self._rank_to_bin_ = None
            return self
        order = np.argsort(stacked, kind="stable")
        self._stacked_edges_ = stacked[order]
        feature_of = np.repeat(np.arange(len(edges), dtype=np.intp), counts)[order]
        table = np.zeros((len(edges), stacked.size + 1), dtype=np.uint8)
        table[feature_of, np.arange(stacked.size) + 1] = 1
        np.cumsum(table, axis=1, out=table)
        self._rank_to_bin_ = table
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["bin_edges_"])
        X = check_array(X, ndim=2, dtype=np.float64, name="X")
        if X.shape[1] != len(self.bin_edges_):
            raise ValueError(
                f"expected {len(self.bin_edges_)} features, got {X.shape[1]}"
            )
        if self._rank_to_bin_ is None:
            binned = np.empty(X.shape, dtype=np.uint8)
            for j, edges in enumerate(self.bin_edges_):
                binned[:, j] = np.searchsorted(edges, X[:, j], side="right")
            return binned
        ranks = np.searchsorted(self._stacked_edges_, X, side="right")
        return self._rank_to_bin_[
            np.arange(X.shape[1], dtype=np.intp)[None, :], ranks
        ]

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def n_bins(self, feature: int) -> int:
        check_fitted(self, ["bin_edges_"])
        return len(self.bin_edges_[feature]) + 1

    def threshold_value(self, feature: int, bin_index: int) -> float:
        """Original-space threshold corresponding to "bin <= bin_index"."""
        check_fitted(self, ["bin_edges_"])
        edges = self.bin_edges_[feature]
        idx = min(bin_index, len(edges) - 1)
        return float(edges[idx]) if len(edges) else float("inf")


@dataclass
class TreeNode:
    """A node of the fitted tree (internal or leaf)."""

    feature: int = -1
    threshold_bin: int = -1
    left: int = -1
    right: int = -1
    value: float = 0.0
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class RegressionTree:
    """Depth-limited regression tree on pre-binned features (squared loss).

    Split gain is the standard variance-reduction criterion written in terms
    of gradient statistics: ``G_L^2/N_L + G_R^2/N_R - G^2/N`` where ``G`` is
    the sum of residuals in a node.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 20,
        min_gain: float = 1e-12,
        lambda_reg: float = 1.0,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.min_gain = float(min_gain)
        self.lambda_reg = float(lambda_reg)
        self.nodes_: Optional[List[TreeNode]] = None

    # -- fitting -------------------------------------------------------------
    def _build_histograms(
        self, flat: np.ndarray, g: np.ndarray, rows: np.ndarray, total_bins: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-(feature, bin) gradient and count histograms for ``rows``.

        ``flat`` holds the flattened ``feature * max_bins + bin`` index of every
        cell, so one ``bincount`` over the row-major ravel accumulates all
        feature histograms at once, in the same per-bin summation order as a
        per-feature scan.
        """
        idx = flat[rows].ravel()
        n_features = flat.shape[1]
        grad_hist = np.bincount(idx, weights=np.repeat(g[rows], n_features), minlength=total_bins)
        cnt_hist = np.bincount(idx, minlength=total_bins)
        return grad_hist, cnt_hist

    def fit(
        self,
        binned: np.ndarray,
        residuals: np.ndarray,
        n_bins_per_feature: List[int],
        *,
        flat_index: Optional[np.ndarray] = None,
    ) -> "RegressionTree":
        """Fit to pre-binned features and residual targets.

        ``flat_index`` is an optional precomputed ``binned + feature_offsets``
        int64 matrix (see :meth:`flatten_bins`); the boosting loop passes it so
        the flattened histogram index is built once per ensemble fit rather
        than once per tree.
        """
        if binned.ndim != 2:
            raise ValueError("binned feature matrix must be 2-D")
        g = np.asarray(residuals, dtype=np.float64)
        if g.shape[0] != binned.shape[0]:
            raise ValueError("residuals length must match number of rows")
        n_features = binned.shape[1]
        nb = np.asarray(n_bins_per_feature, dtype=np.int64)
        if nb.shape[0] != n_features:
            raise ValueError("n_bins_per_feature length must match number of features")
        max_nb = int(nb.max()) if n_features else 0
        total_bins = n_features * max_nb
        if flat_index is None:
            flat_index = self.flatten_bins(binned, n_bins_per_feature)
        # Split positions beyond a feature's last usable bin are never valid;
        # `bin_pos < nb - 1` also rules out features with fewer than 2 bins.
        bin_pos = np.arange(max_nb)
        splittable = bin_pos[None, :] < (nb[:, None] - 1)

        nodes: List[TreeNode] = []
        lam = self.lambda_reg

        def leaf_value(grad_sum: float, count: int) -> float:
            return grad_sum / (count + lam)

        root_rows = np.arange(binned.shape[0])
        nodes.append(TreeNode(value=leaf_value(float(g.sum()), g.size), n_samples=g.size))
        root_hists = (
            self._build_histograms(flat_index, g, root_rows, total_bins)
            if binned.shape[0]
            else (np.zeros(total_bins), np.zeros(total_bins, dtype=np.int64))
        )
        # Each stack entry: (node_index, row_indices, depth, grad_hist, cnt_hist).
        stack: List[Tuple[int, np.ndarray, int, np.ndarray, np.ndarray]] = [
            (0, root_rows, 0, root_hists[0], root_hists[1])
        ]

        while stack:
            node_id, rows, depth, grad_hist, cnt_hist = stack.pop()
            node = nodes[node_id]
            grad_sum = float(g[rows].sum())
            count = rows.size
            node.value = leaf_value(grad_sum, count)
            node.n_samples = count
            if depth >= self.max_depth or count < 2 * self.min_samples_leaf or total_bins == 0:
                continue

            parent_score = grad_sum * grad_sum / (count + lam)
            # Per-feature prefix sums over the (n_features, max_nb) histogram
            # grid; row-wise cumsum reproduces the per-feature accumulation
            # order of a feature-by-feature scan.
            g_left = np.cumsum(grad_hist.reshape(n_features, max_nb), axis=1)
            n_left = np.cumsum(cnt_hist.reshape(n_features, max_nb), axis=1)
            n_right = count - n_left
            valid = (
                splittable
                & (n_left >= self.min_samples_leaf)
                & (n_right >= self.min_samples_leaf)
            )
            g_right = grad_sum - g_left
            gain = (
                g_left * g_left / (n_left + lam)
                + g_right * g_right / (n_right + lam)
                - parent_score
            )
            gain = np.where(valid, gain, -np.inf)
            # Row-major argmax = first feature then first bin achieving the
            # maximum, matching the strict-improvement scan order of a
            # feature-by-feature search.
            best_flat = int(np.argmax(gain))
            if not gain.flat[best_flat] > self.min_gain:
                continue
            best_feature, best_bin = divmod(best_flat, max_nb)

            mask = binned[rows, best_feature] <= best_bin
            left_rows = rows[mask]
            right_rows = rows[~mask]
            node.feature = best_feature
            node.threshold_bin = best_bin
            node.left = len(nodes)
            nodes.append(TreeNode())
            node.right = len(nodes)
            nodes.append(TreeNode())
            # Scan only the smaller child; the sibling histogram is the
            # parent's minus the scanned one (the LightGBM subtraction trick).
            if left_rows.size <= right_rows.size:
                left_hists = self._build_histograms(flat_index, g, left_rows, total_bins)
                right_hists = (grad_hist - left_hists[0], cnt_hist - left_hists[1])
            else:
                right_hists = self._build_histograms(flat_index, g, right_rows, total_bins)
                left_hists = (grad_hist - right_hists[0], cnt_hist - right_hists[1])
            stack.append((node.left, left_rows, depth + 1, left_hists[0], left_hists[1]))
            stack.append((node.right, right_rows, depth + 1, right_hists[0], right_hists[1]))

        self.nodes_ = nodes
        self._pack_nodes()
        return self

    @staticmethod
    def flatten_bins(binned: np.ndarray, n_bins_per_feature: List[int]) -> np.ndarray:
        """Flattened ``feature * max_bins + bin`` index matrix for ``binned``."""
        nb = np.asarray(n_bins_per_feature, dtype=np.int64)
        max_nb = int(nb.max()) if nb.size else 0
        offsets = np.arange(binned.shape[1], dtype=np.int64) * max_nb
        return binned.astype(np.int64) + offsets[None, :]

    def _pack_nodes(self) -> None:
        """Mirror ``nodes_`` into flat arrays so prediction never touches
        Python-level node objects."""
        nodes = self.nodes_
        self._feature = np.array([n.feature for n in nodes], dtype=np.int64)
        self._threshold = np.array([n.threshold_bin for n in nodes], dtype=np.int64)
        self._left = np.array([n.left for n in nodes], dtype=np.int64)
        self._right = np.array([n.right for n in nodes], dtype=np.int64)
        self._value = np.array([n.value for n in nodes], dtype=np.float64)

    # -- prediction -----------------------------------------------------------
    def predict(self, binned: np.ndarray) -> np.ndarray:
        """Predict leaf values for pre-binned features (vectorised routing)."""
        check_fitted(self, ["nodes_"])
        if not hasattr(self, "_feature"):
            self._pack_nodes()  # tolerate hand-assigned ``nodes_``
        n = binned.shape[0]
        out = np.zeros(n, dtype=np.float64)
        node_of_row = np.zeros(n, dtype=np.int64)
        active = np.arange(n)
        # Route all rows level by level over the packed node arrays; each
        # iteration advances every row one edge, so the loop count is bounded
        # by the tree depth and no per-node Python objects are touched.
        while active.size:
            current = node_of_row[active]
            feats = self._feature[current]
            is_leaf = feats < 0
            if is_leaf.any():
                out[active[is_leaf]] = self._value[current[is_leaf]]
            keep = ~is_leaf
            active = active[keep]
            if not active.size:
                break
            current = current[keep]
            feats = feats[keep]
            go_left = binned[active, feats] <= self._threshold[current]
            node_of_row[active] = np.where(go_left, self._left[current], self._right[current])
        return out

    @property
    def n_nodes(self) -> int:
        check_fitted(self, ["nodes_"])
        return len(self.nodes_)

    @property
    def n_leaves(self) -> int:
        check_fitted(self, ["nodes_"])
        return sum(1 for n in self.nodes_ if n.is_leaf)

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        check_fitted(self, ["nodes_"])

        def node_depth(idx: int) -> int:
            node = self.nodes_[idx]
            if node.is_leaf:
                return 0
            return 1 + max(node_depth(node.left), node_depth(node.right))

        return node_depth(0)
