"""A small column-oriented table with a dictionary-encoded categorical store.

:class:`Table` stores each column as a typed buffer — ``float64`` numpy
arrays for numerical columns, :class:`CategoricalColumn` (``int32`` codes
plus a per-column string vocabulary) for categorical ones — alongside a
:class:`~repro.tabular.schema.TableSchema`.  It supports the handful of
operations the rest of the library needs (selection, masking, sampling,
concatenation, per-column summaries) and nothing else; it is deliberately
not a pandas replacement.

The codes-end-to-end contract
-----------------------------
Categorical data lives as integer codes from construction to consumption:

* ``Table.codes(name)`` / ``Table.vocab(name)`` / ``Table.codes_matrix()``
  expose the dictionary-encoded form; encoders, model samplers and metrics
  consume codes directly, so no ``astype(str)``/``np.unique`` re-encoding
  happens at model boundaries.
* **Decode at the edge**: strings materialise only where a consumer really
  needs labels — ``__getitem__`` (the backward-compatible column view),
  ``to_records``, CSV writing, fingerprinting.  The decode is lazy and
  cached per column, so codes-only pipelines never pay it.
* Summaries (``value_counts``, ``nunique``) count via ``np.bincount`` on
  codes, with results ordered exactly as the historical string-based
  implementations produced them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tabular.schema import ColumnKind, ColumnSchema, TableSchema
from repro.utils.rng import SeedLike, as_rng

ArrayLike = Union[np.ndarray, Sequence]

#: Canonical dtype of categorical codes.
CODES_DTYPE = np.int32


class CategoricalColumn:
    """A dictionary-encoded categorical column: ``int32`` codes + vocabulary.

    ``codes[i]`` indexes into ``vocab`` (a tuple of unique strings); the
    string form exists only on demand via :meth:`decode` (cached).  The
    column is immutable by contract — every operation returns a new column
    sharing the vocabulary.
    """

    __slots__ = ("codes", "vocab", "_decoded")

    def __init__(self, codes: ArrayLike, vocab: Sequence[str]) -> None:
        arr = np.asarray(codes, dtype=CODES_DTYPE)
        if arr.ndim != 1:
            raise ValueError(f"columns must be 1-D, got shape {arr.shape}")
        self.vocab: Tuple[str, ...] = tuple(str(v) for v in vocab)
        if len(set(self.vocab)) != len(self.vocab):
            raise ValueError("categorical vocabulary entries must be unique")
        if arr.size and (arr.min() < 0 or arr.max() >= len(self.vocab)):
            raise ValueError(
                f"codes out of range for a vocabulary of {len(self.vocab)} entries"
            )
        self.codes = arr
        self._decoded: Optional[np.ndarray] = None

    @classmethod
    def _wrap(cls, codes: np.ndarray, vocab: Tuple[str, ...]) -> "CategoricalColumn":
        """Internal fast path: adopt pre-validated codes without re-checking."""
        col = cls.__new__(cls)
        col.codes = codes
        col.vocab = vocab
        col._decoded = None
        return col

    @classmethod
    def from_values(cls, values: ArrayLike) -> "CategoricalColumn":
        """Factorize raw values (any dtype) into codes + sorted vocabulary."""
        arr = np.asarray(values)
        if arr.ndim != 1:
            raise ValueError(f"columns must be 1-D, got shape {arr.shape}")
        if arr.dtype.kind != "U":
            arr = arr.astype(str)
        vocab, codes = np.unique(arr, return_inverse=True)
        col = cls._wrap(codes.astype(CODES_DTYPE), tuple(vocab.tolist()))
        col._decoded = arr  # exact original strings; saves the re-gather
        return col

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return int(self.codes.shape[0])

    @property
    def n_rows(self) -> int:
        return len(self)

    def __array__(self, dtype=None, copy=None):  # numpy interop = decode edge
        decoded = self.decode()
        return decoded if dtype is None else decoded.astype(dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CategoricalColumn(rows={len(self)}, vocab={len(self.vocab)})"

    # -- decode (the edge) -------------------------------------------------
    def vocab_array(self) -> np.ndarray:
        """The vocabulary as a unicode numpy array (empty-safe)."""
        if not self.vocab:
            return np.empty(0, dtype="<U1")
        return np.asarray(self.vocab, dtype=str)

    def decode(self) -> np.ndarray:
        """Materialise the string form (lazy, cached; treat as read-only)."""
        if self._decoded is None:
            if self.codes.size == 0:
                width = max((len(v) for v in self.vocab), default=1)
                self._decoded = np.empty(0, dtype=f"<U{max(width, 1)}")
            else:
                self._decoded = self.vocab_array()[self.codes]
        return self._decoded

    # -- transforms (codes-space, vocab shared) ----------------------------
    def take(self, indices: ArrayLike) -> "CategoricalColumn":
        """Rows at ``indices`` (fancy or boolean indexing, order preserving)."""
        return CategoricalColumn._wrap(self.codes[indices], self.vocab)

    @staticmethod
    def concat(columns: Sequence["CategoricalColumn"]) -> "CategoricalColumn":
        """Vertically concatenate columns; vocabularies are unioned if needed."""
        if not columns:
            raise ValueError("concat requires at least one column")
        vocab = columns[0].vocab
        if all(c.vocab == vocab for c in columns[1:]):
            return CategoricalColumn._wrap(
                np.concatenate([c.codes for c in columns]), vocab
            )
        merged = np.unique(np.concatenate([c.vocab_array() for c in columns]))
        parts = []
        for c in columns:
            remap = np.searchsorted(merged, c.vocab_array()).astype(CODES_DTYPE)
            parts.append(remap[c.codes])
        return CategoricalColumn._wrap(np.concatenate(parts), tuple(merged.tolist()))

    def equals(self, other: "CategoricalColumn") -> bool:
        """Value equality (string-wise; codes compared directly on shared vocab)."""
        if self.vocab == other.vocab:
            return bool(np.array_equal(self.codes, other.codes))
        return bool(np.array_equal(self.decode(), other.decode()))


def _as_column(
    values: ArrayLike, kind: ColumnKind
) -> Union[np.ndarray, CategoricalColumn]:
    """Coerce ``values`` into the canonical storage for its column kind."""
    if kind is ColumnKind.NUMERICAL:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"columns must be 1-D, got shape {arr.shape}")
        return arr
    if isinstance(values, CategoricalColumn):
        return values
    # Categorical entries are dictionary-encoded so that integer-coded,
    # bytes-coded and string-coded categories behave identically downstream.
    return CategoricalColumn.from_values(values)


class Table:
    """Immutable-ish column-oriented table with an explicit schema."""

    def __init__(self, data: Mapping[str, ArrayLike], schema: TableSchema):
        if set(data.keys()) != set(schema.names):
            raise ValueError(
                "data columns do not match schema: "
                f"data={sorted(data.keys())}, schema={sorted(schema.names)}"
            )
        self.schema = schema
        self._columns: Dict[str, Union[np.ndarray, CategoricalColumn]] = {}
        n_rows: Optional[int] = None
        for col in schema:
            arr = _as_column(data[col.name], col.kind)
            if n_rows is None:
                n_rows = len(arr)
            elif len(arr) != n_rows:
                raise ValueError(
                    f"column {col.name!r} has {len(arr)} rows, expected {n_rows}"
                )
            self._columns[col.name] = arr
        self._n_rows = int(n_rows or 0)

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return self._n_rows

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return len(self.schema)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._n_rows, self.n_columns)

    @property
    def columns(self) -> List[str]:
        return self.schema.names

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        """Return the column as a numpy array (treat it as read-only).

        Categorical columns decode to their string form here — this is the
        backward-compatible *edge* view; use :meth:`codes` /
        :meth:`categorical_column` for the dictionary-encoded form.  The
        decode is lazy and cached, so codes-only consumers never pay it.
        """
        try:
            col = self._columns[name]
        except KeyError:
            raise KeyError(f"no column named {name!r}; available: {self.columns}") from None
        return col.decode() if isinstance(col, CategoricalColumn) else col

    def column(self, name: str) -> np.ndarray:
        return self[name]

    # -- dictionary-encoded accessors --------------------------------------
    def categorical_column(self, name: str) -> CategoricalColumn:
        """The dictionary-encoded store of a categorical column."""
        if self.schema.kind_of(name) is not ColumnKind.CATEGORICAL:
            raise ValueError(f"column {name!r} is not categorical")
        col = self._columns[name]
        assert isinstance(col, CategoricalColumn)
        return col

    def codes(self, name: str) -> np.ndarray:
        """Integer codes of a categorical column (``int32``; read-only)."""
        return self.categorical_column(name).codes

    def vocab(self, name: str) -> Tuple[str, ...]:
        """Vocabulary of a categorical column (code ``i`` → ``vocab[i]``)."""
        return self.categorical_column(name).vocab

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.schema != other.schema or len(self) != len(other):
            return False
        for c in self.columns:
            a, b = self._columns[c], other._columns[c]
            if isinstance(a, CategoricalColumn) and isinstance(b, CategoricalColumn):
                if not a.equals(b):
                    return False
            elif not np.array_equal(self[c], other[c]):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(f"{c.name}:{c.kind.value[0].upper()}" for c in self.schema)
        return f"Table(rows={self._n_rows}, columns=[{kinds}])"

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_records(
        cls, records: Sequence[Mapping[str, object]], schema: TableSchema
    ) -> "Table":
        """Build a table from a list of dict-like records."""
        data = {name: [rec[name] for rec in records] for name in schema.names}
        return cls(data, schema)

    @classmethod
    def empty(cls, schema: TableSchema) -> "Table":
        """Return a zero-row table with the given schema."""
        return cls({name: [] for name in schema.names}, schema)

    # -- row-wise access ---------------------------------------------------
    def row(self, index: int) -> Dict[str, object]:
        """Return a single row as a plain dict (slow; use for debugging/tests)."""
        if not -self._n_rows <= index < self._n_rows:
            raise IndexError(f"row index {index} out of range for {self._n_rows} rows")
        return {name: self[name][index] for name in self.columns}

    def to_records(self) -> List[Dict[str, object]]:
        """Materialise all rows as dicts (slow; intended for small tables)."""
        return [self.row(i) for i in range(self._n_rows)]

    def to_dict(self) -> Dict[str, np.ndarray]:
        """Return the columns as plain numpy arrays (categoricals decoded)."""
        return {name: self[name] for name in self.columns}

    # -- selection ---------------------------------------------------------
    def select(self, names: Iterable[str]) -> "Table":
        """Return a table restricted to ``names`` (order preserving)."""
        names = list(names)
        return Table({n: self._columns[n] for n in names}, self.schema.select(names))

    def drop(self, names: Iterable[str]) -> "Table":
        """Return a table without the given columns."""
        schema = self.schema.drop(names)
        return Table({n: self._columns[n] for n in schema.names}, schema)

    def with_column(
        self, name: str, values: ArrayLike, kind: ColumnKind | str
    ) -> "Table":
        """Return a table with an extra (or replaced) column."""
        kind = ColumnKind(kind)
        if name in self.schema:
            schema = TableSchema(
                [
                    ColumnSchema(name, kind) if c.name == name else c
                    for c in self.schema.columns
                ]
            )
        else:
            schema = self.schema.with_column(ColumnSchema(name, kind))
        data = dict(self._columns)
        data[name] = values
        return Table(data, schema)

    def take(self, indices: ArrayLike) -> "Table":
        """Return the rows at ``indices`` (fancy indexing, order preserving)."""
        idx = np.asarray(indices, dtype=np.intp)
        return Table({n: col.take(idx) if isinstance(col, CategoricalColumn) else col[idx]
                      for n, col in self._columns.items()}, self.schema)

    def mask(self, mask: ArrayLike) -> "Table":
        """Return the rows where ``mask`` is true."""
        m = np.asarray(mask, dtype=bool)
        if m.shape != (self._n_rows,):
            raise ValueError(f"mask shape {m.shape} does not match table length {self._n_rows}")
        return Table({n: col.take(m) if isinstance(col, CategoricalColumn) else col[m]
                      for n, col in self._columns.items()}, self.schema)

    def head(self, n: int = 5) -> "Table":
        """Return the first ``n`` rows."""
        return self.take(np.arange(min(n, self._n_rows)))

    def sample(
        self, n: int, *, replace: bool = False, seed: SeedLike = None
    ) -> "Table":
        """Return a uniformly sampled subset of ``n`` rows."""
        rng = as_rng(seed)
        if not replace and n > self._n_rows:
            raise ValueError(
                f"cannot sample {n} rows without replacement from {self._n_rows}"
            )
        idx = rng.choice(self._n_rows, size=n, replace=replace)
        return self.take(idx)

    def shuffle(self, seed: SeedLike = None) -> "Table":
        """Return a row-shuffled copy."""
        rng = as_rng(seed)
        return self.take(rng.permutation(self._n_rows))

    # -- combination -------------------------------------------------------
    @staticmethod
    def concat(tables: Sequence["Table"]) -> "Table":
        """Vertically concatenate tables sharing the same schema."""
        if not tables:
            raise ValueError("concat requires at least one table")
        schema = tables[0].schema
        for t in tables[1:]:
            if t.schema != schema:
                raise ValueError("all tables must share the same schema to concat")
        data: Dict[str, Union[np.ndarray, CategoricalColumn]] = {}
        for col in schema:
            parts = [t._columns[col.name] for t in tables]
            if col.kind is ColumnKind.CATEGORICAL:
                data[col.name] = CategoricalColumn.concat(parts)
            else:
                data[col.name] = np.concatenate(parts)
        return Table(data, schema)

    # -- matrix views ------------------------------------------------------
    def numerical_matrix(self, columns: Optional[Sequence[str]] = None) -> np.ndarray:
        """Stack numerical columns into an ``(n_rows, n_cols)`` float matrix."""
        cols = list(columns) if columns is not None else self.schema.numerical
        for c in cols:
            if self.schema.kind_of(c) is not ColumnKind.NUMERICAL:
                raise ValueError(f"column {c!r} is not numerical")
        if not cols:
            return np.empty((self._n_rows, 0), dtype=np.float64)
        return np.column_stack([self._columns[c] for c in cols])

    def categorical_matrix(self, columns: Optional[Sequence[str]] = None) -> np.ndarray:
        """Stack categorical columns into an ``(n_rows, n_cols)`` string matrix.

        This is a decode edge; prefer :meth:`codes_matrix` for model-side
        consumers that only need the category identity.
        """
        cols = list(columns) if columns is not None else self.schema.categorical
        for c in cols:
            if self.schema.kind_of(c) is not ColumnKind.CATEGORICAL:
                raise ValueError(f"column {c!r} is not categorical")
        if not cols:
            return np.empty((self._n_rows, 0), dtype="<U1")
        return np.column_stack([self[c] for c in cols])

    def codes_matrix(self, columns: Optional[Sequence[str]] = None) -> np.ndarray:
        """Stack categorical columns into an ``(n_rows, n_cols)`` int32 code matrix.

        The dictionary-encoded sibling of :meth:`categorical_matrix`: each
        column's codes index its own :meth:`vocab`.  No strings materialise.
        """
        cols = list(columns) if columns is not None else self.schema.categorical
        for c in cols:
            if self.schema.kind_of(c) is not ColumnKind.CATEGORICAL:
                raise ValueError(f"column {c!r} is not categorical")
        if not cols:
            return np.empty((self._n_rows, 0), dtype=CODES_DTYPE)
        return np.column_stack([self._columns[c].codes for c in cols])

    # -- summaries ---------------------------------------------------------
    def value_counts(
        self, name: str, *, normalize: bool = False
    ) -> Dict[str, Union[int, float]]:
        """Return ``{category: count}`` (or ``{category: frequency}``).

        Counts are ``int`` when ``normalize`` is false and ``float``
        frequencies otherwise, ordered by descending count with ties broken
        lexicographically — computed via ``np.bincount`` on the codes, never
        by re-uniquing strings.
        """
        col = self.categorical_column(name)
        vocab_arr = col.vocab_array()
        counts = np.bincount(col.codes, minlength=vocab_arr.size)
        lex = np.argsort(vocab_arr, kind="stable")
        values, counts = vocab_arr[lex], counts[lex]
        present = counts > 0
        values, counts = values[present], counts[present]
        order = np.argsort(-counts, kind="stable")
        total = counts.sum() if normalize else 1
        return {
            str(values[i]): (float(counts[i] / total) if normalize else int(counts[i]))
            for i in order
        }

    def nunique(self, name: str) -> int:
        """Number of distinct values in a column."""
        col = self._columns[name]
        if isinstance(col, CategoricalColumn):
            return int(np.unique(col.codes).size)
        return int(np.unique(col).size)

    def describe_numeric(self, name: str) -> Dict[str, float]:
        """Summary statistics for a numerical column."""
        if self.schema.kind_of(name) is not ColumnKind.NUMERICAL:
            raise ValueError(f"describe_numeric expects a numerical column, got {name!r}")
        col = self._columns[name]
        if col.size == 0:
            return {k: float("nan") for k in ("mean", "std", "min", "p25", "median", "p75", "max")}
        return {
            "mean": float(np.mean(col)),
            "std": float(np.std(col)),
            "min": float(np.min(col)),
            "p25": float(np.percentile(col, 25)),
            "median": float(np.median(col)),
            "p75": float(np.percentile(col, 75)),
            "max": float(np.max(col)),
        }

    def profile(self) -> List[Dict[str, object]]:
        """Per-column profile (name, kind, unique count) — paper Fig. 3(a)."""
        rows = []
        for col in self.schema:
            rows.append(
                {
                    "name": col.name,
                    "kind": col.kind.value,
                    "n_unique": self.nunique(col.name),
                }
            )
        return rows
