"""A small column-oriented table.

:class:`Table` stores each column as a numpy array — ``float64`` for numerical
columns, unicode/object for categorical ones — alongside a
:class:`~repro.tabular.schema.TableSchema`.  It supports the handful of
operations the rest of the library needs (selection, masking, sampling,
concatenation, per-column summaries) and nothing else; it is deliberately not
a pandas replacement.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tabular.schema import ColumnKind, ColumnSchema, TableSchema
from repro.utils.rng import SeedLike, as_rng

ArrayLike = Union[np.ndarray, Sequence]


def _as_column(values: ArrayLike, kind: ColumnKind) -> np.ndarray:
    """Coerce ``values`` into the canonical dtype for its column kind."""
    if kind is ColumnKind.NUMERICAL:
        arr = np.asarray(values, dtype=np.float64)
    else:
        arr = np.asarray(values)
        if arr.dtype.kind != "U":
            # Categorical entries are stored as strings so that integer-coded,
            # bytes-coded and string-coded categories behave identically
            # downstream.  Arrays that are already unicode are used as-is
            # (treat columns as read-only; Table never mutates them).
            arr = arr.astype(str)
    if arr.ndim != 1:
        raise ValueError(f"columns must be 1-D, got shape {arr.shape}")
    return arr


class Table:
    """Immutable-ish column-oriented table with an explicit schema."""

    def __init__(self, data: Mapping[str, ArrayLike], schema: TableSchema):
        if set(data.keys()) != set(schema.names):
            raise ValueError(
                "data columns do not match schema: "
                f"data={sorted(data.keys())}, schema={sorted(schema.names)}"
            )
        self.schema = schema
        self._columns: Dict[str, np.ndarray] = {}
        n_rows: Optional[int] = None
        for col in schema:
            arr = _as_column(data[col.name], col.kind)
            if n_rows is None:
                n_rows = arr.shape[0]
            elif arr.shape[0] != n_rows:
                raise ValueError(
                    f"column {col.name!r} has {arr.shape[0]} rows, expected {n_rows}"
                )
            self._columns[col.name] = arr
        self._n_rows = int(n_rows or 0)

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return self._n_rows

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return len(self.schema)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._n_rows, self.n_columns)

    @property
    def columns(self) -> List[str]:
        return self.schema.names

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        """Return the column array (a view; treat it as read-only)."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(f"no column named {name!r}; available: {self.columns}") from None

    def column(self, name: str) -> np.ndarray:
        return self[name]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.schema != other.schema or len(self) != len(other):
            return False
        return all(np.array_equal(self[c], other[c]) for c in self.columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(f"{c.name}:{c.kind.value[0].upper()}" for c in self.schema)
        return f"Table(rows={self._n_rows}, columns=[{kinds}])"

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_records(
        cls, records: Sequence[Mapping[str, object]], schema: TableSchema
    ) -> "Table":
        """Build a table from a list of dict-like records."""
        data = {name: [rec[name] for rec in records] for name in schema.names}
        return cls(data, schema)

    @classmethod
    def empty(cls, schema: TableSchema) -> "Table":
        """Return a zero-row table with the given schema."""
        return cls({name: [] for name in schema.names}, schema)

    # -- row-wise access ---------------------------------------------------
    def row(self, index: int) -> Dict[str, object]:
        """Return a single row as a plain dict (slow; use for debugging/tests)."""
        if not -self._n_rows <= index < self._n_rows:
            raise IndexError(f"row index {index} out of range for {self._n_rows} rows")
        return {name: self._columns[name][index] for name in self.columns}

    def to_records(self) -> List[Dict[str, object]]:
        """Materialise all rows as dicts (slow; intended for small tables)."""
        return [self.row(i) for i in range(self._n_rows)]

    def to_dict(self) -> Dict[str, np.ndarray]:
        """Return a shallow copy of the column mapping."""
        return dict(self._columns)

    # -- selection ---------------------------------------------------------
    def select(self, names: Iterable[str]) -> "Table":
        """Return a table restricted to ``names`` (order preserving)."""
        names = list(names)
        return Table({n: self._columns[n] for n in names}, self.schema.select(names))

    def drop(self, names: Iterable[str]) -> "Table":
        """Return a table without the given columns."""
        schema = self.schema.drop(names)
        return Table({n: self._columns[n] for n in schema.names}, schema)

    def with_column(
        self, name: str, values: ArrayLike, kind: ColumnKind | str
    ) -> "Table":
        """Return a table with an extra (or replaced) column."""
        kind = ColumnKind(kind)
        if name in self.schema:
            schema = TableSchema(
                [
                    ColumnSchema(name, kind) if c.name == name else c
                    for c in self.schema.columns
                ]
            )
        else:
            schema = self.schema.with_column(ColumnSchema(name, kind))
        data = dict(self._columns)
        data[name] = values
        return Table(data, schema)

    def take(self, indices: ArrayLike) -> "Table":
        """Return the rows at ``indices`` (fancy indexing, order preserving)."""
        idx = np.asarray(indices, dtype=np.intp)
        return Table({n: col[idx] for n, col in self._columns.items()}, self.schema)

    def mask(self, mask: ArrayLike) -> "Table":
        """Return the rows where ``mask`` is true."""
        m = np.asarray(mask, dtype=bool)
        if m.shape != (self._n_rows,):
            raise ValueError(f"mask shape {m.shape} does not match table length {self._n_rows}")
        return Table({n: col[m] for n, col in self._columns.items()}, self.schema)

    def head(self, n: int = 5) -> "Table":
        """Return the first ``n`` rows."""
        return self.take(np.arange(min(n, self._n_rows)))

    def sample(
        self, n: int, *, replace: bool = False, seed: SeedLike = None
    ) -> "Table":
        """Return a uniformly sampled subset of ``n`` rows."""
        rng = as_rng(seed)
        if not replace and n > self._n_rows:
            raise ValueError(
                f"cannot sample {n} rows without replacement from {self._n_rows}"
            )
        idx = rng.choice(self._n_rows, size=n, replace=replace)
        return self.take(idx)

    def shuffle(self, seed: SeedLike = None) -> "Table":
        """Return a row-shuffled copy."""
        rng = as_rng(seed)
        return self.take(rng.permutation(self._n_rows))

    # -- combination -------------------------------------------------------
    @staticmethod
    def concat(tables: Sequence["Table"]) -> "Table":
        """Vertically concatenate tables sharing the same schema."""
        if not tables:
            raise ValueError("concat requires at least one table")
        schema = tables[0].schema
        for t in tables[1:]:
            if t.schema != schema:
                raise ValueError("all tables must share the same schema to concat")
        data = {
            name: np.concatenate([t[name] for t in tables]) for name in schema.names
        }
        return Table(data, schema)

    # -- matrix views ------------------------------------------------------
    def numerical_matrix(self, columns: Optional[Sequence[str]] = None) -> np.ndarray:
        """Stack numerical columns into an ``(n_rows, n_cols)`` float matrix."""
        cols = list(columns) if columns is not None else self.schema.numerical
        for c in cols:
            if self.schema.kind_of(c) is not ColumnKind.NUMERICAL:
                raise ValueError(f"column {c!r} is not numerical")
        if not cols:
            return np.empty((self._n_rows, 0), dtype=np.float64)
        return np.column_stack([self._columns[c] for c in cols])

    def categorical_matrix(self, columns: Optional[Sequence[str]] = None) -> np.ndarray:
        """Stack categorical columns into an ``(n_rows, n_cols)`` string matrix."""
        cols = list(columns) if columns is not None else self.schema.categorical
        for c in cols:
            if self.schema.kind_of(c) is not ColumnKind.CATEGORICAL:
                raise ValueError(f"column {c!r} is not categorical")
        if not cols:
            return np.empty((self._n_rows, 0), dtype="<U1")
        return np.column_stack([self._columns[c] for c in cols])

    # -- summaries ---------------------------------------------------------
    def value_counts(self, name: str, *, normalize: bool = False) -> Dict[str, float]:
        """Return ``{category: count}`` (or frequency) for a categorical column."""
        if self.schema.kind_of(name) is not ColumnKind.CATEGORICAL:
            raise ValueError(f"value_counts expects a categorical column, got {name!r}")
        values, counts = np.unique(self._columns[name], return_counts=True)
        order = np.argsort(-counts, kind="stable")
        total = counts.sum() if normalize else 1
        return {
            str(values[i]): (counts[i] / total if normalize else int(counts[i]))
            for i in order
        }

    def nunique(self, name: str) -> int:
        """Number of distinct values in a column."""
        return int(np.unique(self._columns[name]).size)

    def describe_numeric(self, name: str) -> Dict[str, float]:
        """Summary statistics for a numerical column."""
        if self.schema.kind_of(name) is not ColumnKind.NUMERICAL:
            raise ValueError(f"describe_numeric expects a numerical column, got {name!r}")
        col = self._columns[name]
        if col.size == 0:
            return {k: float("nan") for k in ("mean", "std", "min", "p25", "median", "p75", "max")}
        return {
            "mean": float(np.mean(col)),
            "std": float(np.std(col)),
            "min": float(np.min(col)),
            "p25": float(np.percentile(col, 25)),
            "median": float(np.median(col)),
            "p75": float(np.percentile(col, 75)),
            "max": float(np.max(col)),
        }

    def profile(self) -> List[Dict[str, object]]:
        """Per-column profile (name, kind, unique count) — paper Fig. 3(a)."""
        rows = []
        for col in self.schema:
            rows.append(
                {
                    "name": col.name,
                    "kind": col.kind.value,
                    "n_unique": self.nunique(col.name),
                }
            )
        return rows
