"""Column-oriented tabular data substrate.

The paper works on mixed-type tabular job records (categorical + numerical
columns).  Rather than depending on pandas, the library ships a small,
numpy-backed column store: :class:`~repro.tabular.table.Table` plus an explicit
:class:`~repro.tabular.schema.TableSchema`, preprocessing transforms
(Gaussian quantile transform, scalers, one-hot encoding) and split utilities.

The design mirrors what the generative models need:

* columns are homogeneous numpy arrays: ``float64`` for numerical columns
  and dictionary-encoded
  :class:`~repro.tabular.table.CategoricalColumn` objects (``int32`` codes
  + a tuple-of-str vocabulary) for categorical ones, so per-column
  vectorised operations stay cheap;
* the schema is carried alongside the data, so models and metrics never guess
  column types;
* every transform is invertible (``transform`` / ``inverse_transform``) so a
  model trained in the encoded space can emit records in the original space.

The columnar data plane
-----------------------
Categoricals are **codes end to end, decoded only at the edge**: a table
stores each categorical column once as dictionary codes, and every internal
consumer — the label/one-hot encoders, the mixed-space model encoders, the
distribution and association metrics, the NPZ format and the serving
transport — computes on ``table.codes(name)`` / ``table.codes_matrix()``
against ``table.vocab(name)`` without materialising strings.  String arrays
exist only at the API edge (``table[name]``, ``to_dict``, ``row``, CSV),
where :meth:`CategoricalColumn.decode` lazily builds and caches them.  The
refactor is bit-invisible: every codes path reproduces the old string-path
arithmetic exactly (``tests/test_perf_equivalence.py``,
``tests/test_sampling_equivalence.py``), and
``benchmarks/BENCH_hotpaths.json`` pins the payoff via the
``encode_categorical_codes`` and ``serve_sharded_shm`` kernels.
"""

from repro.tabular.schema import ColumnKind, ColumnSchema, TableSchema
from repro.tabular.table import CategoricalColumn, Table
from repro.tabular.encoding import LabelEncoder, OneHotEncoder, FrequencyTable
from repro.tabular.transforms import (
    ColumnTransform,
    GaussianQuantileTransform,
    IdentityTransform,
    LogTransform,
    MinMaxScaler,
    StandardScaler,
    TransformPipeline,
)
from repro.tabular.mixed import MixedEncoder, EncodedMatrix
from repro.tabular.splits import train_test_split, temporal_split, kfold_indices
from repro.tabular.io import read_csv, write_csv, read_npz, write_npz

__all__ = [
    "CategoricalColumn",
    "ColumnKind",
    "ColumnSchema",
    "TableSchema",
    "Table",
    "LabelEncoder",
    "OneHotEncoder",
    "FrequencyTable",
    "ColumnTransform",
    "GaussianQuantileTransform",
    "IdentityTransform",
    "LogTransform",
    "MinMaxScaler",
    "StandardScaler",
    "TransformPipeline",
    "MixedEncoder",
    "EncodedMatrix",
    "train_test_split",
    "temporal_split",
    "kfold_indices",
    "read_csv",
    "write_csv",
    "read_npz",
    "write_npz",
]
