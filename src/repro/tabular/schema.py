"""Table schemas: explicit column typing for mixed tabular data.

The PanDA job-record table (paper Fig. 3a) mixes categorical columns
(``jobstatus``, ``computingsite``, ``project``, ``prodstep``, ``datatype``)
with numerical ones (``workload``, ``creationtime``, ``ninputdatafiles``,
``inputfilebytes``).  All downstream components — transforms, generative
models, metrics — dispatch on column kind, so the schema is a first-class
object rather than an implicit convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple


class ColumnKind(str, Enum):
    """Kind of a table column."""

    NUMERICAL = "numerical"
    CATEGORICAL = "categorical"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ColumnSchema:
    """Schema of a single column.

    Parameters
    ----------
    name:
        Column name.
    kind:
        :class:`ColumnKind` of the column.
    description:
        Optional human-readable description (used by the Fig. 3a profile).
    """

    name: str
    kind: ColumnKind
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column name must be a non-empty string")
        object.__setattr__(self, "kind", ColumnKind(self.kind))

    @property
    def is_numerical(self) -> bool:
        return self.kind is ColumnKind.NUMERICAL

    @property
    def is_categorical(self) -> bool:
        return self.kind is ColumnKind.CATEGORICAL


@dataclass
class TableSchema:
    """Ordered collection of :class:`ColumnSchema` objects."""

    columns: List[ColumnSchema] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate column names in schema: {dupes}")

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_kinds(cls, kinds: Mapping[str, ColumnKind | str]) -> "TableSchema":
        """Build a schema from a ``{name: kind}`` mapping (order preserving)."""
        return cls([ColumnSchema(name, ColumnKind(kind)) for name, kind in kinds.items()])

    @classmethod
    def from_columns(
        cls,
        numerical: Sequence[str] = (),
        categorical: Sequence[str] = (),
    ) -> "TableSchema":
        """Build a schema from two name lists; numerical columns come first."""
        cols = [ColumnSchema(n, ColumnKind.NUMERICAL) for n in numerical]
        cols += [ColumnSchema(n, ColumnKind.CATEGORICAL) for n in categorical]
        return cls(cols)

    # -- accessors ---------------------------------------------------------
    @property
    def names(self) -> List[str]:
        return [c.name for c in self.columns]

    @property
    def numerical(self) -> List[str]:
        return [c.name for c in self.columns if c.is_numerical]

    @property
    def categorical(self) -> List[str]:
        return [c.name for c in self.columns if c.is_categorical]

    def kind_of(self, name: str) -> ColumnKind:
        return self[name].kind

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[ColumnSchema]:
        return iter(self.columns)

    def __contains__(self, name: object) -> bool:
        return any(c.name == name for c in self.columns)

    def __getitem__(self, name: str) -> ColumnSchema:
        for c in self.columns:
            if c.name == name:
                return c
        raise KeyError(f"no column named {name!r} in schema")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return [(c.name, c.kind) for c in self.columns] == [
            (c.name, c.kind) for c in other.columns
        ]

    # -- manipulation ------------------------------------------------------
    def select(self, names: Iterable[str]) -> "TableSchema":
        """Return a sub-schema containing ``names`` in the given order."""
        return TableSchema([self[n] for n in names])

    def drop(self, names: Iterable[str]) -> "TableSchema":
        """Return a schema without the given columns."""
        dropped = set(names)
        missing = dropped - set(self.names)
        if missing:
            raise KeyError(f"cannot drop unknown columns: {sorted(missing)}")
        return TableSchema([c for c in self.columns if c.name not in dropped])

    def rename(self, mapping: Mapping[str, str]) -> "TableSchema":
        """Return a schema with columns renamed according to ``mapping``."""
        return TableSchema(
            [
                ColumnSchema(mapping.get(c.name, c.name), c.kind, c.description)
                for c in self.columns
            ]
        )

    def with_column(self, column: ColumnSchema) -> "TableSchema":
        """Return a schema with ``column`` appended."""
        return TableSchema(self.columns + [column])

    # -- serialisation -----------------------------------------------------
    def to_dict(self) -> Dict[str, str]:
        return {c.name: c.kind.value for c in self.columns}

    @classmethod
    def from_dict(cls, data: Mapping[str, str]) -> "TableSchema":
        return cls.from_kinds(data)

    def describe(self) -> List[Tuple[str, str]]:
        """Return ``(name, kind)`` pairs; handy for printing dataset profiles."""
        return [(c.name, c.kind.value) for c in self.columns]
