"""Invertible numerical column transforms.

The paper normalises numerical features with a Gaussian quantile
transformation (scikit-learn's ``QuantileTransformer(output_distribution=
"normal")``).  That transform — plus the usual standard / min-max scalers and
a log transform for heavy-tailed byte counts — is re-implemented here on top
of numpy/scipy, with strict ``transform``/``inverse_transform`` round-trip
behaviour so generative models can be trained in a well-conditioned space and
still emit records in original units.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
from scipy import special

from repro.utils.validation import check_array, check_fitted


class ColumnTransform:
    """Interface for invertible 1-D column transforms."""

    def fit(self, values: np.ndarray) -> "ColumnTransform":
        raise NotImplementedError

    def transform(self, values: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)


class IdentityTransform(ColumnTransform):
    """No-op transform (useful as a pipeline placeholder)."""

    def fit(self, values: np.ndarray) -> "IdentityTransform":
        check_array(values, ndim=1, dtype=np.float64, name="values")
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64).copy()

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64).copy()


class StandardScaler(ColumnTransform):
    """Zero-mean, unit-variance scaling."""

    def __init__(self) -> None:
        self.mean_: Optional[float] = None
        self.std_: Optional[float] = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        arr = check_array(values, ndim=1, dtype=np.float64, allow_empty=False, name="values")
        self.mean_ = float(arr.mean())
        std = float(arr.std())
        self.std_ = std if std > 0 else 1.0
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        check_fitted(self, ["mean_", "std_"])
        arr = np.asarray(values, dtype=np.float64)
        return (arr - self.mean_) / self.std_

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        check_fitted(self, ["mean_", "std_"])
        arr = np.asarray(values, dtype=np.float64)
        return arr * self.std_ + self.mean_


class MinMaxScaler(ColumnTransform):
    """Scale values into ``[feature_min, feature_max]`` (default [0, 1])."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        lo, hi = feature_range
        if not hi > lo:
            raise ValueError("feature_range must be an increasing pair")
        self.feature_range = (float(lo), float(hi))
        self.data_min_: Optional[float] = None
        self.data_max_: Optional[float] = None

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        arr = check_array(values, ndim=1, dtype=np.float64, allow_empty=False, name="values")
        self.data_min_ = float(arr.min())
        self.data_max_ = float(arr.max())
        return self

    def _span(self) -> float:
        span = self.data_max_ - self.data_min_
        return span if span > 0 else 1.0

    def transform(self, values: np.ndarray) -> np.ndarray:
        check_fitted(self, ["data_min_", "data_max_"])
        arr = np.asarray(values, dtype=np.float64)
        lo, hi = self.feature_range
        unit = (arr - self.data_min_) / self._span()
        return unit * (hi - lo) + lo

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        check_fitted(self, ["data_min_", "data_max_"])
        arr = np.asarray(values, dtype=np.float64)
        lo, hi = self.feature_range
        unit = (arr - lo) / (hi - lo)
        return unit * self._span() + self.data_min_


class LogTransform(ColumnTransform):
    """``log1p``-style transform with an automatic offset for non-positive data.

    Heavy-tailed columns such as ``inputfilebytes`` become approximately
    Gaussian after a log transform, which stabilises both neural training and
    tree splits.
    """

    def __init__(self, base_offset: float = 1.0):
        self.base_offset = float(base_offset)
        self.offset_: Optional[float] = None

    def fit(self, values: np.ndarray) -> "LogTransform":
        arr = check_array(values, ndim=1, dtype=np.float64, allow_empty=False, name="values")
        min_val = float(arr.min())
        # Shift so the smallest value maps to base_offset (> 0) before the log.
        self.offset_ = self.base_offset - min_val if min_val < self.base_offset else 0.0
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        check_fitted(self, ["offset_"])
        arr = np.asarray(values, dtype=np.float64)
        return np.log(arr + self.offset_ + 1e-12)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        check_fitted(self, ["offset_"])
        arr = np.asarray(values, dtype=np.float64)
        return np.exp(arr) - self.offset_ - 1e-12


class GaussianQuantileTransform(ColumnTransform):
    """Map a column onto a standard normal via its empirical CDF.

    This is the transform the paper uses ("Gaussian quantile transformation
    from the scikit-learn library").  The forward direction interpolates the
    empirical CDF at ``n_quantiles`` reference points and applies the probit
    function; the inverse applies the normal CDF and interpolates the quantile
    function.  Values outside the training range are clipped to the range, as
    scikit-learn does.
    """

    #: Clip probabilities away from {0, 1} to keep the probit finite.
    _EPS = 1e-7

    def __init__(self, n_quantiles: int = 1000):
        if n_quantiles < 2:
            raise ValueError("n_quantiles must be at least 2")
        self.n_quantiles = int(n_quantiles)
        self.quantiles_: Optional[np.ndarray] = None
        self.references_: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "GaussianQuantileTransform":
        arr = check_array(values, ndim=1, dtype=np.float64, allow_empty=False, name="values")
        n_q = min(self.n_quantiles, arr.size)
        self.references_ = np.linspace(0.0, 1.0, n_q)
        self.quantiles_ = np.quantile(arr, self.references_)
        # Enforce monotonicity in the presence of numerical noise / ties.
        self.quantiles_ = np.maximum.accumulate(self.quantiles_)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        check_fitted(self, ["quantiles_", "references_"])
        arr = np.asarray(values, dtype=np.float64)
        arr = np.clip(arr, self.quantiles_[0], self.quantiles_[-1])
        # Empirical CDF via interpolation of (quantile -> reference).  Averaging
        # the forward and reverse interpolations handles plateaus from ties the
        # same way scikit-learn does.
        forward = np.interp(arr, self.quantiles_, self.references_)
        backward = 1.0 - np.interp(
            -arr, -self.quantiles_[::-1], (1.0 - self.references_)[::-1]
        )
        # Degenerate quantile tables — knots separated by subnormal gaps —
        # overflow np.interp's slope to ±inf and can leave NaN at the knots
        # (inf * 0).  Repair those entries from the nearest knot's reference
        # before combining, which also keeps the sum below warning-free.
        bad = ~(np.isfinite(forward) & np.isfinite(backward))
        if bad.any():
            idx = np.searchsorted(self.quantiles_, arr[bad], side="left")
            repaired = self.references_[np.clip(idx, 0, self.references_.size - 1)]
            forward[bad] = repaired
            backward[bad] = repaired
        prob = 0.5 * (forward + backward)
        prob = np.clip(prob, self._EPS, 1.0 - self._EPS)
        return special.ndtri(prob)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        check_fitted(self, ["quantiles_", "references_"])
        arr = np.asarray(values, dtype=np.float64)
        prob = special.ndtr(arr)
        prob = np.clip(prob, 0.0, 1.0)
        return np.interp(prob, self.references_, self.quantiles_)


class TransformPipeline(ColumnTransform):
    """Compose several column transforms, applied left to right."""

    def __init__(self, steps: Sequence[ColumnTransform]):
        if not steps:
            raise ValueError("TransformPipeline requires at least one step")
        self.steps: List[ColumnTransform] = list(steps)

    def fit(self, values: np.ndarray) -> "TransformPipeline":
        current = np.asarray(values, dtype=np.float64)
        for step in self.steps:
            current = step.fit_transform(current)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        current = np.asarray(values, dtype=np.float64)
        for step in self.steps:
            current = step.transform(current)
        return current

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        current = np.asarray(values, dtype=np.float64)
        for step in reversed(self.steps):
            current = step.inverse_transform(current)
        return current
