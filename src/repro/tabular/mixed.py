"""Whole-table encoding for neural generative models.

:class:`MixedEncoder` converts a mixed-type :class:`~repro.tabular.table.Table`
into a single dense float matrix: numerical columns go through a configurable
invertible transform (Gaussian quantile transform by default, matching the
paper), categorical columns become one-hot blocks.  The resulting
:class:`EncodedMatrix` remembers the block layout so models can apply the
right likelihood per block (Gaussian vs. categorical) and decoding can map
samples back to an original-space table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.tabular.encoding import OneHotEncoder
from repro.tabular.schema import ColumnKind, TableSchema
from repro.tabular.table import Table
from repro.tabular.transforms import ColumnTransform, GaussianQuantileTransform
from repro.utils.validation import check_fitted


def default_numerical_transform() -> GaussianQuantileTransform:
    """Factory for the paper's default numerical transform (picklable)."""
    return GaussianQuantileTransform(n_quantiles=1000)


@dataclass
class ColumnBlock:
    """Location of one original column inside the encoded matrix."""

    name: str
    kind: ColumnKind
    start: int
    width: int

    @property
    def stop(self) -> int:
        return self.start + self.width

    @property
    def slice(self) -> slice:
        return slice(self.start, self.stop)


@dataclass
class EncodedMatrix:
    """Dense encoding of a table plus its block layout."""

    values: np.ndarray
    blocks: List[ColumnBlock]

    @property
    def n_rows(self) -> int:
        return self.values.shape[0]

    @property
    def n_features(self) -> int:
        return self.values.shape[1]

    @property
    def numerical_indices(self) -> np.ndarray:
        """Flat indices of all numerical features in the encoded matrix."""
        idx: List[int] = []
        for b in self.blocks:
            if b.kind is ColumnKind.NUMERICAL:
                idx.extend(range(b.start, b.stop))
        return np.asarray(idx, dtype=np.intp)

    @property
    def categorical_blocks(self) -> List[ColumnBlock]:
        return [b for b in self.blocks if b.kind is ColumnKind.CATEGORICAL]

    def block(self, name: str) -> ColumnBlock:
        for b in self.blocks:
            if b.name == name:
                return b
        raise KeyError(f"no encoded block for column {name!r}")


class MixedEncoder:
    """Encode/decode a mixed-type table to/from one dense float matrix.

    Parameters
    ----------
    numerical_transform_factory:
        Callable producing a fresh :class:`ColumnTransform` per numerical
        column.  Defaults to the paper's Gaussian quantile transform.
    """

    def __init__(
        self,
        numerical_transform_factory: Optional[Callable[[], ColumnTransform]] = None,
    ) -> None:
        self._factory = numerical_transform_factory or default_numerical_transform
        self.schema_: Optional[TableSchema] = None
        self.numerical_transforms_: Optional[Dict[str, ColumnTransform]] = None
        self.onehot_encoders_: Optional[Dict[str, OneHotEncoder]] = None
        self.blocks_: Optional[List[ColumnBlock]] = None

    # -- fitting -----------------------------------------------------------
    def fit(self, table: Table) -> "MixedEncoder":
        self.schema_ = table.schema
        self.numerical_transforms_ = {}
        self.onehot_encoders_ = {}
        blocks: List[ColumnBlock] = []
        cursor = 0
        for col in table.schema:
            if col.is_numerical:
                tf = self._factory()
                tf.fit(table[col.name])
                self.numerical_transforms_[col.name] = tf
                blocks.append(ColumnBlock(col.name, col.kind, cursor, 1))
                cursor += 1
            else:
                enc = OneHotEncoder()
                enc.fit(table.categorical_column(col.name))
                self.onehot_encoders_[col.name] = enc
                blocks.append(ColumnBlock(col.name, col.kind, cursor, enc.n_categories))
                cursor += enc.n_categories
        self.blocks_ = blocks
        return self

    @property
    def n_features(self) -> int:
        check_fitted(self, ["blocks_"])
        return self.blocks_[-1].stop if self.blocks_ else 0

    @property
    def output_dim(self) -> int:
        return self.n_features

    def category_cardinalities(self) -> List[int]:
        """Number of categories per categorical column, in schema order."""
        check_fitted(self, ["blocks_"])
        return [b.width for b in self.blocks_ if b.kind is ColumnKind.CATEGORICAL]

    # -- transform ---------------------------------------------------------
    def transform(self, table: Table) -> EncodedMatrix:
        check_fitted(self, ["schema_", "blocks_"])
        if table.schema != self.schema_:
            raise ValueError("table schema does not match the fitted schema")
        parts: List[np.ndarray] = []
        for col in self.schema_:
            if col.is_numerical:
                tf = self.numerical_transforms_[col.name]
                parts.append(tf.transform(table[col.name])[:, None])
            else:
                enc = self.onehot_encoders_[col.name]
                parts.append(enc.transform(table.categorical_column(col.name)))
        values = (
            np.concatenate(parts, axis=1)
            if parts
            else np.empty((len(table), 0), dtype=np.float64)
        )
        return EncodedMatrix(values=values, blocks=list(self.blocks_))

    def fit_transform(self, table: Table) -> EncodedMatrix:
        return self.fit(table).transform(table)

    # -- inverse -----------------------------------------------------------
    def inverse_transform(self, matrix: np.ndarray) -> Table:
        """Decode an encoded matrix (hard one-hots or soft probabilities)."""
        check_fitted(self, ["schema_", "blocks_"])
        mat = np.asarray(matrix, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[1] != self.n_features:
            raise ValueError(
                f"expected matrix with {self.n_features} features, got shape {mat.shape}"
            )
        data: Dict[str, object] = {}
        for block in self.blocks_:
            chunk = mat[:, block.slice]
            if block.kind is ColumnKind.NUMERICAL:
                tf = self.numerical_transforms_[block.name]
                data[block.name] = tf.inverse_transform(chunk[:, 0])
            else:
                enc = self.onehot_encoders_[block.name]
                data[block.name] = enc.inverse_transform_column(chunk)
        return Table(data, self.schema_)

    # -- label-coded view (for SMOTE / boosting) -----------------------------
    def transform_codes(self, table: Table) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(numerical_matrix, categorical_code_matrix)``.

        Numerical columns are transformed to the model space; categorical
        columns become integer codes (one column each).  Used by models that
        prefer ordinal codes over one-hot blocks (SMOTE, gradient boosting).
        """
        check_fitted(self, ["schema_"])
        if table.schema != self.schema_:
            raise ValueError("table schema does not match the fitted schema")
        num_parts: List[np.ndarray] = []
        cat_parts: List[np.ndarray] = []
        for col in self.schema_:
            if col.is_numerical:
                tf = self.numerical_transforms_[col.name]
                num_parts.append(tf.transform(table[col.name])[:, None])
            else:
                enc = self.onehot_encoders_[col.name]
                cat_parts.append(
                    enc.transform_codes(table.categorical_column(col.name))[:, None]
                )
        num = (
            np.concatenate(num_parts, axis=1)
            if num_parts
            else np.empty((len(table), 0))
        )
        cat = (
            np.concatenate(cat_parts, axis=1)
            if cat_parts
            else np.empty((len(table), 0), dtype=np.int64)
        )
        return num, cat

    def inverse_transform_codes(
        self, numerical: np.ndarray, categorical_codes: np.ndarray
    ) -> Table:
        """Inverse of :meth:`transform_codes`."""
        check_fitted(self, ["schema_"])
        num = np.asarray(numerical, dtype=np.float64)
        cat = np.asarray(categorical_codes)
        data: Dict[str, object] = {}
        num_i = 0
        cat_i = 0
        for col in self.schema_:
            if col.is_numerical:
                tf = self.numerical_transforms_[col.name]
                data[col.name] = tf.inverse_transform(num[:, num_i])
                num_i += 1
            else:
                enc = self.onehot_encoders_[col.name]
                codes = np.rint(cat[:, cat_i]).astype(np.int64)
                codes = np.clip(codes, 0, enc.n_categories - 1)
                data[col.name] = enc.label_encoder.decode_column(codes)
                cat_i += 1
        return Table(data, self.schema_)
