"""Dataset splitting utilities.

The paper uses a plain 80/20 split of 150 days of job records; the generator
also supports a temporal split (train on the first fraction of the observation
window, test on the rest), which is the natural evaluation protocol for
time-stamped workloads, plus k-fold indices for cross-validated metric
estimates.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.tabular.table import Table
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_probability


def train_test_split(
    table: Table,
    test_fraction: float = 0.2,
    *,
    shuffle: bool = True,
    seed: SeedLike = None,
) -> Tuple[Table, Table]:
    """Split a table into train/test partitions.

    Parameters
    ----------
    table:
        Input table.
    test_fraction:
        Fraction of rows assigned to the test partition.
    shuffle:
        Shuffle rows before splitting (the paper's protocol); when ``False``
        the first rows become the training set.
    seed:
        Seed for the shuffle.
    """
    check_probability(test_fraction, "test_fraction")
    n = len(table)
    n_test = int(round(n * test_fraction))
    n_test = min(max(n_test, 0), n)
    indices = np.arange(n)
    if shuffle:
        indices = as_rng(seed).permutation(n)
    test_idx = indices[:n_test]
    train_idx = indices[n_test:]
    return table.take(train_idx), table.take(test_idx)


def temporal_split(
    table: Table, time_column: str, test_fraction: float = 0.2
) -> Tuple[Table, Table]:
    """Split chronologically on ``time_column``: earliest rows train, latest test."""
    check_probability(test_fraction, "test_fraction")
    times = np.asarray(table[time_column], dtype=np.float64)
    order = np.argsort(times, kind="stable")
    n = len(table)
    n_test = int(round(n * test_fraction))
    split_at = n - n_test
    return table.take(order[:split_at]), table.take(order[split_at:])


def kfold_indices(
    n_rows: int, n_folds: int = 5, *, shuffle: bool = True, seed: SeedLike = None
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_indices, test_indices)`` pairs for k-fold validation."""
    if n_folds < 2:
        raise ValueError("n_folds must be at least 2")
    if n_rows < n_folds:
        raise ValueError(f"cannot split {n_rows} rows into {n_folds} folds")
    indices = np.arange(n_rows)
    if shuffle:
        indices = as_rng(seed).permutation(n_rows)
    folds: List[np.ndarray] = np.array_split(indices, n_folds)
    for i in range(n_folds):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(n_folds) if j != i])
        yield train_idx, test_idx
