"""Categorical encoders: label encoding, one-hot encoding, frequency tables.

Categorical PanDA columns (computing site, project, …) are heavily imbalanced,
so every encoder keeps the category order sorted by descending training-set
frequency.  That makes "top-k category" reports (paper Fig. 4b) and
training-by-sampling in CTABGAN+ straightforward.

All encoders accept either raw string sequences or a dictionary-encoded
:class:`~repro.tabular.table.CategoricalColumn`.  The column form takes a
codes fast path — counting via ``np.bincount`` on the codes and remapping
through a vocabulary-sized lookup instead of re-uniquing every row's string
— and is bit-identical to the string path: the fitted ``categories_`` /
``counts_`` ordering and every transform output match exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tabular.table import CODES_DTYPE, CategoricalColumn
from repro.utils.validation import check_fitted

Values = Union[Sequence[str], np.ndarray, CategoricalColumn]


def _column_category_counts(
    column: CategoricalColumn,
) -> Tuple[np.ndarray, np.ndarray]:
    """Lexicographically sorted present categories and their counts.

    Equivalent to ``np.unique(column.decode(), return_counts=True)`` without
    materialising any strings beyond the vocabulary.
    """
    vocab = column.vocab_array()
    counts = np.bincount(column.codes, minlength=vocab.size)
    order = np.argsort(vocab, kind="stable")
    vocab, counts = vocab[order], counts[order]
    present = counts > 0
    return vocab[present], counts[present]


class LabelEncoder:
    """Map string categories to contiguous integer codes.

    Categories are ordered by descending frequency (ties broken
    lexicographically) so code 0 is always the most common category.
    Unknown categories at transform time map to the most frequent code by
    default, or raise when ``handle_unknown="error"``.
    """

    def __init__(self, handle_unknown: str = "most_frequent"):
        if handle_unknown not in ("most_frequent", "error"):
            raise ValueError("handle_unknown must be 'most_frequent' or 'error'")
        self.handle_unknown = handle_unknown
        self.categories_: Optional[np.ndarray] = None
        self.counts_: Optional[np.ndarray] = None
        self._code_of: Optional[Dict[str, int]] = None

    @property
    def n_categories(self) -> int:
        check_fitted(self, ["categories_"])
        return int(self.categories_.size)

    def fit(self, values: Values) -> "LabelEncoder":
        if isinstance(values, CategoricalColumn):
            if len(values) == 0:
                raise ValueError("cannot fit LabelEncoder on an empty column")
            cats, counts = _column_category_counts(values)
        else:
            arr = np.asarray(values).astype(str)
            if arr.size == 0:
                raise ValueError("cannot fit LabelEncoder on an empty column")
            cats, counts = np.unique(arr, return_counts=True)
        order = np.lexsort((cats, -counts))
        self.categories_ = cats[order]
        self.counts_ = counts[order]
        self._code_of = {c: i for i, c in enumerate(self.categories_)}
        return self

    def transform(self, values: Values) -> np.ndarray:
        check_fitted(self, ["categories_"])
        if isinstance(values, CategoricalColumn):
            return self._transform_column(values)
        arr = np.asarray(values).astype(str)
        codes = np.empty(arr.shape[0], dtype=np.int64)
        # Vectorised lookup via sorted search on the category table.
        sorter = np.argsort(self.categories_)
        pos = np.searchsorted(self.categories_, arr, sorter=sorter)
        pos = np.clip(pos, 0, self.categories_.size - 1)
        candidate = sorter[pos]
        known = self.categories_[candidate] == arr
        codes[known] = candidate[known]
        if not known.all():
            if self.handle_unknown == "error":
                unknown = sorted(set(arr[~known]))
                raise ValueError(f"unknown categories: {unknown[:5]}")
            codes[~known] = 0
        return codes

    def _transform_column(self, column: CategoricalColumn) -> np.ndarray:
        """Codes fast path: one vocabulary-sized lookup instead of per-row search."""
        vocab = column.vocab_array()
        sorter = np.argsort(self.categories_)
        pos = np.searchsorted(self.categories_, vocab, sorter=sorter)
        pos = np.clip(pos, 0, self.categories_.size - 1)
        candidate = sorter[pos]
        known = self.categories_[candidate] == vocab
        remap = np.where(known, candidate, 0).astype(np.int64)
        codes = remap[column.codes]
        if not known.all() and column.codes.size:
            # Only vocabulary entries actually used by a row count as unknown.
            used_unknown = ~known[column.codes]
            if used_unknown.any() and self.handle_unknown == "error":
                used = np.unique(column.codes[used_unknown])
                unknown = sorted(set(vocab[used].tolist()))
                raise ValueError(f"unknown categories: {unknown[:5]}")
        return codes

    def fit_transform(self, values: Values) -> np.ndarray:
        return self.fit(values).transform(values)

    def inverse_transform(self, codes: Sequence[int]) -> np.ndarray:
        check_fitted(self, ["categories_"])
        idx = np.asarray(codes, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.categories_.size):
            raise ValueError("codes out of range for fitted categories")
        return self.categories_[idx]

    def decode_column(self, codes: Sequence[int]) -> CategoricalColumn:
        """Decode codes into a :class:`CategoricalColumn` without materialising
        strings — the fitted categories become the column vocabulary."""
        check_fitted(self, ["categories_"])
        idx = np.asarray(codes, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.categories_.size):
            raise ValueError("codes out of range for fitted categories")
        return CategoricalColumn(
            idx.astype(CODES_DTYPE), tuple(self.categories_.tolist())
        )


class OneHotEncoder:
    """One-hot encode a single categorical column.

    Built on :class:`LabelEncoder`; produces a dense ``(n, n_categories)``
    float matrix, with ``inverse_transform`` taking an argmax so it also
    accepts soft probability vectors emitted by generative models.
    """

    def __init__(self, handle_unknown: str = "most_frequent"):
        self.label_encoder = LabelEncoder(handle_unknown=handle_unknown)

    @property
    def categories_(self) -> Optional[np.ndarray]:
        return self.label_encoder.categories_

    @property
    def n_categories(self) -> int:
        return self.label_encoder.n_categories

    def fit(self, values: Values) -> "OneHotEncoder":
        self.label_encoder.fit(values)
        return self

    def transform(self, values: Values) -> np.ndarray:
        codes = self.label_encoder.transform(values)
        out = np.zeros((codes.shape[0], self.n_categories), dtype=np.float64)
        out[np.arange(codes.shape[0]), codes] = 1.0
        return out

    def fit_transform(self, values: Values) -> np.ndarray:
        return self.fit(values).transform(values)

    def transform_codes(self, values: Values) -> np.ndarray:
        """Return integer codes (delegates to the underlying label encoder)."""
        return self.label_encoder.transform(values)

    def inverse_transform(self, matrix: np.ndarray) -> np.ndarray:
        """Decode a one-hot (or probability) matrix back to category strings."""
        check_fitted(self.label_encoder, ["categories_"])
        mat = np.asarray(matrix, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[1] != self.n_categories:
            raise ValueError(
                f"expected matrix of shape (n, {self.n_categories}), got {mat.shape}"
            )
        codes = np.argmax(mat, axis=1)
        return self.label_encoder.inverse_transform(codes)

    def inverse_transform_column(self, matrix: np.ndarray) -> CategoricalColumn:
        """Like :meth:`inverse_transform` but keeps the result dictionary-encoded."""
        check_fitted(self.label_encoder, ["categories_"])
        mat = np.asarray(matrix, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[1] != self.n_categories:
            raise ValueError(
                f"expected matrix of shape (n, {self.n_categories}), got {mat.shape}"
            )
        codes = np.argmax(mat, axis=1)
        return self.label_encoder.decode_column(codes)


class FrequencyTable:
    """Empirical categorical distribution with sampling support.

    Used by the workload generator (to draw sites/projects with realistic
    imbalance) and by metrics (to compare category frequencies).
    """

    def __init__(self, categories: Sequence[str], probabilities: Sequence[float]):
        cats = np.asarray(categories).astype(str)
        probs = np.asarray(probabilities, dtype=np.float64)
        if cats.shape != probs.shape:
            raise ValueError("categories and probabilities must have the same length")
        if cats.size == 0:
            raise ValueError("FrequencyTable requires at least one category")
        if (probs < 0).any():
            raise ValueError("probabilities must be non-negative")
        total = probs.sum()
        if total <= 0:
            raise ValueError("probabilities must sum to a positive value")
        order = np.argsort(-probs, kind="stable")
        self.categories = cats[order]
        self.probabilities = probs[order] / total

    @classmethod
    def from_values(cls, values: Sequence[str]) -> "FrequencyTable":
        """Estimate the table from observed values."""
        arr = np.asarray(values).astype(str)
        cats, counts = np.unique(arr, return_counts=True)
        return cls(cats, counts.astype(np.float64))

    def probability_of(self, category: str) -> float:
        """Return the probability of ``category`` (0.0 if unseen)."""
        hit = np.nonzero(self.categories == str(category))[0]
        return float(self.probabilities[hit[0]]) if hit.size else 0.0

    def top_k(self, k: int) -> List[Tuple[str, float]]:
        """Return the ``k`` most probable categories with their probabilities."""
        k = min(k, self.categories.size)
        return [(str(self.categories[i]), float(self.probabilities[i])) for i in range(k)]

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` categories i.i.d. from the table."""
        idx = rng.choice(self.categories.size, size=n, p=self.probabilities)
        return self.categories[idx]

    def entropy(self) -> float:
        """Shannon entropy (nats) of the distribution."""
        p = self.probabilities[self.probabilities > 0]
        return float(-(p * np.log(p)).sum())
