"""Table I/O: CSV (human-readable interchange) and NPZ (fast binary).

Real PanDA exports arrive as CSV-ish dumps; synthetic traces produced by this
library round-trip through either format with the schema embedded, so a
saved table is self-describing.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.tabular.schema import TableSchema
from repro.tabular.table import CategoricalColumn, Table

PathLike = Union[str, Path]

#: Key used to store the JSON-encoded schema inside NPZ archives / CSV headers.
_SCHEMA_KEY = "__schema__"

#: Suffix of the companion vocabulary array stored per categorical column in
#: NPZ archives written by this module.  Archives without these keys are the
#: legacy unicode-array layout and are still readable.
_VOCAB_SUFFIX = "::vocab"


def write_csv(table: Table, path: PathLike) -> None:
    """Write a table to CSV with a schema comment line.

    The first line is ``# schema: {json}`` so :func:`read_csv` can restore
    column kinds without guessing.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        fh.write("# schema: " + json.dumps(table.schema.to_dict()) + "\n")
        writer = csv.writer(fh)
        writer.writerow(table.columns)
        columns = [table[c] for c in table.columns]
        for i in range(len(table)):
            writer.writerow([col[i] for col in columns])


def read_csv(path: PathLike, schema: Optional[TableSchema] = None) -> Table:
    """Read a table from CSV.

    If the file carries a ``# schema:`` comment (as written by
    :func:`write_csv`) it is used; otherwise ``schema`` must be provided.
    """
    path = Path(path)
    with path.open("r", newline="") as fh:
        first = fh.readline()
        embedded_schema: Optional[TableSchema] = None
        if first.startswith("# schema:"):
            embedded_schema = TableSchema.from_dict(json.loads(first.split(":", 1)[1]))
            header_line = fh.readline()
        else:
            header_line = first
        header = next(csv.reader([header_line]))
        rows = list(csv.reader(fh))
    use_schema = schema or embedded_schema
    if use_schema is None:
        raise ValueError(
            "no schema found in file and none provided; pass schema= explicitly"
        )
    data: Dict[str, List[str]] = {name: [] for name in header}
    for row in rows:
        if not row:
            continue
        for name, value in zip(header, row):
            data[name].append(value)
    return Table({name: data[name] for name in use_schema.names}, use_schema)


def write_npz(table: Table, path: PathLike) -> None:
    """Write a table to a compressed NPZ archive (schema embedded).

    Categorical columns are stored dictionary-encoded — an ``int32`` codes
    array under the column name plus the vocabulary under
    ``<name>::vocab`` — which is both smaller and cheaper to load than the
    legacy per-row unicode arrays.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: Dict[str, np.ndarray] = {}
    for name in table.columns:
        if name in table.schema.categorical:
            column = table.categorical_column(name)
            payload[name] = column.codes
            payload[name + _VOCAB_SUFFIX] = column.vocab_array()
        else:
            payload[name] = table[name]
    payload[_SCHEMA_KEY] = np.asarray(json.dumps(table.schema.to_dict()))
    np.savez_compressed(path, **payload)


def read_npz(path: PathLike) -> Table:
    """Read a table previously written with :func:`write_npz`.

    Understands both the dictionary-encoded layout (codes + ``::vocab``
    companion arrays) and legacy archives that stored categoricals as
    unicode arrays.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        if _SCHEMA_KEY not in archive:
            raise ValueError(f"{path} does not contain an embedded table schema")
        schema = TableSchema.from_dict(json.loads(str(archive[_SCHEMA_KEY])))
        keys = set(archive.files)
        data: Dict[str, object] = {}
        for name in schema.names:
            vocab_key = name + _VOCAB_SUFFIX
            if vocab_key in keys:
                data[name] = CategoricalColumn(
                    archive[name], tuple(archive[vocab_key].tolist())
                )
            else:
                data[name] = archive[name]
    return Table(data, schema)
