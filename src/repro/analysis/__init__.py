"""Workload analysis extensions.

The paper's conclusion lists follow-up directions that go beyond the four
surrogate models; this sub-package implements the ones that can be built on
the same substrate:

* :mod:`~repro.analysis.temporal` — spectral analysis of the job-submission
  time series (limitation 1: "whether or not there are periodic ups and downs
  due to weekends has not been investigated"), with helpers to compare
  real-vs-synthetic periodicity.
* :mod:`~repro.analysis.anomaly` — diffusion-based anomaly scoring of job
  records (limitation 2: diffusion models' higher error in data-scarce
  regions "makes it a competent detector for anomalies").
* :mod:`~repro.analysis.popularity` — dataset-popularity / reuse-factor
  estimation from job streams (limitation 3: "predict dataset reuse factors
  or identify popular datasets").
"""

from repro.analysis.temporal import (
    TemporalProfile,
    arrival_counts,
    compare_temporal_profiles,
    dominant_periods,
    periodogram,
    weekly_profile,
)
from repro.analysis.anomaly import DiffusionAnomalyDetector
from repro.analysis.popularity import DatasetPopularity, dataset_popularity, reuse_factor_table

__all__ = [
    "TemporalProfile",
    "arrival_counts",
    "periodogram",
    "dominant_periods",
    "weekly_profile",
    "compare_temporal_profiles",
    "DiffusionAnomalyDetector",
    "DatasetPopularity",
    "dataset_popularity",
    "reuse_factor_table",
]
