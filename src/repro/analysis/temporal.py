"""Temporal analysis of job-submission streams.

The paper's first stated limitation is that the temporal structure of the job
stream (diurnal and weekly cycles, campaign bursts) was only eyeballed through
the ``creationtime`` histogram.  This module makes that analysis quantitative:

* :func:`arrival_counts` bins creation times into a regular series,
* :func:`periodogram` computes its discrete Fourier power spectrum,
* :func:`dominant_periods` extracts the strongest periodic components (a
  healthy analysis-job stream shows peaks near 1 day and 7 days),
* :func:`weekly_profile` folds the series onto the week, and
* :func:`compare_temporal_profiles` quantifies how well a synthetic trace
  reproduces the real trace's temporal structure — the check the paper defers
  to future work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.tabular.table import Table


def arrival_counts(
    times_days: np.ndarray, *, window_days: Optional[float] = None, bins_per_day: int = 8
) -> Tuple[np.ndarray, np.ndarray]:
    """Bin creation times (days) into a regular count series.

    Returns ``(bin_centers_days, counts)``.
    """
    t = np.asarray(times_days, dtype=np.float64)
    if t.size == 0:
        raise ValueError("times_days must be non-empty")
    if bins_per_day < 1:
        raise ValueError("bins_per_day must be at least 1")
    horizon = float(window_days) if window_days is not None else float(np.ceil(t.max() + 1e-9))
    horizon = max(horizon, 1.0 / bins_per_day)
    n_bins = max(int(round(horizon * bins_per_day)), 1)
    edges = np.linspace(0.0, horizon, n_bins + 1)
    counts, _ = np.histogram(t, bins=edges)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, counts.astype(np.float64)


def periodogram(counts: np.ndarray, bins_per_day: int = 8) -> Tuple[np.ndarray, np.ndarray]:
    """Power spectrum of a count series.

    Returns ``(periods_days, power)`` for the positive-frequency components,
    sorted by increasing frequency (decreasing period).  The mean is removed
    so the zero-frequency component does not dominate.
    """
    x = np.asarray(counts, dtype=np.float64)
    if x.size < 4:
        raise ValueError("need at least 4 samples for a periodogram")
    x = x - x.mean()
    spectrum = np.fft.rfft(x)
    power = np.abs(spectrum) ** 2
    freqs = np.fft.rfftfreq(x.size, d=1.0 / bins_per_day)  # cycles per day
    # Skip the zero-frequency bin.
    with np.errstate(divide="ignore"):
        periods = np.where(freqs > 0, 1.0 / np.maximum(freqs, 1e-12), np.inf)
    return periods[1:], power[1:]


def dominant_periods(
    times_days: np.ndarray,
    *,
    bins_per_day: int = 8,
    top_k: int = 3,
    min_period_days: float = 0.2,
) -> Sequence[float]:
    """The ``top_k`` strongest periodic components of the submission stream (days)."""
    _, counts = arrival_counts(times_days, bins_per_day=bins_per_day)
    periods, power = periodogram(counts, bins_per_day=bins_per_day)
    mask = periods >= min_period_days
    periods, power = periods[mask], power[mask]
    order = np.argsort(-power)
    return [float(periods[i]) for i in order[:top_k]]


def weekly_profile(times_days: np.ndarray, *, bins_per_day: int = 4) -> np.ndarray:
    """Mean relative submission rate folded onto the week.

    Returns an array of length ``7 * bins_per_day`` normalised to mean 1.0;
    index 0 corresponds to the start of day 0 (a Monday by convention of the
    generator's weekly cycle).
    """
    t = np.asarray(times_days, dtype=np.float64)
    if t.size == 0:
        raise ValueError("times_days must be non-empty")
    phase = (t % 7.0) * bins_per_day
    counts = np.bincount(phase.astype(np.int64), minlength=7 * bins_per_day).astype(np.float64)
    counts = counts[: 7 * bins_per_day]
    mean = counts.mean() if counts.mean() > 0 else 1.0
    return counts / mean


def _profile_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Correlation of two weekly profiles, 0.0 when either is degenerate.

    A constant profile (a perfectly flat workload, or one too small to show
    weekly structure) has zero variance, for which ``np.corrcoef`` would emit
    a RuntimeWarning and return NaN.  No weekly structure means nothing to
    correlate, so the degenerate result is defined as 0.0.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size < 2 or a.std() == 0.0 or b.std() == 0.0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


@dataclass
class TemporalProfile:
    """Summary of a job stream's temporal structure."""

    dominant_periods_days: Sequence[float]
    weekly_profile: np.ndarray
    weekend_suppression: float

    @classmethod
    def from_times(cls, times_days: np.ndarray, *, bins_per_day: int = 8) -> "TemporalProfile":
        weekly = weekly_profile(times_days, bins_per_day=4)
        weekday = weekly[: 5 * 4].mean()
        weekend = weekly[5 * 4 :].mean()
        suppression = float(1.0 - weekend / weekday) if weekday > 0 else 0.0
        return cls(
            dominant_periods_days=dominant_periods(times_days, bins_per_day=bins_per_day),
            weekly_profile=weekly,
            weekend_suppression=suppression,
        )


def compare_temporal_profiles(
    real: Table, synthetic: Table, *, time_column: str = "creationtime"
) -> Dict[str, float]:
    """Quantify how well a synthetic trace reproduces the real temporal structure.

    Returns a dict with the correlation of the weekly profiles, the absolute
    gap in weekend suppression, and whether the synthetic stream shares the
    real stream's strongest period (within 20%).
    """
    real_profile = TemporalProfile.from_times(np.asarray(real[time_column], dtype=np.float64))
    synth_profile = TemporalProfile.from_times(np.asarray(synthetic[time_column], dtype=np.float64))

    weekly_corr = _profile_correlation(real_profile.weekly_profile, synth_profile.weekly_profile)
    suppression_gap = abs(real_profile.weekend_suppression - synth_profile.weekend_suppression)
    real_top = real_profile.dominant_periods_days[0]
    synth_top = synth_profile.dominant_periods_days[0]
    period_match = float(abs(real_top - synth_top) <= 0.2 * real_top)
    return {
        "weekly_profile_correlation": weekly_corr,
        "weekend_suppression_real": real_profile.weekend_suppression,
        "weekend_suppression_synthetic": synth_profile.weekend_suppression,
        "weekend_suppression_gap": suppression_gap,
        "dominant_period_real_days": float(real_top),
        "dominant_period_synthetic_days": float(synth_top),
        "dominant_period_match": period_match,
    }
