"""Dataset popularity and reuse-factor analysis.

The paper's final future-work item suggests looking at the data from the
dataset perspective: "predict dataset reuse factors or identify popular
datasets".  The raw-record table produced by the generator keeps the input
dataset name per job, so reuse statistics can be computed directly; this
module provides those aggregations plus a simple popularity summary usable as
a target for downstream predictive models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.tabular.schema import TableSchema
from repro.tabular.table import Table


@dataclass
class DatasetPopularity:
    """Aggregated usage statistics of one dataset."""

    name: str
    n_uses: int
    total_bytes_read: float
    first_use_day: float
    last_use_day: float

    @property
    def reuse_factor(self) -> int:
        """Number of times the dataset was read beyond its first use."""
        return max(self.n_uses - 1, 0)

    @property
    def active_span_days(self) -> float:
        return self.last_use_day - self.first_use_day


def dataset_popularity(
    raw_records: Table,
    *,
    dataset_column: str = "inputdatasetname",
    time_column: str = "creationtime",
    bytes_column: str = "inputfilebytes",
) -> List[DatasetPopularity]:
    """Per-dataset usage statistics, sorted by descending use count."""
    if dataset_column not in raw_records:
        raise KeyError(f"column {dataset_column!r} not present in the table")
    names = np.asarray(raw_records[dataset_column]).astype(str)
    times = np.asarray(raw_records[time_column], dtype=np.float64)
    volumes = np.asarray(raw_records[bytes_column], dtype=np.float64)

    uniques, inverse = np.unique(names, return_inverse=True)
    counts = np.bincount(inverse)
    total_bytes = np.bincount(inverse, weights=volumes)
    first_use = np.full(uniques.size, np.inf)
    last_use = np.full(uniques.size, -np.inf)
    np.minimum.at(first_use, inverse, times)
    np.maximum.at(last_use, inverse, times)

    order = np.argsort(-counts, kind="stable")
    return [
        DatasetPopularity(
            name=str(uniques[i]),
            n_uses=int(counts[i]),
            total_bytes_read=float(total_bytes[i]),
            first_use_day=float(first_use[i]),
            last_use_day=float(last_use[i]),
        )
        for i in order
    ]


def reuse_factor_table(raw_records: Table, **kwargs) -> Table:
    """Summarise reuse statistics as a small mixed-type table.

    The resulting table (one row per dataset: reuse factor, bytes read, active
    span, project and datatype parsed from the name) is a ready-made target
    for the boosting regressor, enabling the "predict dataset reuse factors"
    follow-up the paper suggests.
    """
    from repro.panda.daod import parse_dataset_name

    stats = dataset_popularity(raw_records, **kwargs)
    projects = []
    datatypes = []
    for record in stats:
        try:
            parsed = parse_dataset_name(record.name)
            projects.append(parsed["project"])
            datatypes.append(parsed["datatype"])
        except ValueError:
            projects.append("unknown")
            datatypes.append("unknown")

    schema = TableSchema.from_columns(
        numerical=["reuse_factor", "total_gigabytes", "active_span_days"],
        categorical=["project", "datatype"],
    )
    data = {
        "reuse_factor": [float(s.reuse_factor) for s in stats],
        "total_gigabytes": [s.total_bytes_read / 1e9 for s in stats],
        "active_span_days": [s.active_span_days for s in stats],
        "project": projects,
        "datatype": datatypes,
    }
    return Table(data, schema)


def top_datasets(raw_records: Table, k: int = 10, **kwargs) -> List[DatasetPopularity]:
    """The ``k`` most-used datasets (the "identify popular datasets" question)."""
    return dataset_popularity(raw_records, **kwargs)[:k]
