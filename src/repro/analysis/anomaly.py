"""Diffusion-based anomaly scoring of job records.

The paper observes (conclusion, limitation 2) that diffusion models make
higher errors in data-scarce regions and that this property "makes it a
competent detector for anomalies", citing Livernoche et al. (2024).  This
module turns a fitted :class:`~repro.models.tabddpm.TabDDPMSurrogate` into an
anomaly scorer: a record is noised to a handful of intermediate timesteps, the
denoiser predicts the clean record, and the reconstruction error (Gaussian
error on numerical features, cross-entropy on categorical features) averaged
over timesteps is the anomaly score.  Records unlike anything seen during
training denoise poorly and receive high scores.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.models.tabddpm.model import TabDDPMSurrogate
from repro.nn import Tensor, no_grad
from repro.tabular.table import Table
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_fitted


class DiffusionAnomalyDetector:
    """Score how unlikely each record is under a fitted TabDDPM surrogate.

    Parameters
    ----------
    surrogate:
        A fitted :class:`TabDDPMSurrogate`.
    timesteps:
        Diffusion timesteps at which reconstruction is evaluated.  Defaults to
        a small set early in the chain (roughly the 4%, 10% and 20% marks),
        where most of the signal is still present and reconstruction error is
        dominated by how well the record sits on the learned data manifold
        rather than by the injected noise.
    n_repeats:
        Number of independent noise draws per timestep (averaged), trading
        cost for score variance.
    """

    def __init__(
        self,
        surrogate: TabDDPMSurrogate,
        *,
        timesteps: Optional[Sequence[int]] = None,
        n_repeats: int = 2,
        seed: SeedLike = 0,
    ) -> None:
        if not surrogate.is_fitted:
            raise ValueError("the TabDDPM surrogate must be fitted before anomaly scoring")
        if n_repeats < 1:
            raise ValueError("n_repeats must be at least 1")
        self.surrogate = surrogate
        total = surrogate.config.n_timesteps
        if timesteps is None:
            timesteps = sorted({max(1, total // 25), max(2, total // 10), max(3, total // 5)})
        timesteps = [int(t) for t in timesteps]
        if any(t < 0 or t >= total for t in timesteps):
            raise ValueError(f"timesteps must lie in [0, {total})")
        self.timesteps = timesteps
        self.n_repeats = int(n_repeats)
        self._rng = as_rng(seed)
        self.calibration_scores_: Optional[np.ndarray] = None

    # -- scoring ------------------------------------------------------------------
    def score(self, table: Table) -> np.ndarray:
        """Anomaly score per record (higher = more anomalous)."""
        surrogate = self.surrogate
        encoder = surrogate._encoder
        encoded = encoder.transform(table).values
        num_idx = surrogate._numerical_indices
        n = encoded.shape[0]
        scores = np.zeros(n, dtype=np.float64)

        for t in self.timesteps:
            for _ in range(self.n_repeats):
                t_vector = np.full(n, t, dtype=np.int64)
                noisy = np.empty_like(encoded)
                if num_idx.size:
                    noise = self._rng.standard_normal((n, num_idx.size))
                    noisy[:, num_idx] = surrogate._gaussian.q_sample(encoded[:, num_idx], t_vector, noise)
                for block, diffusion in surrogate._multinomials:
                    noisy[:, block.slice] = diffusion.q_sample(encoded[:, block.slice], t_vector, self._rng)

                with no_grad():
                    prediction = surrogate._denoiser(Tensor(noisy), t_vector).numpy()

                if num_idx.size:
                    eps_pred = prediction[:, num_idx]
                    x0_hat = surrogate._gaussian.predict_x0_from_eps(noisy[:, num_idx], t_vector, eps_pred)
                    scores += np.mean((x0_hat - encoded[:, num_idx]) ** 2, axis=1)
                for block, _diffusion in surrogate._multinomials:
                    logits = prediction[:, block.start : block.stop]
                    logits = logits - logits.max(axis=1, keepdims=True)
                    log_probs = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
                    true_onehot = encoded[:, block.slice]
                    scores += -(true_onehot * log_probs).sum(axis=1)

        return scores / (len(self.timesteps) * self.n_repeats)

    # -- calibration --------------------------------------------------------------
    def calibrate(self, reference: Table) -> "DiffusionAnomalyDetector":
        """Store reference scores so :meth:`is_anomalous` can use a percentile threshold."""
        self.calibration_scores_ = np.sort(self.score(reference))
        return self

    def is_anomalous(self, table: Table, *, percentile: float = 99.0) -> np.ndarray:
        """Boolean mask of records scoring above the calibrated percentile."""
        check_fitted(self, ["calibration_scores_"])
        if not 0.0 < percentile < 100.0:
            raise ValueError("percentile must be in (0, 100)")
        threshold = np.percentile(self.calibration_scores_, percentile)
        return self.score(table) > threshold
