"""Neural layers: Linear, activations, Dropout, LayerNorm, Embedding, MLP.

Only the layers the tabular surrogates use are provided.  Every layer stores
its parameters as :class:`~repro.nn.module.Parameter` tensors and composes
through :class:`Sequential`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.utils.rng import SeedLike, as_rng


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, *, bias: bool = True, seed: SeedLike = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = as_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform(in_features, out_features, rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class FusedLinear(Module):
    """``y = act(x W + b)`` as a single autograd node.

    The unfused path builds three graph nodes (matmul, bias add, activation)
    per layer, each allocating fresh gradient arrays on the way back.  This
    layer runs the identical float operations in the identical order — so the
    results (forward values *and* accumulated gradients) are bit-for-bit equal
    to ``Linear`` + activation — but records one node and back-propagates into
    pre-allocated weight/bias gradient buffers that are reused across steps.
    """

    _ACTIVATIONS = (None, "relu", "leaky_relu", "tanh", "sigmoid")

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: Optional[str] = None,
        *,
        negative_slope: float = 0.2,
        bias: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        if activation not in self._ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; options: {self._ACTIVATIONS}"
            )
        rng = as_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation
        self.negative_slope = float(negative_slope)
        self.weight = Parameter(init.kaiming_uniform(in_features, out_features, rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        # Gradient buffers, allocated lazily and reused every backward pass.
        self._grad_w: Optional[np.ndarray] = None
        self._grad_b: Optional[np.ndarray] = None

    def forward(self, x: Tensor) -> Tensor:
        weight, bias = self.weight, self.bias
        z = x.data @ weight.data
        if bias is not None:
            z += bias.data  # z is freshly allocated; in-place add is safe
        # Forward activation; keep exactly what the backward pass needs.
        act = self.activation
        if act == "relu":
            saved = z > 0
            data = z * saved
        elif act == "leaky_relu":
            saved = np.where(z > 0, 1.0, self.negative_slope)
            data = z * saved
        elif act == "tanh":
            data = np.tanh(z)
            saved = data
        elif act == "sigmoid":
            data = 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))
            saved = data
        else:
            saved = None
            data = z

        requires = is_grad_enabled() and (
            x.requires_grad or weight.requires_grad
            or (bias is not None and bias.requires_grad)
        )
        out = Tensor(data, requires_grad=requires)
        if not requires:
            return out
        out._prev = tuple(
            p for p in (x, weight, bias) if p is not None and p.requires_grad
        )

        def _backward() -> None:
            g = out.grad
            if act == "relu" or act == "leaky_relu":
                gz = g * saved
            elif act == "tanh":
                gz = g * (1.0 - saved ** 2)
            elif act == "sigmoid":
                gz = g * saved * (1.0 - saved)
            else:
                gz = g
            if bias is not None and bias.requires_grad:
                if bias.grad is None:
                    buf = bias._grad_buffer
                    if buf is None:
                        if self._grad_b is None:
                            self._grad_b = np.empty_like(bias.data)
                        buf = self._grad_b
                    np.sum(gz, axis=0, out=buf)
                    bias.grad = buf
                else:
                    bias.grad += gz.sum(axis=0)
            if weight.requires_grad:
                if weight.grad is None:
                    buf = weight._grad_buffer
                    if buf is None:
                        if self._grad_w is None:
                            self._grad_w = np.empty_like(weight.data)
                        buf = self._grad_w
                    np.matmul(x.data.T, gz, out=buf)
                    weight.grad = buf
                else:
                    weight.grad += x.data.T @ gz
            if x.requires_grad:
                gx = gz @ weight.data.T
                if x.grad is None:
                    x.grad = gx  # freshly allocated and owned: no copy needed
                else:
                    x.grad += gx
        out._backward = _backward
        return out


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.2):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, *, seed: SeedLike = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = as_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_shape))
        self.beta = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = ((x - mu) ** 2).mean(axis=-1, keepdims=True)
        normed = (x - mu) / ((var + self.eps) ** 0.5)
        return normed * self.gamma + self.beta


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int, *, seed: SeedLike = None):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("num_embeddings and embedding_dim must be positive")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), std=0.05, rng=seed))

    def forward(self, indices: np.ndarray) -> Tensor:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise ValueError("embedding indices out of range")
        return self.weight[idx]


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers: List[Module] = list(layers)

    def append(self, layer: Module) -> "Sequential":
        self.layers.append(layer)
        return self

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]


class Residual(Module):
    """Residual wrapper ``y = x + f(x)`` (dimensions must match)."""

    def __init__(self, inner: Module):
        super().__init__()
        self.inner = inner

    def forward(self, x: Tensor) -> Tensor:
        return x + self.inner(x)


class MLP(Module):
    """Multi-layer perceptron with a configurable activation and dropout.

    This is the backbone used by TVAE's encoder/decoder, the CTABGAN+
    generator/discriminator, and TabDDPM's denoiser.
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        *,
        activation: str = "relu",
        dropout: float = 0.0,
        layer_norm: bool = False,
        fused: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = as_rng(seed)
        acts = {
            "relu": ReLU,
            "leaky_relu": LeakyReLU,
            "tanh": Tanh,
            "sigmoid": Sigmoid,
        }
        if activation not in acts:
            raise ValueError(f"unknown activation {activation!r}; options: {sorted(acts)}")
        layers: List[Module] = []
        prev = in_features
        # The fused path collapses each Linear+activation pair into one graph
        # node (see :class:`FusedLinear`); it is bit-identical to the unfused
        # composition, including the weight-initialisation RNG draws.  Layer
        # normalisation sits between the affine map and the activation, so it
        # forces the unfused composition.
        use_fused = fused and not layer_norm
        for width in hidden:
            if use_fused:
                layers.append(FusedLinear(prev, width, activation, seed=rng))
            else:
                layers.append(Linear(prev, width, seed=rng))
                if layer_norm:
                    layers.append(LayerNorm(width))
                layers.append(acts[activation]())
            if dropout > 0:
                layers.append(Dropout(dropout, seed=rng))
            prev = width
        if use_fused:
            layers.append(FusedLinear(prev, out_features, None, seed=rng))
        else:
            layers.append(Linear(prev, out_features, seed=rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
