"""Optimisers and learning-rate schedules.

The paper trains every neural surrogate with a learning rate of 2e-4 decayed
by a cosine schedule; :class:`Adam` + :class:`CosineSchedule` reproduce that
setup.  A plain :class:`SGD` (with optional momentum) is included for tests
and ablations, along with global-norm gradient clipping.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser holding a parameter list.

    On construction the parameters are *flattened*: their ``.data`` arrays
    are repacked as views into one contiguous buffer and each parameter is
    handed a matching pre-allocated gradient buffer (a view into a second
    contiguous array) that the autograd layer fills in place.  When every
    gradient of a step landed in its buffer, the subclass update can run as a
    handful of whole-buffer operations instead of a dozen small numpy calls
    per parameter.  If a parameter's storage or gradient stops matching its
    views (e.g. after ``load_state_dict``), the update falls back to the
    per-parameter path, which shares the same state arrays.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)
        self._flatten()

    def _flatten(self) -> None:
        total = int(sum(p.data.size for p in self.parameters))
        self._flat_data = np.empty(total)
        self._flat_grad = np.zeros(total)
        self._data_views: List[np.ndarray] = []
        self._grad_views: List[np.ndarray] = []
        offset = 0
        for p in self.parameters:
            size = p.data.size
            view = self._flat_data[offset : offset + size].reshape(p.data.shape)
            np.copyto(view, p.data)
            p.data = view
            grad_view = self._flat_grad[offset : offset + size].reshape(p.data.shape)
            p._grad_buffer = grad_view
            self._data_views.append(view)
            self._grad_views.append(grad_view)
            offset += size

    def _flat_state(self, total: int) -> List[np.ndarray]:
        """Per-parameter views over a fresh zeroed flat state array."""
        flat = np.zeros(total)
        views: List[np.ndarray] = []
        offset = 0
        for p in self.parameters:
            views.append(flat[offset : offset + p.data.size].reshape(p.data.shape))
            offset += p.data.size
        views.insert(0, flat)
        return views

    def _flat_ready(self) -> bool:
        """True when every parameter is still backed by the flat buffers."""
        for p, data_view, grad_view in zip(self.parameters, self._data_views, self._grad_views):
            if p.data is not data_view or p.grad is not grad_view:
                return False
        return True

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum.

    The step is fully in place: the velocity and a per-parameter scratch
    buffer are pre-allocated, so no intermediate array is created per
    parameter per step.  The float operations (and therefore the resulting
    parameter values) are bit-identical to the textbook out-of-place update
    ``v = momentum * v + g; p -= lr * v``.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        total = self._flat_data.size
        self._flat_velocity, *self._velocity = self._flat_state(total)
        self._flat_scratch, *self._scratch = self._flat_state(total)

    def step(self) -> None:
        if self._flat_ready():
            grad = self._flat_grad
            if self.momentum > 0:
                velocity = self._flat_velocity
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            np.multiply(update, self.lr, out=self._flat_scratch)
            self._flat_data -= self._flat_scratch
            return
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            if self.momentum > 0:
                velocity = self._velocity[i]
                velocity *= self.momentum
                velocity += p.grad
                update = velocity
            else:
                update = p.grad
            np.multiply(update, self.lr, out=self._scratch[i])
            p.data -= self._scratch[i]


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with optional decoupled weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 2e-4,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        total = self._flat_data.size
        self._flat_m, *self._m = self._flat_state(total)
        self._flat_v, *self._v = self._flat_state(total)
        self._flat_s1, *self._s1 = self._flat_state(total)
        self._flat_s2, *self._s2 = self._flat_state(total)
        self._t = 0

    def _update(self, data, grad, m, v, s1, s2, bias1: float, bias2: float) -> None:
        """In-place Adam update over one (flat or per-parameter) buffer set.

        Every elementwise operation mirrors the out-of-place reference update
        (``m = b1*m + (1-b1)*g``, ``v = b2*v + (1-b2)*g*g``,
        ``p -= lr*(m/bias1) / (sqrt(v/bias2) + eps)``) in evaluation order, so
        the produced parameters are bit-identical while no intermediate array
        is allocated per parameter per step.
        """
        m *= self.beta1
        np.multiply(grad, 1.0 - self.beta1, out=s1)
        m += s1
        v *= self.beta2
        np.multiply(grad, 1.0 - self.beta2, out=s1)
        s1 *= grad
        v += s1
        # s1 <- sqrt(v/bias2) + eps ; s2 <- (lr * (m/bias1)) / s1
        np.divide(v, bias2, out=s1)
        np.sqrt(s1, out=s1)
        s1 += self.eps
        np.divide(m, bias1, out=s2)
        s2 *= self.lr
        s2 /= s1
        if self.weight_decay > 0:
            np.multiply(data, self.lr * self.weight_decay, out=s1)
            data -= s1
        data -= s2

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        if self._flat_ready():
            # One whole-buffer update covering every parameter at once.
            self._update(
                self._flat_data, self._flat_grad, self._flat_m, self._flat_v,
                self._flat_s1, self._flat_s2, bias1, bias2,
            )
            return
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            self._update(
                p.data, p.grad, self._m[i], self._v[i],
                self._s1[i], self._s2[i], bias1, bias2,
            )


class CosineSchedule:
    """Cosine learning-rate decay from ``base_lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.min_lr = float(min_lr)
        self.total_steps = int(total_steps)
        self.current_step = 0

    def lr_at(self, step: int) -> float:
        """Learning rate at a given step (clamped to the schedule length)."""
        step = min(max(step, 0), self.total_steps)
        cos = 0.5 * (1.0 + math.cos(math.pi * step / self.total_steps))
        return self.min_lr + (self.base_lr - self.min_lr) * cos

    def step(self) -> float:
        """Advance one step and apply the new learning rate; returns it."""
        self.current_step += 1
        lr = self.lr_at(self.current_step)
        self.optimizer.lr = lr
        return lr


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging training stability).
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = math.sqrt(sum(float(np.sum(p.grad ** 2)) for p in params))
    if max_norm > 0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total
