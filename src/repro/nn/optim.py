"""Optimisers and learning-rate schedules.

The paper trains every neural surrogate with a learning rate of 2e-4 decayed
by a cosine schedule; :class:`Adam` + :class:`CosineSchedule` reproduce that
setup.  A plain :class:`SGD` (with optional momentum) is included for tests
and ablations, along with global-norm gradient clipping.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            if self.momentum > 0:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + p.grad
                update = self._velocity[i]
            else:
                update = p.grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with optional decoupled weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 2e-4,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self._m[i] is None:
                self._m[i] = np.zeros_like(p.data)
                self._v[i] = np.zeros_like(p.data)
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            if self.weight_decay > 0:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class CosineSchedule:
    """Cosine learning-rate decay from ``base_lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.min_lr = float(min_lr)
        self.total_steps = int(total_steps)
        self.current_step = 0

    def lr_at(self, step: int) -> float:
        """Learning rate at a given step (clamped to the schedule length)."""
        step = min(max(step, 0), self.total_steps)
        cos = 0.5 * (1.0 + math.cos(math.pi * step / self.total_steps))
        return self.min_lr + (self.base_lr - self.min_lr) * cos

    def step(self) -> float:
        """Advance one step and apply the new learning rate; returns it."""
        self.current_step += 1
        lr = self.lr_at(self.current_step)
        self.optimizer.lr = lr
        return lr


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging training stability).
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = math.sqrt(sum(float(np.sum(p.grad ** 2)) for p in params))
    if max_norm > 0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total
