"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def xavier_uniform(fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` matrix."""
    rng = as_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def kaiming_uniform(fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """He/Kaiming uniform initialisation, appropriate before ReLU layers."""
    rng = as_rng(rng)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def normal(shape, std: float = 0.02, rng: SeedLike = None) -> np.ndarray:
    """Small-variance Gaussian initialisation."""
    rng = as_rng(rng)
    return rng.normal(0.0, std, size=shape)
