"""Minimal neural-network framework on numpy.

The paper's neural surrogates (TVAE, CTABGAN+, TabDDPM) are implemented in
PyTorch by the authors.  This sub-package provides the pieces those models
actually need — a reverse-mode autodiff :class:`~repro.nn.tensor.Tensor`,
dense layers, the usual activations, dropout and layer normalisation, mixed
reconstruction losses, and Adam/SGD with a cosine learning-rate schedule — as
a self-contained, CPU-only, vectorised numpy implementation.

It is deliberately small: only the operations required by the surrogate
models are implemented, each with an analytically derived backward pass that
is validated against finite differences in the test suite.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    Dropout,
    Embedding,
    FusedLinear,
    LayerNorm,
    LeakyReLU,
    Linear,
    MLP,
    ReLU,
    Residual,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.fused import (
    BlockLayout,
    conditional_blocks_loss,
    gaussian_kl_from_stats,
    gaussian_reparameterize,
    mixed_reconstruction_loss,
    tanh_softmax_blocks,
)
from repro.nn.losses import (
    bce_with_logits,
    cross_entropy_logits,
    gaussian_kl,
    gaussian_nll,
    mse_loss,
)
from repro.nn.optim import SGD, Adam, CosineSchedule, clip_grad_norm
from repro.nn.serving import PackedForward
from repro.nn import init

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Parameter",
    "Linear",
    "FusedLinear",
    "Sequential",
    "MLP",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "LayerNorm",
    "Embedding",
    "Residual",
    "mse_loss",
    "bce_with_logits",
    "cross_entropy_logits",
    "gaussian_kl",
    "gaussian_nll",
    "SGD",
    "Adam",
    "CosineSchedule",
    "clip_grad_norm",
    "BlockLayout",
    "gaussian_reparameterize",
    "gaussian_kl_from_stats",
    "mixed_reconstruction_loss",
    "tanh_softmax_blocks",
    "conditional_blocks_loss",
    "PackedForward",
    "init",
]
