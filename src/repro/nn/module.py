"""Module / Parameter base classes.

A :class:`Module` owns :class:`Parameter` tensors (and nested sub-modules) and
exposes ``parameters()``, ``zero_grad()``, ``train()``/``eval()`` mode and
simple state-dict save/load, mirroring the small subset of the PyTorch API
the surrogate models rely on.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is always trainable."""

    def __init__(self, data, *, name: str = "") -> None:
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)
        # Parameters must keep requires_grad even when created under no_grad().
        self.requires_grad = True


class Module:
    """Base class for neural components."""

    def __init__(self) -> None:
        self.training = True

    # -- forward ------------------------------------------------------------
    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    # -- traversal ----------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs, recursing into sub-modules."""
        for attr, value in vars(self).items():
            full = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all nested sub-modules."""
        yield self
        for attr, value in vars(self).items():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- training state -------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    def n_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    # -- (de)serialisation -----------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {p.data.shape}, got {value.shape}"
                )
            p.data = value.copy()
