"""Fused autograd operations for the tabular training hot paths.

The generative surrogates spend their training steps in three recurring
patterns that, expressed through elementary :class:`~repro.nn.tensor.Tensor`
ops, each build a dozen graph nodes *per encoded column* and allocate several
full-batch arrays on the way back (the worst offender being ``np.add.at``
over a freshly zeroed ``(batch, features)`` matrix per sliced block):

* the mixed reconstruction/denoising loss (MSE over the numerical columns
  plus a categorical cross entropy per one-hot block) used by TVAE and
  TabDDPM,
* the per-block generator output activation of CTABGAN+ (tanh for the
  mode-normalisation alphas, softmax for every one-hot block), and
* CTABGAN+'s conditional cross entropy over row subsets.

Each function here produces the *identical* float results as the unfused
composition — so losses, gradients and hence trained parameters are
bit-for-bit equal — but records a single graph node whose backward pass
writes one gradient matrix directly, and runs the elementwise math across
*all* blocks at once.  Only two kinds of reduction stay per-block:

* sums whose IEEE-754 rounding depends on the summation-tree shape (the
  softmax normaliser ``sum(exp(shifted))`` and non-one-hot gradient sums) are
  taken with ``np.sum`` over views of the same element count as the unfused
  slices, which numpy reduces with the same count-based pairwise tree;
* order-*insensitive* reductions — block maxima (exact in any order) and
  sums of one-hot-masked rows (one non-zero plus exact zeros) — collapse into
  single ``np.maximum.reduceat`` / ``np.add.reduceat`` calls.

The bit-equality of the scatter side relies on two IEEE-754 facts: addition
of two terms is commutative, and adding (signed) zero never changes a finite
non-zero value.  Every element of the fused gradient matrix receives exactly
one non-zero contribution (the sliced blocks are disjoint), so the order in
which the unfused graph would have accumulated its zero-padded per-block
arrays is immaterial.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.tensor import Tensor, is_grad_enabled

__all__ = [
    "BlockLayout",
    "mixed_reconstruction_loss",
    "tanh_softmax_blocks",
    "conditional_blocks_loss",
]


class BlockLayout:
    """Pre-computed gather/scatter indices for a set of column blocks.

    Built once per ``fit`` from the ``(start, stop)`` spans of the one-hot
    blocks inside an encoded matrix; every fused op below then works on a
    gathered ``(rows, total_block_width)`` sub-matrix without recomputing
    index arrays per training step.

    Internally the blocks are re-ordered by width so that equal-width blocks
    sit next to each other in the gathered matrix: a run of ``m`` blocks of
    width ``w`` reshapes to ``(rows, m, w)`` and reduces over its last axis
    in one call — with exactly the per-lane summation order of a per-block
    ``(rows, w)`` reduction, so results stay bit-identical.  ``perm`` maps
    gathered block positions back to the original block order for the few
    places (the scalar loss accumulation) where that order matters.
    """

    def __init__(self, spans: Sequence[Tuple[int, int]]):
        self.spans = [(int(a), int(b)) for a, b in spans]
        self.n_blocks = len(self.spans)
        original_widths = [b - a for a, b in self.spans]
        #: original block ids in gathered (width-sorted) order
        self.perm = sorted(range(self.n_blocks), key=lambda j: (original_widths[j], j))
        #: gathered position of every original block id
        self.inv_perm = np.empty(self.n_blocks, dtype=np.intp)
        for pos, j in enumerate(self.perm):
            self.inv_perm[j] = pos
        widths = np.array([original_widths[j] for j in self.perm], dtype=np.intp)
        self.widths = widths
        #: columns of the original matrix covered by the blocks, gathered order
        self.columns = (
            np.concatenate(
                [np.arange(*self.spans[j], dtype=np.intp) for j in self.perm]
            )
            if self.spans else np.empty(0, dtype=np.intp)
        )
        #: start of each block inside the gathered sub-matrix
        self.starts = np.concatenate([[0], np.cumsum(widths)[:-1]]).astype(np.intp) \
            if self.spans else np.empty(0, dtype=np.intp)
        #: for every gathered column, the gathered index of its block
        self.block_of_col = np.repeat(np.arange(self.n_blocks, dtype=np.intp), widths)
        self.total_width = int(widths.sum()) if self.spans else 0
        #: runs of equal width: (width, first col, last col, first block, last block)
        self.width_groups: List[Tuple[int, int, int, int, int]] = []
        pos = 0
        col = 0
        while pos < self.n_blocks:
            width = int(widths[pos])
            stop = pos
            while stop < self.n_blocks and widths[stop] == width:
                stop += 1
            n_run = stop - pos
            self.width_groups.append((width, col, col + n_run * width, pos, stop))
            col += n_run * width
            pos = stop

    def block_sums(self, gathered: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-block last-axis sums of a gathered matrix, one reduction per
        width group, each bit-identical to a per-block ``sum(axis=-1)``."""
        n = gathered.shape[0]
        sums = out if out is not None else np.empty((n, self.n_blocks))
        for width, c0, c1, b0, b1 in self.width_groups:
            seg = np.ascontiguousarray(gathered[:, c0:c1]).reshape(n, b1 - b0, width)
            seg.sum(axis=-1, out=sums[:, b0:b1])
        return sums


def _as_layout(blocks) -> BlockLayout:
    return blocks if isinstance(blocks, BlockLayout) else BlockLayout(blocks)


def _blockwise_log_softmax(
    gathered: np.ndarray, layout: BlockLayout
) -> Tuple[np.ndarray, np.ndarray]:
    """``(log_probs, softmax)`` per block over a gathered matrix.

    Each width group reshapes to ``(rows, blocks, width)`` so maxima and
    normaliser sums reduce over stride-1 lanes of the original block width
    (the same per-lane pairwise rounding as the unfused slices) and the
    shift/normalise stages broadcast without any per-column gathers.
    """
    n = gathered.shape[0]
    log_probs = np.empty((n, layout.total_width))
    softmax = np.empty((n, layout.total_width))
    for width, c0, c1, b0, b1 in layout.width_groups:
        m = b1 - b0
        seg = np.ascontiguousarray(gathered[:, c0:c1]).reshape(n, m, width)
        shifted = seg - seg.max(axis=-1, keepdims=True)
        expv = np.exp(shifted)
        log_sum = np.log(expv.sum(axis=-1, keepdims=True))
        # shifted/expv are no longer needed as-is: overwrite them in place
        # with log-probs and softmax (identical values, two fewer arrays).
        np.subtract(shifted, log_sum, out=shifted)
        log_probs[:, c0:c1] = shifted.reshape(n, m * width)
        np.exp(shifted, out=expv)
        softmax[:, c0:c1] = expv.reshape(n, m * width)
    return log_probs, softmax


def _attach(pred: Tensor, value: np.ndarray, backward) -> Tensor:
    """Wrap ``value`` as a graph node over ``pred`` with the given backward."""
    requires = is_grad_enabled() and pred.requires_grad
    out = Tensor(value, requires_grad=requires)
    if requires:
        out._prev = (pred,)
        out._backward = backward(out)
    return out


def _accumulate_owned(tensor: Tensor, grad: np.ndarray) -> None:
    """Accumulate a freshly allocated same-shape gradient without copying."""
    if tensor.grad is None:
        tensor.grad = grad
    else:
        tensor.grad += grad


def mixed_reconstruction_loss(
    pred: Tensor,
    numerical_indices: np.ndarray,
    numerical_target: Optional[np.ndarray],
    categorical_blocks,
    categorical_target: np.ndarray,
) -> Tensor:
    """Fused mixed-type loss: ``mse * n_num + Σ cross_entropy(block)``.

    Bit-identical to the unfused reference::

        loss = Tensor(0.0)
        if num_idx.size:
            loss = loss + mse_loss(pred[:, num_idx], numerical_target) * float(num_idx.size)
        for start, stop in categorical_blocks:
            loss = loss + cross_entropy_logits(pred[:, start:stop], target[:, start:stop])

    ``numerical_target`` is the ``(n, n_num)`` regression target (the encoded
    batch columns for TVAE, the drawn noise for TabDDPM);
    ``categorical_target`` is the full-width encoded batch whose blocks must
    be strictly one-hot rows (this makes the per-block gradient sums exact in
    any order, which is what lets them collapse into one ``add.reduceat``).
    ``categorical_blocks`` is a :class:`BlockLayout` or a span list.
    """
    layout = _as_layout(categorical_blocks)
    data = pred.data
    n = data.shape[0]
    num_idx = np.asarray(numerical_indices, dtype=np.intp)
    loss_val = np.asarray(0.0, dtype=np.float64)

    diff = None
    count = 0
    if num_idx.size:
        pred_num = data[:, num_idx]
        diff = pred_num - numerical_target
        sq = diff * diff
        count = sq.size
        mse = sq.sum() * (1.0 / count)
        loss_val = loss_val + mse * float(num_idx.size)

    target_cat = None
    softmax = None
    if layout.n_blocks:
        # A fancy column gather can come back F-ordered; the per-block sums
        # must reduce along stride-1 lanes to keep the unfused pairwise
        # rounding, so force C order before the softmax stages.
        gathered = np.ascontiguousarray(data[:, layout.columns])
        target_cat = categorical_target[:, layout.columns]
        log_probs, softmax = _blockwise_log_softmax(gathered, layout)
        prod = log_probs * target_cat
        # One non-zero per row per block (one-hot target): exact via reduceat.
        s = np.add.reduceat(prod, layout.starts, axis=1)
        nll = -s
        inv_n = 1.0 / n
        # Scalar accumulation must follow the *original* block order.
        for p in layout.inv_perm:
            loss_val = loss_val + nll[:, p].sum() * inv_n
    else:
        inv_n = 1.0 / n

    def _make_backward(out: Tensor):
        def _backward() -> None:
            u = out.grad
            grad = np.zeros_like(data)
            if diff is not None:
                c = (u * float(num_idx.size)) * (1.0 / count)
                t = c * diff
                grad[:, num_idx] = t + t
            if layout.n_blocks:
                sg = -(u * inv_n)
                glp = sg * target_cat
                # Per-block sums of glp are exactly sg (one non-zero sg per
                # one-hot row-block, plus exact zeros), so the broadcasted
                # scalar replaces a reduceat+gather.
                grad[:, layout.columns] = glp - softmax * sg
            _accumulate_owned(pred, grad)
        return _backward

    return _attach(pred, loss_val, _make_backward)


def tanh_softmax_blocks(
    raw: Tensor,
    tanh_columns: np.ndarray,
    softmax_blocks,
) -> Tensor:
    """Fused per-block output activation: tanh columns + softmax blocks.

    Equivalent to slicing ``raw`` per block, applying ``.tanh()`` /
    ``.softmax()`` and re-concatenating — provided the columns named by
    ``tanh_columns`` and ``softmax_blocks`` tile the full width of ``raw``.
    """
    layout = _as_layout(softmax_blocks)
    data = raw.data
    cols = np.asarray(tanh_columns, dtype=np.intp)
    if cols.size + layout.total_width != data.shape[1]:
        raise ValueError(
            "tanh columns and softmax blocks must tile the full input width: "
            f"{cols.size} + {layout.total_width} != {data.shape[1]}"
        )
    out_data = np.empty_like(data)
    tanh_vals = np.tanh(data[:, cols])
    out_data[:, cols] = tanh_vals
    softmax = None
    if layout.n_blocks:
        _, softmax = _blockwise_log_softmax(
            np.ascontiguousarray(data[:, layout.columns]), layout
        )
        out_data[:, layout.columns] = softmax

    def _make_backward(out: Tensor):
        def _backward() -> None:
            g = out.grad
            grad = np.empty_like(data)
            grad[:, cols] = g[:, cols] * (1.0 - tanh_vals ** 2)
            if layout.n_blocks:
                g2 = g[:, layout.columns] * softmax
                # g2 is dense, so its block sums must keep the same per-lane
                # pairwise rounding as the unfused per-block ``sum(axis=-1)``
                # (block_sums reduces stride-1 lanes of the original width).
                gsum = layout.block_sums(g2)
                grad[:, layout.columns] = g2 - softmax * np.repeat(gsum, layout.widths, axis=1)
            _accumulate_owned(raw, grad)
        return _backward

    return _attach(raw, out_data, _make_backward)


def gaussian_reparameterize(
    stats: Tensor,
    noise: np.ndarray,
    latent_dim: int,
    *,
    clip_low: float = -8.0,
    clip_high: float = 8.0,
) -> Tensor:
    """Fused VAE head: ``z = mu + exp(clip(logvar)/2) * noise`` in one node.

    ``stats`` packs ``[mu | logvar]``; the unfused composition (two slice
    nodes, clip, scale, exp, multiply, add) is replaced by a single node that
    back-propagates the identical gradient matrix into ``stats``.  Pairs with
    :func:`gaussian_kl_from_stats`, which contributes the KL gradient to
    ``stats`` as a second (bit-commutative) accumulation.
    """
    data = stats.data
    mu = data[:, :latent_dim]
    logvar_raw = data[:, latent_dim:]
    logvar = np.clip(logvar_raw, clip_low, clip_high)
    clip_mask = (logvar_raw >= clip_low) & (logvar_raw <= clip_high)
    scale = np.exp(logvar * 0.5)
    z_val = mu + scale * noise

    def _make_backward(out: Tensor):
        def _backward() -> None:
            gz = out.grad
            grad = np.empty_like(data)
            grad[:, :latent_dim] = gz
            glv = (gz * noise) * scale
            glv *= 0.5
            glv *= clip_mask
            grad[:, latent_dim:] = glv
            _accumulate_owned(stats, grad)
        return _backward

    return _attach(stats, z_val, _make_backward)


def gaussian_kl_from_stats(
    stats: Tensor,
    latent_dim: int,
    *,
    clip_low: float = -8.0,
    clip_high: float = 8.0,
) -> Tensor:
    """Fused KL(N(mu, exp(logvar)) || N(0, 1)) over a packed ``[mu | logvar]``.

    Bit-identical to ``gaussian_kl(stats[:, :L], stats[:, L:].clip(...))``:
    the clip mask distributes exactly over the summed gradient contributions,
    and the z-path/KL-path gradients meet in ``stats`` as two accumulations,
    whose order is immaterial (IEEE addition of two terms is commutative).
    """
    data = stats.data
    n = data.shape[0]
    mu = data[:, :latent_dim]
    logvar_raw = data[:, latent_dim:]
    logvar = np.clip(logvar_raw, clip_low, clip_high)
    clip_mask = (logvar_raw >= clip_low) & (logvar_raw <= clip_high)
    inner = (mu * mu) + np.exp(logvar) - logvar - 1.0
    kl = inner * 0.5
    per_row = kl.sum(axis=-1)
    value = per_row.sum() * (1.0 / n)

    def _make_backward(out: Tensor):
        def _backward() -> None:
            d = (out.grad * (1.0 / n)) * 0.5
            if stats.grad is None:
                stats.grad = np.zeros_like(data)
            # The unfused graph accumulates the KL terms one by one on top of
            # the already-present reparameterisation gradient (``mu`` gets
            # d*mu twice, ``logvar`` gets -d then d*exp); replaying the same
            # incremental adds keeps the FP grouping — and hence the trained
            # parameters — bit-identical.
            mu_grad = stats.grad[:, :latent_dim]
            t = d * mu
            mu_grad += t
            mu_grad += t
            lv_grad = stats.grad[:, latent_dim:]
            lv_grad += (-d) * clip_mask
            lv_grad += (d * np.exp(logvar)) * clip_mask
        return _backward

    return _attach(stats, value, _make_backward)


def conditional_blocks_loss(
    raw: Tensor,
    blocks: Sequence[Tuple[int, int]],
    col_choice: np.ndarray,
    cat_choice: np.ndarray,
) -> Tensor:
    """Fused training-by-sampling condition loss (CTABGAN+).

    For each conditioned categorical column ``j``, the rows whose condition
    targets column ``j`` contribute a cross entropy between the raw generator
    logits of that block and the sampled category; the mean over contributing
    columns is returned.  Bit-identical to the per-column
    ``cross_entropy_logits(raw[rows][:, start:stop], cats)`` composition.
    """
    layout = _as_layout(blocks)
    data = raw.data
    n_features = data.shape[1]
    flat_data = data.ravel()
    nb = layout.n_blocks
    counts = np.bincount(col_choice, minlength=nb)
    n_terms = int((counts > 0).sum())
    inv_terms = 1.0 / max(n_terms, 1)
    # Group the batch rows by conditioned column once — ordered by width
    # group, then column, then row (the stable sort preserves the ascending
    # row order of a per-column np.nonzero) — so each width group computes
    # all of its rows' cross entropies as one (rows, width) batch whose
    # per-lane reductions are bit-identical to the per-column slices.
    order = np.argsort(layout.inv_perm[col_choice], kind="stable")
    counts_p = counts[np.asarray(layout.perm, dtype=np.intp)]
    bounds_p = np.concatenate([[0], np.cumsum(counts_p)]).astype(np.intp)
    col_sorted = np.asarray(col_choice)[order]
    cats_sorted = np.asarray(cat_choice)[order].astype(np.int64)
    block_starts = np.array([a for a, _ in layout.spans], dtype=np.intp)
    start_of_row = block_starts[col_sorted]
    inv_m = np.zeros(nb)
    np.divide(1.0, counts, out=inv_m, where=counts > 0)
    inv_m_of_row = inv_m[col_sorted]

    ces = np.zeros(nb)
    saved: List[Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]] = []
    for width, _c0, _c1, b0, b1 in layout.width_groups:
        r0, r1 = int(bounds_p[b0]), int(bounds_p[b1])
        if r1 == r0:
            continue
        rows = order[r0:r1]
        idx = (rows * n_features + start_of_row[r0:r1])[:, None] + np.arange(width)[None, :]
        logits = flat_data[idx.ravel()].reshape(r1 - r0, width)
        onehot = np.zeros_like(logits)
        onehot[np.arange(r1 - r0), cats_sorted[r0:r1]] = 1.0
        shifted = logits - logits.max(axis=-1, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        log_probs = shifted - log_sum
        softmax = np.exp(log_probs)
        nll = -(log_probs * onehot).sum(axis=-1)
        # Per-column mean over its (contiguous, ascending-row) segment.
        for p in range(b0, b1):
            m = int(counts_p[p])
            if m == 0:
                continue
            seg = nll[int(bounds_p[p]) - r0 : int(bounds_p[p + 1]) - r0]
            ces[layout.perm[p]] = seg.sum() * (1.0 / m)
        saved.append((idx, softmax, onehot, r0, r1))

    loss_val = np.asarray(0.0, dtype=np.float64)
    for j in range(nb):
        if counts[j]:
            loss_val = loss_val + ces[j]
    out_val = loss_val * inv_terms

    def _make_backward(out: Tensor):
        def _backward() -> None:
            uk = out.grad * inv_terms
            grad = np.zeros_like(data)
            flat_grad = grad.ravel()
            for idx, softmax, onehot, r0, r1 in saved:
                # Per-row -(uk/m) replaces the per-column scalar; the one-hot
                # row sums of glp are exactly that scalar, so no reduction.
                sgv = -(uk * inv_m_of_row[r0:r1])[:, None]
                glp = sgv * onehot
                flat_grad[idx.ravel()] = (glp - softmax * sgv).ravel()
            _accumulate_owned(raw, grad)
        return _backward

    return _attach(raw, out_val, _make_backward)
