"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied to
it as a DAG.  Calling :meth:`Tensor.backward` on a scalar result walks the DAG
in reverse topological order and accumulates gradients into every tensor
created with ``requires_grad=True``.

Design notes
------------
* All operations are whole-array numpy calls; no per-element Python loops.
* Broadcasting follows numpy semantics; gradients are "un-broadcast" by
  summing over the broadcast axes so shapes always round-trip.
* Gradient tracking can be suspended globally with the :func:`no_grad`
  context manager (used during sampling / evaluation), which skips graph
  construction entirely.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

Array = np.ndarray
Scalar = Union[int, float]

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (cheaper inference)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    return _grad_enabled


def _unbroadcast(grad: Array, shape: Tuple[int, ...]) -> Array:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _is_basic_index(index) -> bool:
    """True when ``index`` uses only ints/slices (no fancy/bool indexing)."""
    items = index if isinstance(index, tuple) else (index,)
    return all(isinstance(i, (int, np.integer, slice)) or i is Ellipsis for i in items)


def _as_array(value: Union["Tensor", Array, Scalar]) -> Array:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy array with an autograd tape."""

    __slots__ = (
        "data", "grad", "requires_grad", "_backward", "_prev", "name", "_grad_buffer"
    )
    __array_priority__ = 100  # make numpy defer to our reflected operators

    def __init__(
        self,
        data: Union[Array, Sequence, Scalar],
        requires_grad: bool = False,
        *,
        name: str = "",
    ) -> None:
        self.data: Array = np.asarray(data, dtype=np.float64)
        self.grad: Optional[Array] = None
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self._backward: Optional[Callable[[], None]] = None
        self._prev: Tuple["Tensor", ...] = ()
        self.name = name
        #: Optional pre-allocated gradient storage (set by an optimizer); the
        #: first accumulation of a backward pass fills it in place instead of
        #: allocating a fresh array.
        self._grad_buffer: Optional[Array] = None

    # -- construction helpers ----------------------------------------------
    @staticmethod
    def zeros(shape: Tuple[int, ...], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Tuple[int, ...], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    # -- basic properties ----------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> Array:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    # -- graph bookkeeping ---------------------------------------------------
    def _make_result(
        self, data: Array, parents: Tuple["Tensor", ...]
    ) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = tuple(p for p in parents if p.requires_grad)
        return out

    def _accumulate(self, grad: Array) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            buffer = self._grad_buffer
            if buffer is not None and buffer.shape == grad.shape:
                np.copyto(buffer, grad)
                self.grad = buffer
            else:
                self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[Array] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalar tensors; for non-scalar tensors an
        explicit upstream gradient must be supplied.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=np.float64))

        # Topological order over the DAG.
        topo: List[Tensor] = []
        visited: Set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other: Union["Tensor", Array, Scalar]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out = self._make_result(self.data + other_t.data, (self, other_t))
        if out.requires_grad:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad)
                if other_t.requires_grad:
                    other_t._accumulate(out.grad)
            out._backward = _backward
        return out

    def __radd__(self, other: Union[Array, Scalar]) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        out = self._make_result(-self.data, (self,))
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(-out.grad)
            out._backward = _backward
        return out

    def __sub__(self, other: Union["Tensor", Array, Scalar]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out = self._make_result(self.data - other_t.data, (self, other_t))
        if out.requires_grad:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad)
                if other_t.requires_grad:
                    other_t._accumulate(-out.grad)
            out._backward = _backward
        return out

    def __rsub__(self, other: Union[Array, Scalar]) -> "Tensor":
        return Tensor(_as_array(other)).__sub__(self)

    def __mul__(self, other: Union["Tensor", Array, Scalar]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out = self._make_result(self.data * other_t.data, (self, other_t))
        if out.requires_grad:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * other_t.data)
                if other_t.requires_grad:
                    other_t._accumulate(out.grad * self.data)
            out._backward = _backward
        return out

    def __rmul__(self, other: Union[Array, Scalar]) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Tensor", Array, Scalar]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out = self._make_result(self.data / other_t.data, (self, other_t))
        if out.requires_grad:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad / other_t.data)
                if other_t.requires_grad:
                    other_t._accumulate(-out.grad * self.data / (other_t.data ** 2))
            out._backward = _backward
        return out

    def __rtruediv__(self, other: Union[Array, Scalar]) -> "Tensor":
        return Tensor(_as_array(other)).__truediv__(self)

    def __pow__(self, exponent: Scalar) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = self._make_result(self.data ** exponent, (self,))
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))
            out._backward = _backward
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out = self._make_result(self.data @ other_t.data, (self, other_t))
        if out.requires_grad:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad @ other_t.data.T)
                if other_t.requires_grad:
                    other_t._accumulate(self.data.T @ out.grad)
            out._backward = _backward
        return out

    # -- elementwise functions -------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        out = self._make_result(data, (self,))
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * data)
            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make_result(np.log(self.data), (self,))
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad / self.data)
            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        out = self._make_result(data, (self,))
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * 0.5 / np.maximum(data, 1e-12))
            out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        out = self._make_result(data, (self,))
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * (1.0 - data ** 2))
            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        out = self._make_result(data, (self,))
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * data * (1.0 - data))
            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self._make_result(self.data * mask, (self,))
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * mask)
            out._backward = _backward
        return out

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        scale = np.where(self.data > 0, 1.0, negative_slope)
        out = self._make_result(self.data * scale, (self,))
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * scale)
            out._backward = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient passes only through the un-clamped region."""
        mask = (self.data >= low) & (self.data <= high)
        out = self._make_result(np.clip(self.data, low, high), (self,))
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * mask)
            out._backward = _backward
        return out

    # -- reductions --------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        out = self._make_result(data, (self,))
        if out.requires_grad:
            def _backward() -> None:
                grad = out.grad
                if not keepdims and axis is not None:
                    grad = np.expand_dims(grad, axis=axis)
                self._accumulate(np.broadcast_to(grad, self.data.shape))
            out._backward = _backward
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) ** 2
        return sq.mean(axis=axis, keepdims=keepdims)

    # -- shape manipulation --------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out = self._make_result(self.data.reshape(shape), (self,))
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad.reshape(original))
            out._backward = _backward
        return out

    @property
    def T(self) -> "Tensor":
        out = self._make_result(self.data.T, (self,))
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad.T)
            out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = self._make_result(self.data[index], (self,))
        if out.requires_grad:
            basic = _is_basic_index(index)

            def _backward() -> None:
                grad = np.zeros_like(self.data)
                if basic:
                    # Basic (slice/int) indices cannot repeat positions, so a
                    # plain in-place add replaces the much slower np.add.at.
                    grad[index] += out.grad
                else:
                    np.add.at(grad, index, out.grad)
                self._accumulate(grad)
            out._backward = _backward
        return out

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        """Concatenate tensors along ``axis`` with gradient routing."""
        tensors = list(tensors)
        data = np.concatenate([t.data for t in tensors], axis=axis)
        requires = _grad_enabled and any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = tuple(t for t in tensors if t.requires_grad)
            sizes = [t.data.shape[axis] for t in tensors]
            offsets = np.cumsum([0] + sizes)

            def _backward() -> None:
                for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                    if t.requires_grad:
                        slicer = [slice(None)] * out.grad.ndim
                        slicer[axis] = slice(int(start), int(stop))
                        t._accumulate(out.grad[tuple(slicer)])
            out._backward = _backward
        return out

    # -- numerically stable softmax helpers -------------------------------------
    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - log_sum
        out = self._make_result(data, (self,))
        if out.requires_grad:
            softmax = np.exp(data)

            def _backward() -> None:
                grad_sum = out.grad.sum(axis=axis, keepdims=True)
                self._accumulate(out.grad - softmax * grad_sum)
            out._backward = _backward
        return out

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()

    # -- comparison helpers (no gradient) ----------------------------------------
    def maximum(self, other: Scalar) -> "Tensor":
        mask = self.data > other
        out = self._make_result(np.maximum(self.data, other), (self,))
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * mask)
            out._backward = _backward
        return out
