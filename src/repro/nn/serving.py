"""Inference-only packed forwards for the relaxed serving mode.

Training and exact-mode sampling run every network forward through the
autograd :class:`~repro.nn.tensor.Tensor` in float64 — that is what pins the
outputs bit-for-bit to the seed implementation.  The relaxed
``sampling_mode="fast"`` serving path has no bit contract, so it can trade
the float64 graph forward for a :class:`PackedForward`: the layer weights are
extracted *once* into a contiguous cache at a reduced precision (float32 by
default, where BLAS runs roughly twice as fast per element) and every
subsequent call is a plain ``matmul`` + in-place activation over pre-allocated
output buffers — no graph nodes, no per-call weight casts, no allocations on
the steady-state path.

The packed cache is a snapshot: it does **not** track later weight updates.
Owners (the surrogates) rebuild it lazily after every ``fit``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import (
    Dropout,
    FusedLinear,
    LeakyReLU,
    Linear,
    MLP,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.module import Module

__all__ = ["PackedForward", "apply_activation"]


def apply_activation(out: np.ndarray, activation: Optional[str], slope: float) -> None:
    """Apply one of the packed activations to ``out`` in place."""
    if activation == "relu":
        np.maximum(out, 0.0, out=out)
    elif activation == "leaky_relu":
        negative = out < 0.0
        out[negative] *= slope
    elif activation == "tanh":
        np.tanh(out, out=out)
    elif activation == "sigmoid":
        np.clip(out, -60.0, 60.0, out=out)
        np.negative(out, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.reciprocal(out, out=out)

#: (weight, bias, activation, negative_slope) of one packed affine layer.
_PackedLayer = Tuple[np.ndarray, Optional[np.ndarray], Optional[str], float]

_ACTIVATION_OF = {ReLU: "relu", LeakyReLU: "leaky_relu", Tanh: "tanh", Sigmoid: "sigmoid"}


class PackedForward:
    """Pre-packed reduced-precision forward of an :class:`~repro.nn.layers.MLP`.

    Supports the layer vocabulary the surrogates' serving networks use:
    ``FusedLinear`` (affine + activation in one layer), plain ``Linear``
    followed by an optional activation module, and ``Dropout`` (an inference
    no-op, skipped).  Anything else — e.g. ``LayerNorm`` — raises, because a
    silent fallback would defeat the serving contract.

    Calls return a buffer owned by the cache that is **overwritten by the
    next call of the same batch size** — consume or copy it before calling
    again.  Buffers are kept per batch size (bounded), so steady-state
    serving loops with a fixed chunk size allocate nothing.
    """

    _MAX_BUFFER_SHAPES = 8

    def __init__(self, mlp: Module, dtype=np.float32) -> None:
        self.dtype = np.dtype(dtype)
        sequential = mlp.net if isinstance(mlp, MLP) else mlp
        if not isinstance(sequential, Sequential):
            raise TypeError(f"cannot pack {type(mlp).__name__}; expected an MLP or Sequential")
        self.layers: List[_PackedLayer] = []
        for layer in sequential.layers:
            if isinstance(layer, FusedLinear):
                self.layers.append(self._pack_affine(layer, layer.activation, layer.negative_slope))
            elif isinstance(layer, Linear):
                self.layers.append(self._pack_affine(layer, None, 0.0))
            elif type(layer) in _ACTIVATION_OF:
                if not self.layers or self.layers[-1][2] is not None:
                    raise TypeError("activation layer without a preceding affine layer")
                weight, bias, _act, _slope = self.layers[-1]
                slope = layer.negative_slope if isinstance(layer, LeakyReLU) else 0.0
                self.layers[-1] = (weight, bias, _ACTIVATION_OF[type(layer)], slope)
            elif isinstance(layer, Dropout):
                continue  # inference no-op
            else:
                raise TypeError(f"cannot pack layer {type(layer).__name__} for serving")
        if not self.layers:
            raise ValueError("nothing to pack: the network has no affine layers")
        self.in_features = self.layers[0][0].shape[0]
        self.out_features = self.layers[-1][0].shape[1]
        self._buffers: Dict[int, List[Optional[np.ndarray]]] = {}

    def _pack_affine(self, layer, activation: Optional[str], slope: float) -> _PackedLayer:
        weight = np.ascontiguousarray(layer.weight.data, dtype=self.dtype)
        bias = (
            np.ascontiguousarray(layer.bias.data, dtype=self.dtype)
            if layer.bias is not None
            else None
        )
        return (weight, bias, activation, float(slope))

    def _outputs_for(self, n: int) -> List[Optional[np.ndarray]]:
        # Per-layer buffers are created lazily inside :meth:`_run`, so an
        # owner entering via :meth:`forward_from` never allocates dead
        # buffers for the layers it computed itself.
        outs = self._buffers.get(n)
        if outs is None:
            if len(self._buffers) >= self._MAX_BUFFER_SHAPES:
                self._buffers.clear()
            outs = [None] * len(self.layers)
            self._buffers[n] = outs
        return outs

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Forward ``x`` (cast to the packed dtype); returns a reused buffer."""
        current = np.ascontiguousarray(x, dtype=self.dtype)
        if current.ndim != 2 or current.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (n, {self.in_features}), got {current.shape}"
            )
        return self._run(current, 0)

    def forward_from(self, x: np.ndarray, start: int) -> np.ndarray:
        """Run layers ``start:`` on ``x`` (already in the packed dtype).

        Lets owners special-case an early layer (e.g. the denoiser folds the
        shared timestep-embedding contribution of its first layer into a
        cached per-step bias row) and hand the intermediate back here.
        """
        if not 0 <= start < len(self.layers):
            raise ValueError(f"layer start {start} outside 0..{len(self.layers) - 1}")
        expected = self.layers[start][0].shape[0]
        if x.ndim != 2 or x.shape[1] != expected:
            raise ValueError(f"expected input of shape (n, {expected}), got {x.shape}")
        return self._run(np.ascontiguousarray(x, dtype=self.dtype), start)

    def warm(self, n: int, *, start: int = 0) -> None:
        """Pre-allocate the forward buffers for batch size ``n``.

        Serving owners call this at registration / worker start so the first
        real request of the steady-state chunk size pays no buffer
        allocation (and no first-touch page faults inside the timed path).
        ``start`` skips the leading layers an owner computes itself (see
        :meth:`forward_from`).
        """
        if n < 1:
            return
        outs = self._outputs_for(n)
        for i in range(start, len(self.layers)):
            if outs[i] is None:
                outs[i] = np.empty((n, self.layers[i][0].shape[1]), dtype=self.dtype)

    def _run(self, current: np.ndarray, start: int) -> np.ndarray:
        n = current.shape[0]
        outs = self._outputs_for(n)
        for i in range(start, len(self.layers)):
            weight, bias, activation, slope = self.layers[i]
            out = outs[i]
            if out is None:
                out = outs[i] = np.empty((n, weight.shape[1]), dtype=self.dtype)
            np.matmul(current, weight, out=out)
            if bias is not None:
                out += bias
            apply_activation(out, activation, slope)
            current = out
        return current

    # The output buffers are scratch space: dropping them on pickle keeps
    # saved surrogates small and is safe (they are re-grown on first call).
    def __getstate__(self):
        state = dict(self.__dict__)
        state["_buffers"] = {}
        return state
