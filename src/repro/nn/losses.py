"""Loss functions for mixed-type tabular generative models.

All losses return a scalar :class:`~repro.nn.tensor.Tensor` so they can be
summed/weighted and backpropagated directly.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.nn.tensor import Tensor

ArrayOrTensor = Union[np.ndarray, Tensor]


def _as_const(x: ArrayOrTensor) -> Tensor:
    """Treat numpy inputs as constants (targets never need gradients)."""
    return x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=np.float64))


def mse_loss(pred: Tensor, target: ArrayOrTensor, *, reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    diff = pred - _as_const(target)
    sq = diff * diff
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    raise ValueError("reduction must be 'mean' or 'sum'")


def bce_with_logits(logits: Tensor, target: ArrayOrTensor, *, reduction: str = "mean") -> Tensor:
    """Binary cross entropy on logits (numerically stable log-sigmoid form)."""
    t = _as_const(target)
    # BCE(x, t) = softplus(x) - x*t; logits are clipped so exp() stays finite
    # in float64 while the gradient remains exact inside the clipped range.
    x = logits.clip(-30.0, 30.0)
    loss = (x.exp() + 1.0).log() - x * t
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    raise ValueError("reduction must be 'mean' or 'sum'")


def cross_entropy_logits(
    logits: Tensor,
    target: ArrayOrTensor,
    *,
    reduction: str = "mean",
) -> Tensor:
    """Categorical cross entropy from raw logits.

    ``target`` may be a one-hot / probability matrix of the same shape as
    ``logits`` or an integer class-index vector.
    """
    target_arr = target.data if isinstance(target, Tensor) else np.asarray(target)
    if target_arr.ndim == 1:
        onehot = np.zeros(logits.shape, dtype=np.float64)
        onehot[np.arange(target_arr.shape[0]), target_arr.astype(np.int64)] = 1.0
        target_arr = onehot
    log_probs = logits.log_softmax(axis=-1)
    nll = -(log_probs * Tensor(target_arr)).sum(axis=-1)
    if reduction == "mean":
        return nll.mean()
    if reduction == "sum":
        return nll.sum()
    raise ValueError("reduction must be 'mean' or 'sum'")


def gaussian_kl(mu: Tensor, logvar: Tensor, *, reduction: str = "mean") -> Tensor:
    """KL divergence between ``N(mu, exp(logvar))`` and the standard normal.

    This is the regulariser in TVAE's evidence lower bound.
    """
    kl = 0.5 * ((mu * mu) + logvar.exp() - logvar - 1.0)
    per_row = kl.sum(axis=-1)
    if reduction == "mean":
        return per_row.mean()
    if reduction == "sum":
        return per_row.sum()
    raise ValueError("reduction must be 'mean' or 'sum'")


def gaussian_nll(
    pred_mean: Tensor,
    pred_logvar: Tensor,
    target: ArrayOrTensor,
    *,
    reduction: str = "mean",
) -> Tensor:
    """Negative log-likelihood of ``target`` under a diagonal Gaussian."""
    t = _as_const(target)
    inv_var = (-pred_logvar).exp()
    nll = 0.5 * (pred_logvar + (t - pred_mean) ** 2 * inv_var + np.log(2.0 * np.pi))
    per_row = nll.sum(axis=-1) if nll.ndim > 1 else nll
    if reduction == "mean":
        return per_row.mean()
    if reduction == "sum":
        return per_row.sum()
    raise ValueError("reduction must be 'mean' or 'sum'")
