"""One-dimensional Gaussian mixture model fitted with expectation-maximisation.

The implementation targets the mode-specific normalisation used by tabular
GANs: it operates on 1-D columns, initialises means with a deterministic
k-means pass, prunes components whose responsibility mass collapses (mimicking
the Bayesian GMM behaviour of the reference CTGAN implementation), and exposes
responsibilities, sampling and per-component normalisation helpers.

Performance: real tabular columns (counts, rounded measurements, discrete
grids) carry far fewer *unique* values than rows.  Every per-value quantity in
Lloyd's algorithm and in the EM E-step — nearest centre, component log
densities, responsibilities — is a pure function of the value, so both are
evaluated once per unique value and gathered back to full length with the
``np.unique`` inverse index.  The M-step sums and the mean log-likelihood are
taken over the gathered full-length arrays, which keeps every reduction's
operand sequence — and therefore its floating-point rounding — identical to
the uncompressed implementation: fitted parameters are bit-for-bit the same
(``tests/test_perf_equivalence.py`` asserts it against the verbatim seed port
in ``benchmarks/seed_baselines.py``).  Columns with mostly-distinct values
fall back to the direct path, so nothing ever gets slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_array, check_fitted

_LOG_2PI = float(np.log(2.0 * np.pi))


#: Columns whose unique-value count is at most this fraction of their length
#: take the duplicate-compressed path; above it the direct path is cheaper.
_COMPRESS_MAX_UNIQUE_FRACTION = 0.5


def _compressible(n_unique: int, n: int) -> bool:
    return n_unique <= int(n * _COMPRESS_MAX_UNIQUE_FRACTION)


def kmeans_1d(
    values: np.ndarray, k: int, *, n_iter: int = 25, seed: SeedLike = None
) -> np.ndarray:
    """Simple 1-D k-means returning ``k`` (or fewer) sorted cluster centres.

    Centres are initialised at evenly spaced quantiles, which makes the result
    deterministic for a fixed input and well spread for skewed data.
    """
    arr = check_array(values, ndim=1, dtype=np.float64, allow_empty=False, name="values")
    uniques, inverse = np.unique(arr, return_inverse=True)
    k = int(min(k, uniques.size))
    centers = np.quantile(arr, np.linspace(0.0, 1.0, k)) if k > 1 else np.array([arr.mean()])
    centers = np.unique(centers)
    return _kmeans_refine(arr, uniques, inverse, centers, n_iter)


def _kmeans_refine(
    arr: np.ndarray,
    uniques: np.ndarray,
    inverse: np.ndarray,
    centers: np.ndarray,
    n_iter: int,
) -> np.ndarray:
    """Lloyd iterations over pre-initialised ``centers``.

    The nearest-centre assignment is a pure per-value function, so on
    duplicate-heavy columns it is evaluated on the unique values only and
    gathered back through ``inverse``; cluster means still average the
    full-length extraction ``arr[assign == j]`` so their summation order (and
    rounding) matches the per-point implementation exactly.
    """
    compressed = _compressible(uniques.size, arr.size)
    for _ in range(n_iter):
        # Assign every point to the closest centre, then recompute centres.
        if compressed:
            assign_u = np.argmin(np.abs(uniques[:, None] - centers[None, :]), axis=1)
            assign = assign_u[inverse]
            occupied = np.bincount(assign_u, minlength=centers.size) > 0
        else:
            assign = np.argmin(np.abs(arr[:, None] - centers[None, :]), axis=1)
            occupied = np.bincount(assign, minlength=centers.size) > 0
        new_centers = np.array(
            [arr[assign == j].mean() if occupied[j] else centers[j] for j in range(centers.size)]
        )
        if np.allclose(new_centers, centers):
            centers = new_centers
            break
        centers = new_centers
    return np.sort(centers)


@dataclass
class MixtureParameters:
    """Fitted parameters of a 1-D Gaussian mixture."""

    weights: np.ndarray
    means: np.ndarray
    stds: np.ndarray

    @property
    def n_components(self) -> int:
        return int(self.weights.size)


class GaussianMixture:
    """EM-fitted 1-D Gaussian mixture with component pruning.

    Parameters
    ----------
    n_components:
        Maximum number of mixture components.
    max_iter:
        Maximum EM iterations.
    tol:
        Relative log-likelihood improvement below which EM stops.
    weight_threshold:
        Components whose mixing weight falls below this value after
        convergence are pruned (and the remaining weights renormalised),
        mirroring the sparsity-inducing behaviour of a Bayesian GMM.
    reg_var:
        Variance floor added for numerical stability.
    """

    def __init__(
        self,
        n_components: int = 10,
        *,
        max_iter: int = 100,
        tol: float = 1e-4,
        weight_threshold: float = 5e-3,
        reg_var: float = 1e-6,
        seed: SeedLike = None,
    ) -> None:
        if n_components < 1:
            raise ValueError("n_components must be at least 1")
        self.n_components = int(n_components)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.weight_threshold = float(weight_threshold)
        self.reg_var = float(reg_var)
        self._rng = as_rng(seed)
        self.params_: Optional[MixtureParameters] = None
        self.log_likelihood_: Optional[float] = None
        self.n_iter_: Optional[int] = None

    # -- internals -----------------------------------------------------------
    def _log_prob_components(self, x: np.ndarray, params: MixtureParameters) -> np.ndarray:
        """Return log of weighted component densities, shape ``(n, k)``."""
        diff = x[:, None] - params.means[None, :]
        var = params.stds[None, :] ** 2
        log_pdf = -0.5 * (diff * diff / var + np.log(var) + _LOG_2PI)
        return log_pdf + np.log(params.weights[None, :])

    @staticmethod
    def _logsumexp(a: np.ndarray, axis: int = 1) -> np.ndarray:
        amax = a.max(axis=axis, keepdims=True)
        return (amax + np.log(np.exp(a - amax).sum(axis=axis, keepdims=True))).squeeze(axis)

    # -- fitting --------------------------------------------------------------
    def fit(self, values: np.ndarray) -> "GaussianMixture":
        x = check_array(values, ndim=1, dtype=np.float64, allow_empty=False, name="values")
        n = x.size
        uniques, inverse = np.unique(x, return_inverse=True)
        k = min(self.n_components, uniques.size)
        # Same centres as ``kmeans_1d(x, k)``, sharing the unique decomposition.
        centers = np.quantile(x, np.linspace(0.0, 1.0, k)) if k > 1 else np.array([x.mean()])
        means = _kmeans_refine(x, uniques, inverse, np.unique(centers), 25)
        k = means.size
        global_std = max(float(x.std()), np.sqrt(self.reg_var))
        stds = np.full(k, global_std if k == 1 else max(global_std / k, np.sqrt(self.reg_var)))
        weights = np.full(k, 1.0 / k)
        params = MixtureParameters(weights, means, stds)

        # On duplicate-heavy columns the per-value E-step runs on the unique
        # values; the gathered full-length arrays feed the M-step reductions
        # so every sum keeps the uncompressed operand order (and bits).
        compressed = _compressible(uniques.size, n)
        xe = uniques if compressed else x
        prev_ll = -np.inf
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            # E-step: responsibilities.
            log_joint = self._log_prob_components(xe, params)
            log_norm = self._logsumexp(log_joint, axis=1)
            resp = np.exp(log_joint - log_norm[:, None])

            # M-step.
            if compressed:
                ll = float(log_norm[inverse].mean())
                nk = resp[inverse].sum(axis=0) + 1e-12
                weights = nk / n
                means = (resp * xe[:, None])[inverse].sum(axis=0) / nk
                sq = (xe[:, None] - means[None, :]) ** 2
                var = (resp * sq)[inverse].sum(axis=0) / nk + self.reg_var
            else:
                ll = float(log_norm.mean())
                nk = resp.sum(axis=0) + 1e-12
                weights = nk / n
                means = (resp * xe[:, None]).sum(axis=0) / nk
                var = (resp * (xe[:, None] - means[None, :]) ** 2).sum(axis=0) / nk + self.reg_var
            stds = np.sqrt(var)
            params = MixtureParameters(weights, means, stds)

            if np.isfinite(prev_ll) and abs(ll - prev_ll) < self.tol * max(abs(prev_ll), 1.0):
                prev_ll = ll
                break
            prev_ll = ll

        # Prune negligible components and renormalise.
        keep = params.weights >= self.weight_threshold
        if not keep.any():
            keep = params.weights == params.weights.max()
        params = MixtureParameters(
            params.weights[keep] / params.weights[keep].sum(),
            params.means[keep],
            params.stds[keep],
        )
        self.params_ = params
        self.log_likelihood_ = prev_ll
        self.n_iter_ = n_iter
        return self

    # -- inference ------------------------------------------------------------
    @property
    def n_active_components(self) -> int:
        check_fitted(self, ["params_"])
        return self.params_.n_components

    def _responsibilities_compressed(
        self, x: np.ndarray
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """``(responsibilities, gather index)`` with the duplicate fast path.

        Responsibilities are a pure per-value function; on duplicate-heavy
        inputs they are computed on the unique values and the second element
        is the ``np.unique`` inverse index (``None`` on the direct path).
        Gathering through it reproduces the direct result bit-for-bit.
        """
        check_fitted(self, ["params_"])
        if x.ndim == 1 and x.size > 64:
            uniques, inverse = np.unique(x, return_inverse=True)
            if _compressible(uniques.size, x.size):
                log_joint = self._log_prob_components(uniques, self.params_)
                log_norm = self._logsumexp(log_joint, axis=1)
                return np.exp(log_joint - log_norm[:, None]), inverse
        log_joint = self._log_prob_components(x, self.params_)
        log_norm = self._logsumexp(log_joint, axis=1)
        return np.exp(log_joint - log_norm[:, None]), None

    def responsibilities(self, values: np.ndarray) -> np.ndarray:
        """Posterior component probabilities for each value, shape ``(n, k)``."""
        x = np.asarray(values, dtype=np.float64)
        resp, inverse = self._responsibilities_compressed(x)
        return resp if inverse is None else resp[inverse]

    def predict_component(self, values: np.ndarray) -> np.ndarray:
        """Hard component assignment (argmax responsibility)."""
        x = np.asarray(values, dtype=np.float64)
        resp, inverse = self._responsibilities_compressed(x)
        comp = np.argmax(resp, axis=1)
        return comp if inverse is None else comp[inverse]

    def sample_component(self, values: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Sample a component per value from its posterior (CTGAN-style encoding)."""
        rng = rng or self._rng
        x = np.asarray(values, dtype=np.float64)
        resp, inverse = self._responsibilities_compressed(x)
        cum = np.cumsum(resp, axis=1)
        if inverse is not None:
            cum = cum[inverse]
        u = rng.random((cum.shape[0], 1))
        return (u < cum).argmax(axis=1)

    def log_likelihood(self, values: np.ndarray) -> float:
        """Mean per-sample log likelihood of ``values`` under the mixture."""
        check_fitted(self, ["params_"])
        x = np.asarray(values, dtype=np.float64)
        if x.ndim == 1 and x.size > 64:
            uniques, inverse = np.unique(x, return_inverse=True)
            if _compressible(uniques.size, x.size):
                log_norm = self._logsumexp(self._log_prob_components(uniques, self.params_), axis=1)
                return float(log_norm[inverse].mean())
        return float(self._logsumexp(self._log_prob_components(x, self.params_), axis=1).mean())

    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``n`` samples from the fitted mixture."""
        check_fitted(self, ["params_"])
        rng = rng or self._rng
        comp = rng.choice(self.params_.n_components, size=n, p=self.params_.weights)
        return rng.normal(self.params_.means[comp], self.params_.stds[comp])

    # -- mode-specific normalisation helpers ----------------------------------
    def normalize(self, values: np.ndarray, components: np.ndarray) -> np.ndarray:
        """Normalised offset of each value within its assigned component.

        Follows the CTGAN convention ``alpha = (x - mu_c) / (4 * sigma_c)``,
        clipped to [-1, 1].
        """
        check_fitted(self, ["params_"])
        x = np.asarray(values, dtype=np.float64)
        c = np.asarray(components, dtype=np.int64)
        alpha = (x - self.params_.means[c]) / (4.0 * self.params_.stds[c])
        return np.clip(alpha, -1.0, 1.0)

    def denormalize(self, alphas: np.ndarray, components: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`normalize`."""
        check_fitted(self, ["params_"])
        a = np.asarray(alphas, dtype=np.float64)
        c = np.asarray(components, dtype=np.int64)
        return a * 4.0 * self.params_.stds[c] + self.params_.means[c]
