"""Gaussian mixture modelling.

CTGAN-family models (including CTABGAN+) encode each numerical column with
*mode-specific normalisation*: a Gaussian mixture is fitted per column, each
value is assigned to a mixture component, and the value is expressed as a
(component id, normalised offset within the component) pair.  This sub-package
provides the EM Gaussian mixture used for that encoding, together with a
k-means initialiser.
"""

from repro.mixture.gmm import GaussianMixture, kmeans_1d

__all__ = ["GaussianMixture", "kmeans_1d"]
