"""repro.scenarios — named, seedable, long-horizon replay scenarios.

This package composes the panda workload generators
(:mod:`repro.panda.workload`, :mod:`repro.panda.temporal`,
:mod:`repro.panda.users`) into deterministic replay streams and drives them
through the full serving stack (:class:`~repro.serve.service.SamplingService`
with chunk resilience, pool supervision and fault injection), closing the
loop with drift detection, auto-retrain, canary comparison and promotion.

Scenario catalog
----------------
Run any of these with ``repro-experiments scenario <name> --seed N`` or
:func:`run_scenario`; ``scenario_names()`` lists them programmatically.

``steady-diurnal``
    Stationary diurnal + weekly traffic with campaign bursts; no drift, no
    faults.  The false-positive floor: the monitor must stay silent.
``multi-tenant-burst``
    Bursty contention across 8 tenants and 96 activity-skewed users;
    request counts and sizes whipsaw while the distribution is stationary.
``gradual-drift``
    The workload column's mean ramps up 1.6 sigma over 8 ticks; sustained
    KS breach → auto-retrain → canary → promotion.
``abrupt-drift``
    Step categorical drift: 55 % of ``datatype`` collapses onto the modal
    category at tick 10; JSD breach within the debounce window.
``degenerate-tables``
    Adversarial windows — constant tables, single-category tables, 8-row
    stubs — at isolated ticks.  The monitor neither crashes nor fires.
``chaos-replay``
    50 ticks of sustained traffic with a kill+fail fault plan re-armed
    every tenth tick; every fault recovered, zero lost requests,
    deterministic output fingerprint.
``chaos-drift``
    The proving ground: gradual drift **and** worker kills armed before and
    during the retrain window.  The full loop must complete under fire.

The drift → retrain → canary → promote contract
-----------------------------------------------
1. Every tick the engine feeds one :class:`~repro.scenarios.streams.WindowStream`
   window to a :class:`~repro.metrics.distribution.DriftMonitor` (sliding
   two-sample KS for numerical columns, JSD or chi-squared for categorical,
   thresholds + debounce from :class:`~repro.metrics.distribution.DriftConfig`).
2. A detector fires only after ``debounce`` consecutive breaching windows,
   then latches (one event per sustained episode, not one per window).
3. On any event the engine retrains the surrogate on the concatenation of
   the most recent ``retrain_windows`` observed windows and registers the
   result in the :class:`~repro.serve.registry.ModelRegistry` under the
   ``canary`` stage — ``prod`` keeps serving throughout.
4. Canary comparison: both canary and prod sample ``canary_rows`` rows
   (derived seeds) and are scored — mean Wasserstein + mean JSD — against a
   *held-out* window drawn from an independent seed stream of the same
   drifted distribution.  Lower total wins.
5. Promote: registry ``prod`` pointer flips to the canary version, the
   service hot-swaps the model at the safe point between micro-batches
   (zero lost requests), and the monitor rebaselines on the retrain corpus.
   Rollback: the ``canary`` stage is cleared, prod keeps serving, and the
   latched monitor stays quiet until the next rebaseline.

Determinism
-----------
Everything — window contents, request counts/sizes/tenants/seeds, drift
transforms, retrain corpora, canary samples, fault injections — derives
from the scenario seed via :func:`repro.utils.rng.derive_seed`.  The
deterministic core of the :class:`~repro.scenarios.report.ScenarioReport`
(including the SHA-256 fingerprint over every served byte) is therefore
identical across reruns, worker counts, and injected worker kills.
"""

from repro.scenarios.catalog import SCENARIOS, ScenarioSpec, get_scenario, scenario_names
from repro.scenarios.engine import ScenarioEngine, run_scenario
from repro.scenarios.report import ScenarioReport, table_fingerprint
from repro.scenarios.streams import DriftPhase, TrafficModel, TrafficRequest, WindowStream

__all__ = [
    "SCENARIOS",
    "DriftPhase",
    "ScenarioEngine",
    "ScenarioReport",
    "ScenarioSpec",
    "TrafficModel",
    "TrafficRequest",
    "WindowStream",
    "get_scenario",
    "run_scenario",
    "scenario_names",
    "table_fingerprint",
]
