"""The named scenario catalog.

Each entry is a fully declarative :class:`ScenarioSpec` — the engine holds
all behaviour, the spec holds only knobs, so a scenario is reproducible
from its name + seed alone.  Sizes here are deliberately modest (seconds,
not minutes, on a laptop); the CLI's ``--ticks/--window-rows/--requests``
overrides scale any of them up to the long-horizon runs the ROADMAP names.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.metrics.distribution import DriftConfig
from repro.scenarios.streams import DriftPhase
from repro.serve.api import PRIORITY_CLASSES

__all__ = ["ScenarioSpec", "get_scenario", "scenario_names", "SCENARIOS"]


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one replay scenario."""

    name: str
    description: str
    #: Replay horizon (one tick = one traffic batch + one observed window).
    ticks: int = 16
    #: Rows per observed drift-monitor window.
    window_rows: int = 384
    #: Rows of the pre-drift training corpus (reference + initial model).
    train_rows: int = 1536
    #: Traffic shaping (see :class:`~repro.scenarios.streams.TrafficModel`).
    requests_per_tick: int = 4
    base_rows: int = 448
    min_rows: int = 256
    max_rows: int = 1536
    n_tenants: int = 5
    n_users: int = 40
    n_bursts: int = 3
    n_days: float = 14.0
    #: Surrogate + serving knobs.
    model: str = "copula"
    sampling_mode: str = "fast"
    chunk_size: int = 128
    max_pool_restarts: int = 8
    #: Drift schedule applied to the window stream.
    drift_phases: Tuple[DriftPhase, ...] = ()
    #: Adversarial windows: tick -> "constant" | "single_category" | "tiny".
    degenerate_ticks: Mapping[int, str] = field(default_factory=dict)
    #: Drift-monitor thresholds/debounce.
    drift: DriftConfig = field(default_factory=DriftConfig)
    #: Fault plan spec (``repro.serve.faults.FaultPlan.parse`` syntax) and
    #: the ticks at which it is (re-)armed.  Empty = no chaos.
    fault_plan: Optional[str] = None
    fault_arm_ticks: Tuple[int, ...] = ()
    #: Auto-retrain knobs: windows concatenated into the retrain corpus and
    #: rows sampled per side for the canary fidelity comparison.
    retrain_windows: int = 3
    canary_rows: int = 1024
    #: Multi-tenant front-door knobs.  ``tenant_priorities`` maps tenants to
    #: service classes (unlisted tenants get ``default_priority``);
    #: ``request_deadline`` is the SLO every request carries into admission
    #: control; ``microbatch_rows`` bounds the dispatcher's coalescing so the
    #: weighted fair ordering matters across ticks.
    tenant_priorities: Mapping[str, str] = field(default_factory=dict)
    default_priority: str = "normal"
    request_deadline: Optional[float] = None
    microbatch_rows: Optional[int] = None
    #: Admission bounds (None = that signal disabled).  Catalog entries use
    #: generous values so deterministic replays admit everything — the report
    #: proves it with ``requests_rejected == 0``.
    admission_max_queue_depth: Optional[int] = None
    admission_max_backlog_rows: Optional[int] = None
    #: Front-door mode: serve the registry's ``prod`` *and* ``canary`` stages
    #: concurrently behind a broker-routed FrontDoor, steering a seed-derived
    #: ``canary_share`` of traffic to the canary backend.
    front_door: bool = False
    canary_share: float = 0.0

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise ValueError(f"ticks must be positive, got {self.ticks}")
        if self.fault_arm_ticks and not self.fault_plan:
            raise ValueError("fault_arm_ticks given without a fault_plan")
        bad = [t for t in self.fault_arm_ticks if not 0 <= t < self.ticks]
        if bad:
            raise ValueError(f"fault_arm_ticks outside [0, {self.ticks}): {bad}")
        for priority in (self.default_priority, *self.tenant_priorities.values()):
            if priority not in PRIORITY_CLASSES:
                known = ", ".join(PRIORITY_CLASSES)
                raise ValueError(f"unknown priority {priority!r}; use one of: {known}")
        if not 0.0 <= self.canary_share < 1.0:
            raise ValueError(f"canary_share must be in [0, 1), got {self.canary_share}")
        if self.canary_share > 0 and not self.front_door:
            raise ValueError("canary_share needs front_door=True (two serving stages)")

    def scaled(self, **overrides: object) -> "ScenarioSpec":
        """A copy with fields overridden (the CLI's scaling hook)."""
        return replace(self, **overrides)


def _spec(**kwargs: object) -> ScenarioSpec:
    return ScenarioSpec(**kwargs)  # type: ignore[arg-type]


SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        _spec(
            name="steady-diurnal",
            description=(
                "Stationary baseline: diurnal + weekly traffic with campaign "
                "bursts, no drift, no faults.  The drift monitor must stay "
                "silent end to end (false-positive floor)."
            ),
            ticks=24,
            requests_per_tick=4,
        ),
        _spec(
            name="multi-tenant-burst",
            description=(
                "Bursty multi-tenant contention: more tenants, heavier "
                "activity skew and doubled campaign bursts — request counts "
                "and sizes whipsaw while the distribution stays stationary."
            ),
            ticks=24,
            requests_per_tick=7,
            n_tenants=8,
            n_users=96,
            n_bursts=6,
            base_rows=384,
            max_rows=2048,
            microbatch_rows=1024,
        ),
        _spec(
            name="multi-tenant-slo",
            description=(
                "The front-door proving ground: six tenants across the three "
                "service classes drive broker-routed traffic through prod and "
                "canary stages serving concurrently, with SLO deadlines, "
                "admission bounds and bounded micro-batches active.  "
                "Expected: zero rejections, zero lost requests, and a report "
                "fingerprint invariant across reruns and worker counts."
            ),
            ticks=20,
            requests_per_tick=6,
            n_tenants=6,
            n_users=72,
            n_bursts=4,
            base_rows=384,
            max_rows=1536,
            tenant_priorities={
                "project00": "interactive",
                "project01": "interactive",
                "project02": "normal",
                "project03": "normal",
                "project04": "batch",
                "project05": "batch",
            },
            request_deadline=900.0,
            microbatch_rows=2048,
            admission_max_queue_depth=4096,
            admission_max_backlog_rows=8_000_000,
            front_door=True,
            canary_share=0.25,
        ),
        _spec(
            name="gradual-drift",
            description=(
                "Slow numerical drift: the workload column's mean ramps up by "
                "1.6 sigma over 8 ticks starting at tick 6.  Expected: "
                "sustained KS breach -> auto-retrain -> canary -> promotion."
            ),
            ticks=28,
            drift_phases=(
                DriftPhase(
                    column="workload", kind="mean_shift", magnitude=1.6, start=6, ramp=8
                ),
            ),
        ),
        _spec(
            name="abrupt-drift",
            description=(
                "Step categorical drift: at tick 10, 55% of datatype values "
                "collapse onto the modal category.  Expected: JSD breach "
                "within the debounce window -> retrain -> promotion."
            ),
            ticks=24,
            drift_phases=(
                DriftPhase(
                    column="datatype", kind="frequency_shift", magnitude=0.55, start=10
                ),
            ),
        ),
        _spec(
            name="degenerate-tables",
            description=(
                "Adversarial windows: constant tables, single-category "
                "tables and 8-row stubs injected at isolated ticks.  The "
                "monitor must neither crash nor fire (debounce absorbs "
                "isolated spikes; tiny windows are skipped), and serving "
                "must be unaffected."
            ),
            ticks=18,
            degenerate_ticks={4: "constant", 8: "tiny", 12: "single_category"},
        ),
        _spec(
            name="chaos-replay",
            description=(
                "Long-horizon chaos without drift: a kill+fail fault plan "
                "re-armed every tenth tick across sustained traffic.  "
                "Expected: every fault recovered, zero lost requests, "
                "deterministic output fingerprint."
            ),
            ticks=50,
            requests_per_tick=6,
            fault_plan="kill@1,fail@2",
            fault_arm_ticks=(5, 15, 25, 35, 45),
            max_pool_restarts=12,
        ),
        _spec(
            name="chaos-drift",
            description=(
                "The proving ground: gradual workload drift (1.8 sigma over "
                "5 ticks from tick 4) with worker kills armed before and "
                "during the retrain window.  Expected: drift detected -> "
                "auto-retrain -> canary registered -> comparison passes -> "
                "promotion to prod, with zero lost requests throughout."
            ),
            ticks=18,
            drift_phases=(
                DriftPhase(
                    column="workload", kind="mean_shift", magnitude=1.8, start=4, ramp=5
                ),
            ),
            fault_plan="kill@1",
            fault_arm_ticks=(3, 12),
        ),
    )
}


def scenario_names() -> List[str]:
    """Catalog names, in definition order."""
    return list(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look a scenario up by name (with a helpful error)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}") from None
