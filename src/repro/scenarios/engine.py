"""The scenario engine: replay a spec through the full serving stack.

One :meth:`ScenarioEngine.run` drives, tick by tick:

1. **Traffic** — the tick's :class:`~repro.scenarios.streams.TrafficRequest`
   batch is submitted as :class:`~repro.serve.api.RequestSpec` objects to a
   live :class:`~repro.serve.service.SamplingService` (weighted fair
   queueing, admission control, micro-batching, backpressure, chunk
   resilience and pool supervision all active), every result is collected,
   fingerprinted, and counted — a lost or erroneous request is a reportable
   defect, never a silent skip.  Front-door specs route the same traffic
   through a :class:`~repro.serve.http.FrontDoor` across ``prod`` *and*
   ``canary`` backend services, steering a seed-derived share of requests
   to the canary stage — stage choice is pinned per request (never load- or
   time-dependent), which is what keeps the report fingerprint invariant
   across reruns and worker counts.
2. **Chaos** — at scheduled ticks the spec's
   :class:`~repro.serve.faults.FaultPlan` is re-armed, so worker kills /
   transient failures land *inside* live traffic; recovery is the serving
   stack's job and byte-determinism is asserted over the whole run.
3. **Observation** — the tick's window from the
   :class:`~repro.scenarios.streams.WindowStream` feeds the
   :class:`~repro.metrics.distribution.DriftMonitor`.
4. **The loop** — on sustained drift: retrain on the recent drifted
   windows, register the new version under the ``canary`` stage, compare
   canary vs ``prod`` fidelity on a held-out window, then promote (registry
   pointer swap + zero-downtime hot model swap + monitor rebaseline) or
   roll back (canary stage cleared, prod keeps serving).

Every random choice derives from the scenario seed, so the deterministic
core of the resulting :class:`~repro.scenarios.report.ScenarioReport` —
fingerprint included — is identical across reruns, worker counts, and
injected faults.
"""

from __future__ import annotations

import hashlib
import tempfile
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.metrics.distribution import DriftMonitor
from repro.metrics.distribution import mean_jsd, mean_wasserstein
from repro.obs.tracing import Tracer
from repro.models import Surrogate, create_surrogate
from repro.panda.generator import GeneratorConfig
from repro.scenarios.catalog import ScenarioSpec, get_scenario
from repro.scenarios.report import ScenarioReport, table_fingerprint
from repro.scenarios.streams import TrafficModel, TrafficRequest, WindowStream
from repro.serve.admission import AdmissionPolicy, ServiceOverloaded
from repro.serve.api import RequestSpec
from repro.serve.faults import FaultPlan
from repro.serve.http import FrontDoor
from repro.serve.registry import ModelRegistry
from repro.serve.service import SamplingService
from repro.tabular.table import Table
from repro.utils.rng import derive_seed

__all__ = ["ScenarioEngine", "run_scenario"]


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (the service's convention); 0.0 when empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


class ScenarioEngine:
    """Run one :class:`ScenarioSpec` end to end.

    Parameters
    ----------
    spec:
        The scenario (a catalog name or a :class:`ScenarioSpec`).
    seed:
        Master seed; every stream, request, retrain and comparison derives
        from it.
    workers:
        Worker processes for the sampling service (``None`` = autodetect,
        honouring ``REPRO_WORKERS``).
    registry_root:
        Directory for the :class:`ModelRegistry`.  ``None`` uses a run-local
        temporary directory (removed afterwards).
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer` installed in every
        backend service — the whole run's spans land in one buffer (the
        CLI's ``--trace-out``).  Tracing never touches served bytes: the
        report's deterministic core is identical with or without it.
    """

    def __init__(
        self,
        spec: Union[str, ScenarioSpec],
        *,
        seed: int = 7,
        workers: Optional[int] = None,
        registry_root: Optional[Union[str, Path]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.spec = get_scenario(spec) if isinstance(spec, str) else spec
        self.seed = int(seed)
        self.workers = workers
        self.registry_root = registry_root
        self.tracer = tracer

    # -- pieces -------------------------------------------------------------------
    def _generator_config(self) -> GeneratorConfig:
        spec = self.spec
        return GeneratorConfig(
            n_jobs=max(spec.train_rows * 3, 2000),
            n_days=spec.n_days,
            n_sites=12,
            n_datasets=150,
            n_users=spec.n_users,
            seed=derive_seed(self.seed, "generator"),
        )

    def _window_stream(self) -> WindowStream:
        spec = self.spec
        return WindowStream(
            window_rows=spec.window_rows,
            seed=derive_seed(self.seed, "windows"),
            generator=self._generator_config(),
            drift_phases=spec.drift_phases,
            degenerate_ticks=spec.degenerate_ticks,
        )

    def _traffic_model(self) -> TrafficModel:
        spec = self.spec
        return TrafficModel(
            seed=derive_seed(self.seed, "traffic"),
            ticks=spec.ticks,
            n_days=spec.n_days,
            requests_per_tick=spec.requests_per_tick,
            base_rows=spec.base_rows,
            min_rows=spec.min_rows,
            max_rows=spec.max_rows,
            n_tenants=spec.n_tenants,
            n_users=spec.n_users,
            n_bursts=spec.n_bursts,
            tenant_priorities=spec.tenant_priorities,
            default_priority=spec.default_priority,
            deadline=spec.request_deadline,
        )

    def _admission_policy(self) -> Optional[AdmissionPolicy]:
        spec = self.spec
        if spec.admission_max_queue_depth is None and spec.admission_max_backlog_rows is None:
            return None
        return AdmissionPolicy(
            max_queue_depth=spec.admission_max_queue_depth,
            max_backlog_rows=spec.admission_max_backlog_rows,
        )

    def _request_stage(self, tick: int, position: int) -> str:
        """Deterministic prod/canary split: derived from the seed, never from
        load or timing (the fingerprint-invariance requirement)."""
        if self.spec.canary_share <= 0:
            return "prod"
        draw = derive_seed(self.seed, "stage", tick, position) % 1_000_000
        return "canary" if draw / 1_000_000 < self.spec.canary_share else "prod"

    def _fit_model(self, corpus: Table, *, purpose: str, tick: int = -1) -> Surrogate:
        model = create_surrogate(self.spec.model)
        model.fit(corpus)
        return model

    def _fidelity(self, model: Surrogate, holdout: Table, *, seed: int) -> float:
        """Scalar fidelity of a model against held-out data (lower = better)."""
        sample = model.sample(
            self.spec.canary_rows, seed=seed, sampling_mode=self.spec.sampling_mode
        )
        wd, _ = mean_wasserstein(holdout, sample)
        jsd, _ = mean_jsd(holdout, sample)
        return float(wd + jsd)

    # -- the run ------------------------------------------------------------------
    def run(self) -> ScenarioReport:
        spec = self.spec
        started = time.perf_counter()
        stream = self._window_stream()
        traffic = self._traffic_model()

        train_table = stream.training_table(spec.train_rows)
        model = self._fit_model(train_table, purpose="initial")

        plan: Optional[FaultPlan] = None
        if spec.fault_plan:
            plan = FaultPlan.parse(spec.fault_plan)
            plan.disarm()  # quiet until the first scheduled arm tick

        registry_dir: Optional[tempfile.TemporaryDirectory] = None
        root = self.registry_root
        if root is None:
            registry_dir = tempfile.TemporaryDirectory(prefix="repro-scenario-registry-")
            root = registry_dir.name
        registry = ModelRegistry(root, warm_chunk_rows=spec.chunk_size)
        model_name = spec.name
        initial_version = registry.register(model_name, model, stage="prod")

        monitor = DriftMonitor(train_table, config=spec.drift)
        recent_windows: Deque[Table] = deque(maxlen=max(spec.retrain_windows, 1))

        report = ScenarioReport(
            scenario=spec.name,
            seed=self.seed,
            model=spec.model,
            sampling_mode=spec.sampling_mode,
            workers=0,  # filled below once the service resolved the count
            ticks=spec.ticks,
            initial_version=initial_version,
        )
        report.final_prod_version = initial_version
        report.registry_versions.append(initial_version)
        fingerprint = hashlib.sha256()
        armed_interval_open = False
        admission = self._admission_policy()

        # The serving backends: always a ``prod`` service; front-door specs
        # add a ``canary`` service over the same initial model and route both
        # through a broker-backed FrontDoor.
        services: Dict[str, SamplingService] = {
            "prod": SamplingService(
                model,
                workers=self.workers,
                chunk_size=spec.chunk_size,
                fault_plan=plan,
                max_pool_restarts=spec.max_pool_restarts,
                admission=admission,
                microbatch_rows=spec.microbatch_rows,
                tracer=self.tracer,
            )
        }
        front_door: Optional[FrontDoor] = None
        if spec.front_door:
            services["canary"] = SamplingService(
                model,
                workers=self.workers,
                chunk_size=spec.chunk_size,
                max_pool_restarts=spec.max_pool_restarts,
                admission=admission,
                microbatch_rows=spec.microbatch_rows,
                tracer=self.tracer,
            )
            canary_version = registry.register(model_name, model, stage="canary")
            report.registry_versions.append(canary_version)
            front_door = FrontDoor(services)
        report.workers = services["prod"].workers
        tenant_waits: Dict[str, List[float]] = {}
        all_waits: List[float] = []
        try:
            for tick in range(spec.ticks):
                # 1. Chaos: (re-)arm the fault plan at scheduled ticks, closing
                # the accounting interval of the previous arming first.
                if plan is not None and tick in spec.fault_arm_ticks:
                    if armed_interval_open:
                        report.faults_injected += plan.spent()
                    plan.arm()
                    armed_interval_open = True
                    report.faults_armed += 1
                    report.timeline.append(
                        {"tick": tick, "event": "faults_armed", "plan": spec.fault_plan}
                    )

                # 2. Traffic: submit the whole tick, then collect every result.
                requests = traffic.requests(tick)
                handles: List[Tuple[object, TrafficRequest]] = []
                report.requests_submitted += len(requests)
                for position, request in enumerate(requests):
                    request_spec = RequestSpec(
                        n=request.rows,
                        seed=request.seed,
                        sampling_mode=spec.sampling_mode,
                        tenant=request.tenant,
                        priority=request.priority,
                        deadline=request.deadline,
                    )
                    stage = self._request_stage(tick, position)
                    report.rows_requested += request.rows
                    report.requests_by_tenant[request.tenant] = (
                        report.requests_by_tenant.get(request.tenant, 0) + 1
                    )
                    try:
                        if front_door is not None:
                            handle = front_door.submit(request_spec, model=stage)
                        else:
                            handle = services["prod"].submit(request_spec)
                    except ServiceOverloaded as exc:
                        report.requests_rejected += 1
                        report.timeline.append(
                            {
                                "tick": tick,
                                "event": "request_rejected",
                                "tenant": request.tenant,
                                "reason": getattr(exc, "reason", "overloaded"),
                            }
                        )
                        continue
                    report.requests_by_stage[stage] = (
                        report.requests_by_stage.get(stage, 0) + 1
                    )
                    handles.append((handle, request))
                for handle, request in handles:
                    try:
                        table = handle.result()
                    except Exception as exc:
                        report.request_errors += 1
                        report.timeline.append(
                            {"tick": tick, "event": "request_error", "error": str(exc)}
                        )
                        continue
                    report.requests_served += 1
                    report.rows_served += table.n_rows
                    table_fingerprint(table, fingerprint)
                    wait = handle.latency
                    if wait is not None:
                        all_waits.append(wait)
                        tenant_waits.setdefault(request.tenant, []).append(wait)

                # 3. Observation: one window through the drift monitor.
                window = stream.window(tick)
                recent_windows.append(window)
                events = monitor.observe(window)
                report.windows_observed += 1
                for event in events:
                    record = event.as_dict()
                    record["tick"] = tick
                    report.drift_events.append(record)
                    report.timeline.append(
                        {
                            "tick": tick,
                            "event": "drift_detected",
                            "column": event.column,
                            "statistic": event.statistic,
                            "value": round(float(event.value), 12),
                        }
                    )

                # 4. The retrain → canary → promote/rollback loop.
                if events:
                    self._retrain_and_compare(
                        tick=tick,
                        stream=stream,
                        recent_windows=list(recent_windows),
                        registry=registry,
                        model_name=model_name,
                        services=services,
                        monitor=monitor,
                        report=report,
                    )

            if plan is not None and armed_interval_open:
                report.faults_injected += plan.spent()

            all_stats = {name: svc.stats() for name, svc in services.items()}
            report.pool_restarts = sum(s.pool_restarts for s in all_stats.values())
            report.chunk_retries = sum(s.chunk_retries for s in all_stats.values())
            report.chunk_timeouts = sum(s.chunk_timeouts for s in all_stats.values())
            report.hedges = sum(s.hedges for s in all_stats.values())
            report.degraded_passes = sum(s.degraded_passes for s in all_stats.values())
            report.cancelled_requests = sum(
                s.cancelled_requests for s in all_stats.values()
            )
            report.model_swaps = sum(svc.model_swaps for svc in services.values())
            report.p50_latency = _percentile(all_waits, 0.50)
            report.p95_latency = _percentile(all_waits, 0.95)
            report.tenant_waits = {
                tenant: {
                    "requests": float(len(waits)),
                    "p50_wait_s": _percentile(waits, 0.50),
                    "p95_wait_s": _percentile(waits, 0.95),
                }
                for tenant, waits in sorted(tenant_waits.items())
            }
            if front_door is not None:
                report.service_stats = front_door.stats()
            else:
                report.service_stats = {
                    "models": {
                        name: stats.to_dict() for name, stats in all_stats.items()
                    }
                }
            report.obs = {
                name: svc.metrics.snapshot() for name, svc in services.items()
            }
        finally:
            if front_door is not None:
                front_door.close()
            for svc in services.values():
                svc.close()
            if plan is not None:
                plan.cleanup()
            if registry_dir is not None:
                registry_dir.cleanup()

        report.output_fingerprint = fingerprint.hexdigest()
        report.wall_seconds = time.perf_counter() - started
        if report.wall_seconds > 0:
            report.rows_per_second = report.rows_served / report.wall_seconds
        return report

    def _retrain_and_compare(
        self,
        *,
        tick: int,
        stream: WindowStream,
        recent_windows: List[Table],
        registry: ModelRegistry,
        model_name: str,
        services: Dict[str, SamplingService],
        monitor: DriftMonitor,
        report: ScenarioReport,
    ) -> None:
        """Auto-retrain on drifted windows; canary-compare; promote or roll back."""
        spec = self.spec
        corpus = Table.concat(recent_windows)
        report.retrains += 1
        report.timeline.append(
            {
                "tick": tick,
                "event": "retrain_started",
                "corpus_rows": corpus.n_rows,
                "windows": len(recent_windows),
            }
        )
        candidate = self._fit_model(corpus, purpose="retrain", tick=tick)
        version = registry.register(model_name, candidate, stage="canary")
        report.registry_versions.append(version)
        report.timeline.append(
            {"tick": tick, "event": "canary_registered", "version": version}
        )
        if "canary" in services:
            # Front-door mode: the canary *backend* starts serving the
            # candidate immediately — live traffic on the canary stage is the
            # point of running two stages.  The queue is drained here (all
            # tick results collected before observation), so the swap point
            # is deterministic.
            services["canary"].swap_model(candidate)
            report.timeline.append(
                {"tick": tick, "event": "canary_serving", "version": version}
            )

        # Canary comparison on held-out replay traffic: both sides sample
        # with their own derived seeds and score against the same holdout.
        holdout = stream.holdout_window(tick, rows=spec.canary_rows)
        canary_score = self._fidelity(
            candidate, holdout, seed=derive_seed(self.seed, "canary-sample", tick)
        )
        prod_model = registry.get(model_name, "prod")
        prod_score = self._fidelity(
            prod_model, holdout, seed=derive_seed(self.seed, "prod-sample", tick)
        )
        comparison = {
            "tick": tick,
            "event": "canary_comparison",
            "version": version,
            "canary_score": round(canary_score, 12),
            "prod_score": round(prod_score, 12),
        }
        report.timeline.append(comparison)

        if canary_score <= prod_score:
            registry.promote(model_name, version)
            # Zero-downtime: applied between micro-batches.  The canary
            # backend (if any) already serves the candidate.
            services["prod"].swap_model(candidate)
            monitor.rebaseline(corpus)
            report.promotions += 1
            report.final_prod_version = version
            report.timeline.append(
                {"tick": tick, "event": "promoted", "version": version}
            )
        else:
            registry.clear_stage(model_name, "canary")
            if "canary" in services:
                # Roll the canary backend back to the surviving prod model.
                services["canary"].swap_model(prod_model)
            report.rollbacks += 1
            report.timeline.append(
                {"tick": tick, "event": "rolled_back", "version": version}
            )


def run_scenario(
    name: Union[str, ScenarioSpec],
    *,
    seed: int = 7,
    workers: Optional[int] = None,
    registry_root: Optional[Union[str, Path]] = None,
    tracer: Optional[Tracer] = None,
) -> ScenarioReport:
    """Convenience wrapper: build a :class:`ScenarioEngine` and run it."""
    return ScenarioEngine(
        name, seed=seed, workers=workers, registry_root=registry_root, tracer=tracer
    ).run()
