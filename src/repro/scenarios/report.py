"""Per-scenario run reports with a deterministic core.

A :class:`ScenarioReport` splits into two layers:

* the **deterministic core** (:meth:`ScenarioReport.deterministic_dict`) —
  request/row counts, per-tenant traffic, the SHA-256 fingerprint of every
  served byte, drift events, the retrain/canary/promote timeline, fault
  counters and registry versions.  Two runs of the same scenario at the
  same seed produce an *identical* core, even across worker kills and pool
  rebuilds — that is the scenario engine's acceptance contract, asserted in
  ``tests/test_scenarios.py``.
* the **timing layer** — wall-clock latency percentiles and rows/s, which
  vary run to run and are reported for operators, not for equality.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

# Canonical home: the serving layer owns the byte contract now.  Re-exported
# here because the fingerprint's historical import path is this module.
from repro.serve.api import table_fingerprint

__all__ = ["ScenarioReport", "table_fingerprint"]


@dataclass
class ScenarioReport:
    """Everything one scenario run produced, JSON-serialisable."""

    scenario: str
    seed: int
    model: str
    sampling_mode: str
    workers: int
    ticks: int

    # -- deterministic core -------------------------------------------------------
    requests_submitted: int = 0
    requests_served: int = 0
    request_errors: int = 0
    #: Requests refused by admission control (0 unless the spec's bounds bite).
    requests_rejected: int = 0
    rows_requested: int = 0
    rows_served: int = 0
    requests_by_tenant: Dict[str, int] = field(default_factory=dict)
    #: Requests per serving stage (front-door scenarios: ``prod``/``canary``).
    requests_by_stage: Dict[str, int] = field(default_factory=dict)
    #: SHA-256 over every served table, in submission order.
    output_fingerprint: str = ""
    windows_observed: int = 0
    drift_events: List[Dict[str, object]] = field(default_factory=list)
    #: Ordered ``{"tick": ..., "event": ..., ...}`` entries: fault armings,
    #: drift detections, retrains, canary registrations, promotions, rollbacks.
    timeline: List[Dict[str, object]] = field(default_factory=list)
    faults_armed: int = 0
    faults_injected: int = 0
    retrains: int = 0
    promotions: int = 0
    rollbacks: int = 0
    registry_versions: List[str] = field(default_factory=list)
    initial_version: str = ""
    final_prod_version: str = ""
    pool_restarts: int = 0
    chunk_retries: int = 0
    chunk_timeouts: int = 0
    hedges: int = 0
    degraded_passes: int = 0
    cancelled_requests: int = 0
    model_swaps: int = 0

    # -- timing layer (excluded from determinism) ---------------------------------
    wall_seconds: float = 0.0
    rows_per_second: float = 0.0
    p50_latency: float = 0.0
    p95_latency: float = 0.0
    #: Per-tenant ``{"requests", "p50_wait_s", "p95_wait_s"}`` (the fairness
    #: evidence: wall-clock waits vary run to run, their *bounds* are asserted).
    tenant_waits: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: The serving stats tree (:meth:`ServiceStats.to_dict` per backend), the
    #: same shape the CLI ``--json`` payloads and HTTP ``/stats`` report.
    service_stats: Dict[str, object] = field(default_factory=dict)
    #: Per-backend metrics-registry snapshots
    #: (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`) — counts are
    #: deterministic but histogram sums/percentiles are wall-clock, so the
    #: block lives in the timing layer.
    obs: Dict[str, object] = field(default_factory=dict)

    _TIMING_FIELDS = (
        "wall_seconds",
        "rows_per_second",
        "p50_latency",
        "p95_latency",
        "tenant_waits",
        "service_stats",
        "obs",
    )

    def as_dict(self) -> Dict[str, object]:
        """The full report (deterministic core + timing layer)."""
        out = dict(self.deterministic_dict())
        out["timing"] = {
            "wall_seconds": round(self.wall_seconds, 6),
            "rows_per_second": round(self.rows_per_second, 3),
            "p50_latency": round(self.p50_latency, 6),
            "p95_latency": round(self.p95_latency, 6),
            "tenant_waits": {
                tenant: {key: round(value, 6) for key, value in waits.items()}
                for tenant, waits in sorted(self.tenant_waits.items())
            },
            "service": dict(self.service_stats),
            "obs": dict(self.obs),
        }
        return out

    def deterministic_dict(self) -> Dict[str, object]:
        """The seed-reproducible subset: identical across reruns at one seed."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "model": self.model,
            "sampling_mode": self.sampling_mode,
            "workers": self.workers,
            "ticks": self.ticks,
            "requests_submitted": self.requests_submitted,
            "requests_served": self.requests_served,
            "request_errors": self.request_errors,
            "requests_rejected": self.requests_rejected,
            "rows_requested": self.rows_requested,
            "rows_served": self.rows_served,
            "requests_by_tenant": dict(sorted(self.requests_by_tenant.items())),
            "requests_by_stage": dict(sorted(self.requests_by_stage.items())),
            "output_fingerprint": self.output_fingerprint,
            "windows_observed": self.windows_observed,
            "drift_events": list(self.drift_events),
            "timeline": list(self.timeline),
            "faults_armed": self.faults_armed,
            "faults_injected": self.faults_injected,
            "retrains": self.retrains,
            "promotions": self.promotions,
            "rollbacks": self.rollbacks,
            "registry_versions": list(self.registry_versions),
            "initial_version": self.initial_version,
            "final_prod_version": self.final_prod_version,
            "pool_restarts": self.pool_restarts,
            "chunk_retries": self.chunk_retries,
            "chunk_timeouts": self.chunk_timeouts,
            "hedges": self.hedges,
            "degraded_passes": self.degraded_passes,
            "cancelled_requests": self.cancelled_requests,
            "model_swaps": self.model_swaps,
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def summary(self) -> str:
        """A few human lines for CLI output."""
        lines = [
            f"scenario {self.scenario!r} (seed {self.seed}, {self.ticks} ticks, "
            f"model {self.model}/{self.sampling_mode}, {self.workers} workers)",
            f"  requests: {self.requests_served}/{self.requests_submitted} served, "
            f"{self.request_errors} errors, {self.rows_served} rows",
            f"  faults: {self.faults_armed} armed, {self.faults_injected} injected, "
            f"{self.pool_restarts} pool restarts, {self.chunk_retries} chunk retries, "
            f"{self.degraded_passes} degraded passes",
            f"  drift: {len(self.drift_events)} events, {self.retrains} retrains, "
            f"{self.promotions} promotions, {self.rollbacks} rollbacks "
            f"(prod {self.initial_version} -> {self.final_prod_version})",
            f"  fingerprint: {self.output_fingerprint[:16]}…",
            f"  timing: {self.rows_per_second:.0f} rows/s, "
            f"p50 {self.p50_latency * 1e3:.1f} ms, p95 {self.p95_latency * 1e3:.1f} ms, "
            f"wall {self.wall_seconds:.2f} s",
        ]
        return "\n".join(lines)
