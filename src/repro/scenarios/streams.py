"""Deterministic replay streams: windows of drifting data + shaped traffic.

Two seedable generators power every scenario:

* :class:`WindowStream` — the "world": per-tick tables of fresh PanDA-style
  job records from :class:`~repro.panda.generator.PandaWorkloadGenerator`,
  optionally transformed by a :class:`DriftPhase` schedule (gradual or
  abrupt mean/scale/frequency drift) and by degenerate-window injections
  (constant columns, single-category columns, windows too small to score).
  Window ``t`` depends only on ``(config, seed, t)``, never on what was
  generated before it, so streams replay identically from any tick.
* :class:`TrafficModel` — the "load": per-tick sampling-request descriptors
  whose *count* follows the diurnal + burst rate profile of
  :class:`~repro.panda.temporal.ArrivalProcess` and whose *sizes* follow the
  activity-weighted multi-tenant population of
  :class:`~repro.panda.users.UserPopulation` (heavy users issue heavier
  requests, projects are the tenants).  Request seeds are derived per
  ``(scenario seed, tick, index)``, which is what makes whole replay runs —
  including every served byte — reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.panda.generator import GeneratorConfig, PandaWorkloadGenerator
from repro.panda.temporal import ArrivalProcess
from repro.panda.users import UserPopulation
from repro.tabular.table import Table
from repro.utils.rng import derive_seed

__all__ = ["DriftPhase", "TrafficModel", "TrafficRequest", "WindowStream"]


@dataclass(frozen=True)
class DriftPhase:
    """One scheduled distribution change applied to the window stream.

    kind:
        ``"mean_shift"`` — add ``magnitude`` × (window std) to a numerical
        column; ``"scale"`` — multiply a numerical column by
        ``1 + magnitude``; ``"frequency_shift"`` — reassign a ``magnitude``
        fraction of a categorical column's rows to ``target`` (default: the
        column's modal category).
    start / end:
        Active tick range (``end`` exclusive; ``None`` = to the horizon).
    ramp:
        Ticks over which the effect linearly grows from 0 to ``magnitude``
        after ``start`` — 0 gives an abrupt step, >0 gradual drift.
    """

    column: str
    kind: str
    magnitude: float
    start: int
    end: Optional[int] = None
    ramp: int = 0
    target: Optional[str] = None

    _KINDS = ("mean_shift", "scale", "frequency_shift")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown drift kind {self.kind!r}; use one of {self._KINDS}")
        if self.ramp < 0:
            raise ValueError(f"ramp must be non-negative, got {self.ramp}")

    def strength(self, tick: int) -> float:
        """The effect magnitude at ``tick`` (0 outside the active range)."""
        if tick < self.start or (self.end is not None and tick >= self.end):
            return 0.0
        if self.ramp <= 0:
            return self.magnitude
        progress = min(1.0, (tick - self.start + 1) / self.ramp)
        return self.magnitude * progress

    def apply(self, table: Table, tick: int, rng: np.random.Generator) -> Table:
        strength = self.strength(tick)
        if strength == 0.0 or table.n_rows == 0:
            return table
        if self.kind == "mean_shift":
            values = np.asarray(table[self.column], dtype=np.float64)
            scale = float(values.std()) or 1.0
            return table.with_column(self.column, values + strength * scale, "numerical")
        if self.kind == "scale":
            values = np.asarray(table[self.column], dtype=np.float64)
            return table.with_column(self.column, values * (1.0 + strength), "numerical")
        values = np.asarray(table[self.column]).astype(str)
        if self.target is not None:
            target = self.target
        else:
            cats, counts = np.unique(values, return_counts=True)
            target = str(cats[np.argmax(counts)])
        flip = rng.random(values.size) < min(1.0, strength)
        values = values.copy()
        values[flip] = target
        return table.with_column(self.column, values, "categorical")


class WindowStream:
    """Seedable per-tick window tables with scheduled drift + degenerates.

    Each window is generated through the full panda pipeline (raw records →
    filtering funnel → training schema) from a tick-derived seed, then cut
    to exactly ``window_rows`` rows and passed through the drift schedule.
    ``degenerate_ticks`` maps a tick to an adversarial transform:
    ``"constant"`` (every column collapsed to its first value),
    ``"single_category"`` (categoricals collapsed, numericals kept) or
    ``"tiny"`` (an 8-row stub, below any sane detector's ``min_window``).
    """

    #: Conservative lower bound on the filtering funnel's yield; the stream
    #: asks for ``window_rows / _YIELD`` raw jobs and tops up if a seed's
    #: funnel is unusually selective.
    _YIELD = 0.40

    _DEGENERATE_KINDS = ("constant", "single_category", "tiny")

    def __init__(
        self,
        *,
        window_rows: int,
        seed: int,
        generator: Optional[GeneratorConfig] = None,
        drift_phases: Sequence[DriftPhase] = (),
        degenerate_ticks: Optional[Mapping[int, str]] = None,
    ) -> None:
        if window_rows < 1:
            raise ValueError(f"window_rows must be positive, got {window_rows}")
        self.window_rows = int(window_rows)
        self.seed = int(seed)
        self.generator_config = generator if generator is not None else GeneratorConfig()
        self.drift_phases = tuple(drift_phases)
        self.degenerate_ticks = dict(degenerate_ticks or {})
        for tick, kind in self.degenerate_ticks.items():
            if kind not in self._DEGENERATE_KINDS:
                raise ValueError(
                    f"unknown degenerate kind {kind!r} at tick {tick}; "
                    f"use one of {self._DEGENERATE_KINDS}"
                )
        self._generator = PandaWorkloadGenerator(self.generator_config)

    # -- generation ----------------------------------------------------------------
    def _raw_window(self, rows: int, seed: int) -> Table:
        """Exactly ``rows`` pipeline rows from a derived seed (topped up
        deterministically when a funnel pass under-yields)."""
        raw_jobs = max(rows + 8, math.ceil(rows / self._YIELD))
        for attempt in range(6):
            table = self._generator.generate_training_table(raw_jobs, seed=seed + attempt)
            if table.n_rows >= rows:
                return table.take(np.arange(rows))
            raw_jobs *= 2
        raise RuntimeError(
            f"funnel yield collapsed: could not produce {rows} rows from {raw_jobs} raw jobs"
        )

    def window(self, tick: int) -> Table:
        """The live window observed at ``tick`` (drift + degenerates applied)."""
        table = self._raw_window(self.window_rows, derive_seed(self.seed, "window", tick))
        table = self._apply_drift(table, tick, stream="window")
        degenerate = self.degenerate_ticks.get(tick)
        if degenerate is not None:
            table = self._degenerate(table, degenerate)
        return table

    def holdout_window(self, tick: int, rows: Optional[int] = None) -> Table:
        """Held-out traffic from the same distribution as :meth:`window`.

        Drawn from an independent seed stream, so canary comparisons never
        score a model on the very window that triggered (or trained) it.
        Degenerate injections are *not* applied — holdouts measure the
        distribution, not the adversarial wrapper.
        """
        rows = self.window_rows if rows is None else int(rows)
        table = self._raw_window(rows, derive_seed(self.seed, "holdout", tick))
        return self._apply_drift(table, tick, stream="holdout")

    def training_table(self, rows: int) -> Table:
        """The pre-drift reference corpus (tick ``-1``: no phase is active)."""
        return self._raw_window(rows, derive_seed(self.seed, "train"))

    def _apply_drift(self, table: Table, tick: int, *, stream: str) -> Table:
        for index, phase in enumerate(self.drift_phases):
            rng = np.random.default_rng(
                derive_seed(self.seed, "drift", stream, tick, index)
            )
            table = phase.apply(table, tick, rng)
        return table

    def _degenerate(self, table: Table, kind: str) -> Table:
        if kind == "tiny":
            return table.take(np.arange(min(8, table.n_rows)))
        schema = table.schema
        for name in schema.categorical:
            values = np.asarray(table[name]).astype(str)
            table = table.with_column(name, np.full(values.size, values[0]), "categorical")
        if kind == "constant":
            for name in schema.numerical:
                values = np.asarray(table[name], dtype=np.float64)
                table = table.with_column(name, np.full(values.size, values[0]), "numerical")
        return table


@dataclass(frozen=True)
class TrafficRequest:
    """One sampling request of a replay tick."""

    rows: int
    tenant: str
    seed: int
    #: Service class of the request (a :data:`repro.serve.api.PRIORITY_CLASSES`
    #: name) — the tenant's configured class, never a random draw.
    priority: str = "normal"
    #: Optional SLO the request carries into admission control (seconds).
    deadline: Optional[float] = None


class TrafficModel:
    """Diurnal + burst request arrivals over a multi-tenant population.

    The per-tick request *count* scales the base rate by the
    :class:`ArrivalProcess` intensity at that tick's position on the time
    axis (normalised so the scenario-long mean is the configured base).
    Request *sizes* are drawn per sampled user: each user's gamma-distributed
    activity share scales their request between ``min_rows`` and
    ``max_rows``, and the user's preferred project labels the request's
    tenant — bursty ticks therefore skew both count and tenant mix exactly
    like the paper's workload generators intend.
    """

    def __init__(
        self,
        *,
        seed: int,
        ticks: int,
        n_days: float = 14.0,
        requests_per_tick: int = 4,
        base_rows: int = 512,
        min_rows: int = 64,
        max_rows: int = 4096,
        n_tenants: int = 6,
        n_users: int = 48,
        n_bursts: int = 3,
        tenant_priorities: Optional[Mapping[str, str]] = None,
        default_priority: str = "normal",
        deadline: Optional[float] = None,
    ) -> None:
        if ticks < 1:
            raise ValueError(f"ticks must be positive, got {ticks}")
        if not (0 < min_rows <= base_rows <= max_rows):
            raise ValueError(
                f"need 0 < min_rows <= base_rows <= max_rows, got "
                f"{min_rows}/{base_rows}/{max_rows}"
            )
        self.seed = int(seed)
        self.ticks = int(ticks)
        self.requests_per_tick = int(requests_per_tick)
        self.base_rows = int(base_rows)
        self.min_rows = int(min_rows)
        self.max_rows = int(max_rows)
        self.arrivals = ArrivalProcess.default(
            n_days, n_bursts=n_bursts, seed=derive_seed(self.seed, "arrivals")
        )
        self.population = UserPopulation.default(
            n_users, n_projects=n_tenants, seed=derive_seed(self.seed, "tenants")
        )
        self._tenants = [f"project{i:02d}" for i in range(n_tenants)]
        #: Tenant → service class; tenants not listed get ``default_priority``.
        self.tenant_priorities = dict(tenant_priorities or {})
        self.default_priority = str(default_priority)
        self.deadline = deadline
        times = (np.arange(self.ticks) + 0.5) * (n_days / self.ticks)
        rates = self.arrivals.rate(times)
        self._multipliers = rates / float(np.mean(rates))

    def requests(self, tick: int) -> List[TrafficRequest]:
        """The deterministic request batch of one tick."""
        if not 0 <= tick < self.ticks:
            raise IndexError(f"tick {tick} outside [0, {self.ticks})")
        rng = np.random.default_rng(derive_seed(self.seed, "traffic", tick))
        count = max(1, int(round(self.requests_per_tick * self._multipliers[tick])))
        user_indices = self.population.sample_users(count, rng)
        mean_activity = 1.0 / len(self.population.users)
        requests = []
        for position, user_index in enumerate(user_indices):
            user = self.population.users[int(user_index)]
            # Heavy users issue heavier requests: activity relative to the
            # uniform share scales the base size, jittered log-normally.
            weight = user.activity / mean_activity
            rows = self.base_rows * weight * float(rng.lognormal(0.0, 0.35))
            rows = int(np.clip(round(rows), self.min_rows, self.max_rows))
            tenant = self._tenants[user.preferred_project_index % len(self._tenants)]
            requests.append(
                TrafficRequest(
                    rows=rows,
                    tenant=tenant,
                    seed=derive_seed(self.seed, "request", tick, position),
                    priority=self.tenant_priorities.get(tenant, self.default_priority),
                    deadline=self.deadline,
                )
            )
        return requests

    def total_requests(self) -> int:
        """Request count over the whole horizon (cheap: counts only)."""
        return sum(len(self.requests(t)) for t in range(self.ticks))
