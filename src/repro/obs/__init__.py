"""repro.obs — the observability plane: metrics, tracing, exposition.

Dependency-free (stdlib + numpy) instrumentation for the serving stack:

:mod:`repro.obs.metrics`
    A Prometheus-style process-local registry of counters, gauges and
    fixed-log-bucket histograms.  Each :class:`~repro.serve.service.
    SamplingService` owns one :class:`MetricsRegistry`; the front door
    renders them all at ``GET /metrics`` (text exposition format) and
    scenario reports embed :meth:`MetricsRegistry.snapshot`.

:mod:`repro.obs.tracing`
    Request-scoped spans whose trace/span IDs derive deterministically
    from the request seed and each chunk's ``SeedSequence.spawn_key`` —
    the same identity trick the fault harness uses — so worker-side spans
    stitch into the parent trace without any context propagation bytes.
    Export as JSONL or Chrome ``trace_event`` (Perfetto-loadable) via
    ``repro-experiments serve/scenario --trace-out FILE``.

Tracing is byte-invisible (scenario fingerprints are identical with it
on or off) and its overhead is itself gated by the ``serve_traced``
benchmark kernel.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    REQUIRED_SERVE_SERIES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus_multi,
    validate_prometheus_text,
)
from repro.obs.tracing import (
    Span,
    TracedChunk,
    Tracer,
    chunk_span_id,
    request_span_id,
    span_id,
    trace_id_from_child,
    trace_id_from_seed,
    wall_clock,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "REQUIRED_SERVE_SERIES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TracedChunk",
    "Tracer",
    "chunk_span_id",
    "render_prometheus_multi",
    "request_span_id",
    "span_id",
    "trace_id_from_child",
    "trace_id_from_seed",
    "validate_prometheus_text",
    "wall_clock",
]
