"""Request-scoped tracing with deterministic, seed-derived identities.

A request's life in the serving stack is a fixed taxonomy of spans::

    admission -> queue_wait -> dispatch -> chunk[i] -> attempt[j]
                                               |-> worker_compute
                                               |-> shm_encode
                                               |-> shm_decode
                           -> assemble -> deliver

The identity trick is the same one ``repro.serve.faults`` uses for
exactly-once fault injection: chunk ``i`` of a request draws from the
``i``-th :class:`numpy.random.SeedSequence` child of the request seed, so
both sides of the process boundary can *derive* the same IDs instead of
shipping a context header:

* :func:`trace_id_from_seed` hashes the request seed's entropy — the
  parent service computes it at dispatch time;
* :func:`trace_id_from_child` hashes a chunk child's
  ``(entropy, spawn_key[:-1])`` — a worker holding only the child
  recovers the identical trace ID;
* :func:`chunk_span_id` hashes ``(trace_id, chunk index)`` — the worker's
  ``worker_compute``/``shm_encode`` spans parent themselves under the
  same chunk span the parent records, stitching the cross-process tree
  together with zero bytes of extra coordination.

Worker-side spans ride home inside the existing task return path: when
tracing is enabled the worker wraps its normal payload (a ``Table`` or a
:class:`~repro.serve.shm.ChunkEnvelope`) in a :class:`TracedChunk`; the
parent unwraps it in ``decode_chunk`` and folds the spans into its
:class:`Tracer`.  The payload bytes are untouched, which is why scenario
fingerprints are identical with tracing on or off.

A :class:`Tracer` is an append-only, thread-safe span buffer with two
export formats: JSONL (one span per line) and the Chrome ``trace_event``
JSON that Perfetto / ``chrome://tracing`` load directly.  When no tracer
is installed every instrumentation site is a single ``is None`` check —
the ``serve_traced`` benchmark kernel gates the enabled overhead at ≤5%.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

__all__ = [
    "Span",
    "TracedChunk",
    "Tracer",
    "chunk_span_id",
    "request_span_id",
    "span_id",
    "trace_id_from_child",
    "trace_id_from_seed",
    "wall_clock",
]


def _hash_id(*parts: object) -> str:
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(str(part).encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def trace_id_from_seed(seed: object) -> str:
    """Deterministic 64-bit trace ID for a request seed.

    Accepts anything the sampling stack accepts as a seed.  For an integer
    seed the ID depends only on that integer (``SeedSequence(s).entropy``
    is ``s``), so the same request replayed anywhere lands in the same
    trace.  ``None`` seeds have no stable identity; they get a random ID.
    """
    if isinstance(seed, np.random.Generator):
        seed = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    if isinstance(seed, np.random.SeedSequence):
        return _hash_id("trace", seed.entropy, tuple(seed.spawn_key))
    if seed is None:
        return _hash_id("trace", os.urandom(16).hex())
    return _hash_id("trace", int(seed), ())


def trace_id_from_child(child: np.random.SeedSequence) -> str:
    """The parent request's trace ID, recovered from one chunk's seed child.

    Spawned children keep the parent's ``entropy`` and extend its
    ``spawn_key`` by one element, so stripping the last element
    reconstructs the parent identity :func:`trace_id_from_seed` hashes.
    """
    spawn_key = tuple(getattr(child, "spawn_key", ()))
    return _hash_id("trace", child.entropy, spawn_key[:-1])


def span_id(trace_id: str, *parts: object) -> str:
    """Deterministic span ID scoped to a trace."""
    return _hash_id("span", trace_id, *parts)


def request_span_id(trace_id: str) -> str:
    """The root span of a request — parent of every service-side span."""
    return span_id(trace_id, "request")


def chunk_span_id(trace_id: str, index: int) -> str:
    """The ``chunk[i]`` span — derivable on both sides of the pool."""
    return span_id(trace_id, "chunk", int(index))


def wall_clock(perf_stamp: float) -> float:
    """Convert a ``time.perf_counter()`` stamp to epoch seconds.

    Span starts are stored as wall-clock time so parent- and worker-side
    spans share a timeline; internal stamps are ``perf_counter`` based.
    """
    return time.time() - (time.perf_counter() - perf_stamp)


@dataclass
class Span:
    """One completed span.  Picklable: worker spans cross the pool as-is."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start: float = 0.0  # epoch seconds
    duration: float = 0.0  # seconds
    pid: int = 0
    tid: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        return payload


@dataclass
class TracedChunk:
    """A worker task result with its spans piggybacked on the return path.

    ``payload`` is exactly what the untraced worker would have returned (a
    ``Table`` or a ``ChunkEnvelope``); the parent's decode path unwraps it
    before any byte-producing code sees the result, so enabling tracing
    cannot change served bytes.
    """

    payload: object
    spans: List[Span] = field(default_factory=list)


def make_span(
    name: str,
    trace_id: str,
    *,
    span_id: str,
    parent_id: Optional[str] = None,
    start: float,
    duration: float,
    attrs: Optional[Dict[str, object]] = None,
) -> Span:
    return Span(
        name=name,
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        start=start,
        duration=max(float(duration), 0.0),
        pid=os.getpid(),
        tid=threading.get_ident() & 0x7FFFFFFF,
        attrs=dict(attrs) if attrs else {},
    )


class Tracer:
    """Append-only, thread-safe span collector.

    Instrumentation sites hold an ``Optional[Tracer]`` and skip all work
    when it is ``None`` — the disabled path is one attribute check.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def extend(self, spans: Sequence[Span]) -> None:
        if not spans:
            return
        with self._lock:
            self._spans.extend(spans)

    def record_span(
        self,
        name: str,
        trace_id: str,
        *,
        span_id: str,
        parent_id: Optional[str] = None,
        start: float,
        duration: float,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record a span whose timing was measured externally (``start`` in
        epoch seconds — use :func:`wall_clock` on ``perf_counter`` stamps)."""
        self.record(
            make_span(
                name,
                trace_id,
                span_id=span_id,
                parent_id=parent_id,
                start=start,
                duration=duration,
                attrs=attrs,
            )
        )

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: str,
        *,
        span_id: str,
        parent_id: Optional[str] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Iterator[None]:
        start_wall = time.time()
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_span(
                name,
                trace_id,
                span_id=span_id,
                parent_id=parent_id,
                start=start_wall,
                duration=time.perf_counter() - start,
                attrs=attrs,
            )

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def traces(self) -> Dict[str, List[Span]]:
        """Spans grouped by trace ID, each group in start order."""
        grouped: Dict[str, List[Span]] = {}
        for span in self.spans():
            grouped.setdefault(span.trace_id, []).append(span)
        for spans in grouped.values():
            spans.sort(key=lambda s: s.start)
        return grouped

    # -- export ------------------------------------------------------------
    def export_jsonl(self, path: str) -> int:
        """One JSON object per span.  Returns the number written."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span.as_dict(), sort_keys=True))
                fh.write("\n")
        return len(spans)

    def export_chrome(self, path: str) -> int:
        """Chrome ``trace_event`` JSON, loadable in Perfetto.

        Each span becomes a complete (``"ph": "X"``) event; process and
        thread lanes come from the recording side, so worker spans show up
        in their own process tracks under the shared timeline.
        """
        spans = self.spans()
        events = [
            {
                "name": span.name,
                "cat": "repro.serve",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": max(span.duration, 1e-7) * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "args": dict(
                    span.attrs,
                    trace_id=span.trace_id,
                    span_id=span.span_id,
                    parent_id=span.parent_id or "",
                ),
            }
            for span in spans
        ]
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
            fh.write("\n")
        return len(spans)

    def export(self, path: str) -> int:
        """Chrome format for ``*.json`` paths, JSONL otherwise."""
        if str(path).endswith(".json"):
            return self.export_chrome(path)
        return self.export_jsonl(path)
