"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The serving stack reports a point-in-time ``ServiceStats`` snapshot; this
module is the layer underneath it — a dependency-free, Prometheus-style
registry that every serving component writes into as it runs:

* :class:`Counter` — monotonically increasing totals (requests, rows,
  retries, admission rejects by reason).
* :class:`Gauge` — instantaneous levels (queue depth, in-flight rows,
  current worker count).
* :class:`Histogram` — latency distributions over **fixed log-spaced
  buckets** (:data:`DEFAULT_LATENCY_BUCKETS`), so percentile estimates
  need no sample retention: recording is O(1) and memory is O(buckets),
  regardless of traffic volume.

All metrics support declared label dimensions (e.g. ``tenant``,
``priority``, ``reason``); a ``(metric, label-values)`` pair is one time
series, exactly as in the Prometheus data model.  A
:class:`MetricsRegistry` owns one process's metrics and renders them two
ways: :meth:`MetricsRegistry.snapshot` (a JSON-friendly dict, merged into
``ScenarioReport.timing``) and :meth:`MetricsRegistry.render_prometheus`
(the text exposition format served by ``GET /metrics`` on the front
door).  :func:`validate_prometheus_text` is the matching line-level
checker used by the CI smoke.

Everything here is stdlib-only and thread-safe (one lock per metric);
instruments are cheap enough to live on hot serving paths.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "REQUIRED_SERVE_SERIES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus_multi",
    "validate_prometheus_text",
]

#: Fixed log-spaced latency bounds (seconds): 125 µs doubling up to ~131 s,
#: plus the implicit ``+Inf`` overflow bucket.  Doubling buckets bound the
#: relative error of any interpolated percentile at 2x, which is plenty for
#: the p50/p95 the serving layer reports.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(0.000125 * (2.0**i) for i in range(21))

#: Series the front-door ``/metrics`` endpoint must always expose (the CI
#: smoke scrapes and asserts these by name).
REQUIRED_SERVE_SERIES: Tuple[str, ...] = (
    "repro_serve_requests_total",
    "repro_serve_rows_total",
    "repro_serve_request_latency_seconds_bucket",
    "repro_serve_queue_depth",
    "repro_serve_workers",
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")


def _format_labels(names: Sequence[str], values: Sequence[str], extra: str = "") -> str:
    parts = [f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_int = int(value)
    return str(as_int) if as_int == value else repr(float(value))


class _Metric:
    """Shared labelled-series bookkeeping for all three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _label_string(self, key: Tuple[str, ...]) -> str:
        return ",".join(
            f'{n}="{_escape_label_value(v)}"' for n, v in zip(self.label_names, key)
        )


class Counter(_Metric):
    """A monotonically increasing total, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def series(self) -> Dict[Tuple[str, ...], float]:
        with self._lock:
            return dict(self._values)


class Gauge(_Metric):
    """An instantaneous level that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def add(self, amount: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def series(self) -> Dict[Tuple[str, ...], float]:
        with self._lock:
            return dict(self._values)


class Histogram(_Metric):
    """Fixed-bucket distribution with O(1) recording and no sample retention.

    Percentiles are estimated by linear interpolation inside the first
    bucket whose cumulative count crosses the target rank — with the
    log-spaced :data:`DEFAULT_LATENCY_BUCKETS` the estimate is within one
    doubling of the true value, which is the standard Prometheus
    ``histogram_quantile`` trade-off.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in (buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS))
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        self.bounds = bounds
        # Per label key: [bucket counts (+1 overflow), sum, count]
        self._series: Dict[Tuple[str, ...], List[object]] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        index = bisect_left(self.bounds, value)
        with self._lock:
            entry = self._series.get(key)
            if entry is None:
                entry = [[0] * (len(self.bounds) + 1), 0.0, 0]
                self._series[key] = entry
            entry[0][index] += 1
            entry[1] += value
            entry[2] += 1

    def count(self, **labels: object) -> int:
        key = self._key(labels)
        with self._lock:
            entry = self._series.get(key)
            return int(entry[2]) if entry else 0

    def total_count(self) -> int:
        with self._lock:
            return sum(int(entry[2]) for entry in self._series.values())

    def _merged_counts(self, key: Optional[Tuple[str, ...]]) -> Tuple[List[int], int]:
        with self._lock:
            if key is not None:
                entry = self._series.get(key)
                if entry is None:
                    return [0] * (len(self.bounds) + 1), 0
                return list(entry[0]), int(entry[2])
            counts = [0] * (len(self.bounds) + 1)
            total = 0
            for entry in self._series.values():
                for i, c in enumerate(entry[0]):
                    counts[i] += c
                total += int(entry[2])
            return counts, total

    def quantile(self, q: float, **labels: object) -> float:
        """Estimated ``q``-quantile; aggregated over all series when no
        labels are given."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        key = self._key(labels) if labels else None
        counts, total = self._merged_counts(key)
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for i, c in enumerate(counts):
            if c == 0:
                continue
            lower = self.bounds[i - 1] if i > 0 else 0.0
            if i >= len(self.bounds):  # overflow bucket: clamp to last bound
                return self.bounds[-1]
            upper = self.bounds[i]
            if cumulative + c >= target:
                fraction = (target - cumulative) / c
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += c
        return self.bounds[-1]

    def series(self) -> Dict[Tuple[str, ...], Dict[str, object]]:
        with self._lock:
            out = {}
            for key, entry in self._series.items():
                out[key] = {
                    "counts": list(entry[0]),
                    "sum": float(entry[1]),
                    "count": int(entry[2]),
                }
            return out


class MetricsRegistry:
    """One process's (or one service's) metrics, by name.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    declares the instrument, later calls return the same object (and
    reject kind or label-schema mismatches, the usual registry contract).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, labels: Sequence[str], **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help=help, labels=labels, **kwargs)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls):
            raise ValueError(f"{name} is registered as a {metric.kind}, not a {cls.kind}")
        if tuple(labels) and metric.label_names != tuple(labels):
            raise ValueError(
                f"{name} is registered with labels {metric.label_names}, not {tuple(labels)}"
            )
        return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Drop all metrics (test isolation; never used on a live service)."""
        with self._lock:
            self._metrics.clear()

    # -- exposition --------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-friendly dump: ``{name: {type, help, values}}``.

        Counter/gauge values key each series by its Prometheus label string
        (``""`` for the unlabelled series); histogram values carry
        ``count``/``sum`` plus interpolated p50/p95/p99.
        """
        out: Dict[str, Dict[str, object]] = {}
        with self._lock:
            metrics = list(self._metrics.items())
        for name, metric in sorted(metrics):
            entry: Dict[str, object] = {"type": metric.kind, "help": metric.help}
            if isinstance(metric, Histogram):
                values = {}
                for key, data in metric.series().items():
                    label_kwargs = dict(zip(metric.label_names, key))
                    values[metric._label_string(key)] = {
                        "count": data["count"],
                        "sum": data["sum"],
                        "p50": metric.quantile(0.5, **label_kwargs),
                        "p95": metric.quantile(0.95, **label_kwargs),
                        "p99": metric.quantile(0.99, **label_kwargs),
                    }
            else:
                values = {
                    metric._label_string(key): value
                    for key, value in metric.series().items()  # type: ignore[union-attr]
                }
            entry["values"] = values
            out[name] = entry
        return out

    def render_prometheus(self, extra_labels: Optional[Mapping[str, str]] = None) -> str:
        """The Prometheus text exposition format (version 0.0.4).

        ``extra_labels`` are appended to every series — the front door uses
        this to tag each backend service's registry with
        ``backend="<name>"`` before concatenating them.
        """
        extra = ""
        if extra_labels:
            extra = ",".join(
                f'{n}="{_escape_label_value(str(v))}"' for n, v in sorted(extra_labels.items())
            )
        lines: List[str] = []
        with self._lock:
            metrics = list(self._metrics.items())
        for name, metric in sorted(metrics):
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, data in sorted(metric.series().items()):
                    base = metric._label_string(key)
                    joined = ",".join(x for x in (base, extra) if x)
                    cumulative = 0
                    for bound, count in zip(metric.bounds, data["counts"]):
                        cumulative += count
                        le = ",".join(x for x in (joined, f'le="{_format_value(bound)}"') if x)
                        lines.append(f"{name}_bucket{{{le}}} {cumulative}")
                    cumulative += data["counts"][-1]
                    le = ",".join(x for x in (joined, 'le="+Inf"') if x)
                    lines.append(f"{name}_bucket{{{le}}} {cumulative}")
                    suffix = f"{{{joined}}}" if joined else ""
                    lines.append(f"{name}_sum{suffix} {_format_value(data['sum'])}")
                    lines.append(f"{name}_count{suffix} {data['count']}")
            else:
                for key, value in sorted(metric.series().items()):  # type: ignore[union-attr]
                    base = metric._label_string(key)
                    joined = ",".join(x for x in (base, extra) if x)
                    suffix = f"{{{joined}}}" if joined else ""
                    lines.append(f"{name}{suffix} {_format_value(value)}")
        return "\n".join(lines) + "\n" if lines else ""


def render_prometheus_multi(registries: Mapping[str, MetricsRegistry]) -> str:
    """Concatenate several registries, tagging each with ``backend="name"``.

    This is what ``GET /metrics`` on the :class:`~repro.serve.http.FrontDoor`
    serves: one text page over all backend services (``prod``, ``canary``,
    ...), each series labelled with its backend.
    """
    parts = [
        registry.render_prometheus(extra_labels={"backend": name})
        for name, registry in sorted(registries.items())
    ]
    return "".join(part for part in parts if part)


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf|NaN))"
    r"(?: [0-9]+)?$"
)
_LABEL_PAIR_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def _split_label_pairs(body: str) -> Iterable[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    part, in_quotes, escaped = [], False, False
    for ch in body:
        if escaped:
            part.append(ch)
            escaped = False
            continue
        if ch == "\\":
            part.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            part.append(ch)
            continue
        if ch == "," and not in_quotes:
            yield "".join(part)
            part = []
            continue
        part.append(ch)
    if part:
        yield "".join(part)


def validate_prometheus_text(text: str, required: Sequence[str] = ()) -> List[str]:
    """Line-level check of the Prometheus text format.

    Returns a list of human-readable problems (empty means valid).  Checks
    every non-comment line parses as ``name{labels} value``, that ``# TYPE``
    lines carry a known type, and that every name in ``required`` appears as
    at least one sample.
    """
    errors: List[str] = []
    seen: set = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            fields = line.split(None, 3)
            if len(fields) < 3 or fields[1] not in ("HELP", "TYPE"):
                errors.append(f"line {lineno}: malformed comment {line!r}")
                continue
            if not _NAME_RE.match(fields[2]):
                errors.append(f"line {lineno}: invalid metric name {fields[2]!r}")
            if fields[1] == "TYPE" and (len(fields) < 4 or fields[3] not in _TYPES):
                errors.append(f"line {lineno}: unknown metric type in {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        labels = match.group("labels")
        if labels:
            for pair in _split_label_pairs(labels[1:-1]):
                if not _LABEL_PAIR_RE.match(pair):
                    errors.append(f"line {lineno}: malformed label pair {pair!r}")
        seen.add(match.group("name"))
    for name in required:
        if name not in seen:
            errors.append(f"required series {name!r} missing")
    return errors
