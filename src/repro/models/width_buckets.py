"""Width-bucketed lane tables for the relaxed block kernels.

Two serving kernels batch variable-width one-hot blocks into zero-padded
``(pad, rows, blocks)`` lane cubes: the TabDDPM reverse-diffusion posterior
(:meth:`repro.models.tabddpm.multinomial.MultinomialBlockDiffusion.p_sample_fast_into`)
and the CTABGAN+/TVAE categorical code draw
(:meth:`repro.models.ctabgan._SoftmaxBlockSampler.sample_codes_fast`).  Both
need the same derived tables — which blocks share a bucket, how far each
bucket pads, which columns each lane gathers, which lanes of which blocks
are padding — so the construction lives here once: a policy fix (bucket
bounds, padding rule) cannot drift between the two kernels.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

#: One bucket's tables: (block ids, pad width, per-lane gather columns,
#: per-lane padded block ids, per-block widths).
WidthBucket = Tuple[np.ndarray, int, List[np.ndarray], List[np.ndarray], np.ndarray]


def build_width_bucket_tables(
    widths: np.ndarray,
    starts: np.ndarray,
    *,
    narrow_limit: int,
    fast_limit: int,
) -> Tuple[List[WidthBucket], List[int]]:
    """Bucket blocks by width and derive each bucket's padded lane tables.

    Blocks land in the narrow bucket (``2 <= width < narrow_limit`` — the
    widths the exact kernels also lane-group) or the wide bucket
    (``narrow_limit <= width < fast_limit`` — relaxed kernels only).  Each
    bucket pads to its own maximum, so the padding waste is bounded by the
    bucket, not the table.  Lane ``j`` of a block narrower than ``j + 1``
    gathers the block's first column — a harmless duplicate (it never
    exceeds the block maximum) that the kernels zero right after their
    ``exp`` — as recorded in the per-lane ``pad_blocks`` lists.

    Returns ``(buckets, huge)`` where ``huge`` lists the block ids at or
    beyond ``fast_limit`` (kept on the per-block path by every caller);
    width-0/1 blocks are in neither and are the caller's concern.
    """
    widths = np.asarray(widths, dtype=np.intp)
    starts = np.asarray(starts, dtype=np.intp)
    buckets: List[WidthBucket] = []
    for lo, hi in ((2, narrow_limit), (narrow_limit, fast_limit)):
        gids = np.nonzero((widths >= lo) & (widths < hi))[0]
        if not gids.size:
            continue
        bucket_widths = widths[gids]
        bucket_starts = starts[gids]
        pad = int(bucket_widths.max())
        lane_cols = [bucket_starts + np.minimum(j, bucket_widths - 1) for j in range(pad)]
        pad_blocks = [np.nonzero(bucket_widths <= j)[0] for j in range(pad)]
        buckets.append((gids, pad, lane_cols, pad_blocks, bucket_widths))
    huge = [int(b) for b in np.nonzero(widths >= fast_limit)[0]]
    return buckets, huge


#: Scratch-buffer sets kept per distinct shape before the cache is flushed
#: (serving loops with varying request sizes must not grow one buffer set
#: per shape forever).
SCRATCH_CACHE_LIMIT = 16


def bounded_scratch(buffers: Dict, key, build: Callable[[], Dict]) -> Dict:
    """The kernels' shared scratch-cache policy: keyed reuse, bounded count.

    Returns ``buffers[key]``, building it with ``build()`` on a miss; when
    the cache holds :data:`SCRATCH_CACHE_LIMIT` shapes it is flushed first.
    Both relaxed kernels (and the exact lane kernels) route their per-shape
    scratch through this one function so the eviction policy cannot drift.
    """
    scratch = buffers.get(key)
    if scratch is None:
        if len(buffers) >= SCRATCH_CACHE_LIMIT:
            buffers.clear()
        scratch = buffers[key] = build()
    return scratch


def even_row_chunks(n: int, row_bytes: int, budget_bytes: int) -> int:
    """Rows per cache-budgeted chunk, evened out over the request.

    ``budget_bytes // row_bytes`` rows fit the cache budget; the result is
    then rounded so ``n`` splits into equal-as-possible chunks with no
    degenerate tail (processing is strictly row-wise in every caller, so
    chunk boundaries change no value — only cache residency).
    """
    chunk = max(1, budget_bytes // max(row_bytes, 1))
    if n > chunk:
        chunk = -(-n // (-(-n // chunk)))
    return chunk
