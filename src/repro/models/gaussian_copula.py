"""Gaussian copula surrogate (additional statistical baseline).

Not one of the paper's four models, but a standard reference point in the
tabular-synthesis literature (and the default model of the SDV library):
marginals are mapped to standard normals (numerical columns through the
Gaussian quantile transform, categorical columns through frequency-interval
latents), a global correlation matrix is estimated in the latent space, and
sampling draws from the fitted multivariate normal before inverting the
marginal maps.

It captures linear latent correlations but not multi-modal joint structure,
so it typically lands between the GAN/VAE models and SMOTE/TabDDPM — a useful
sanity check for the evaluation pipeline and an ablation point for the
benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np
from scipy import special

from repro.models.base import Surrogate
from repro.tabular.encoding import LabelEncoder
from repro.tabular.table import Table
from repro.tabular.transforms import GaussianQuantileTransform
from repro.utils.rng import SeedLike, as_rng


class GaussianCopulaSurrogate(Surrogate):
    """Multivariate-normal copula over per-column latent variables."""

    name = "GaussianCopula"

    def __init__(self, jitter: float = 1e-6) -> None:
        super().__init__()
        self.jitter = float(jitter)
        self._numerical_transforms: Dict[str, GaussianQuantileTransform] = {}
        self._label_encoders: Dict[str, LabelEncoder] = {}
        self._category_cdfs: Dict[str, np.ndarray] = {}
        self._correlation_: Optional[np.ndarray] = None
        self._columns_: Optional[List[str]] = None

    # -- latent maps ---------------------------------------------------------------
    def _categorical_to_latent(
        self, codes: np.ndarray, cdf: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Map category codes to normal latents via their frequency intervals.

        Each category occupies an interval of the unit cube proportional to its
        frequency; a uniform draw inside the interval followed by the probit
        gives a continuous latent that round-trips back to the same category.
        """
        lows = np.concatenate([[0.0], cdf[:-1]])[codes]
        highs = cdf[codes]
        u = lows + rng.random(codes.shape[0]) * (highs - lows)
        u = np.clip(u, 1e-9, 1.0 - 1e-9)
        return special.ndtri(u)

    def _latent_to_categorical(self, latent: np.ndarray, cdf: np.ndarray) -> np.ndarray:
        u = special.ndtr(latent)
        return np.searchsorted(cdf, u, side="left").clip(0, cdf.size - 1)

    # -- fitting ---------------------------------------------------------------------
    def fit(self, table: Table, *, seed: SeedLike = 0) -> "GaussianCopulaSurrogate":
        self._mark_fitted(table)
        rng = as_rng(seed)
        latents: List[np.ndarray] = []
        self._columns_ = table.columns
        for col in table.schema:
            if col.is_numerical:
                tf = GaussianQuantileTransform(n_quantiles=1000)
                latent = tf.fit_transform(table[col.name])
                self._numerical_transforms[col.name] = tf
            else:
                enc = LabelEncoder()
                codes = enc.fit_transform(table.categorical_column(col.name))
                freqs = enc.counts_ / enc.counts_.sum()
                cdf = np.cumsum(freqs)
                self._label_encoders[col.name] = enc
                self._category_cdfs[col.name] = cdf
                latent = self._categorical_to_latent(codes, cdf, rng)
            latents.append(latent)
        matrix = np.column_stack(latents)
        self._correlation_ = self._repaired_correlation(matrix)
        return self

    def _repaired_correlation(self, matrix: np.ndarray) -> np.ndarray:
        """Latent correlation matrix that stays finite for degenerate columns.

        A constant column (e.g. a constant numerical feature, whose quantile
        latent is identically zero) has zero variance, for which
        ``np.corrcoef`` emits a RuntimeWarning and fills its whole row/column
        with NaN — NaN that the jitter regularisation cannot repair and that
        the Cholesky sampler propagates into all-NaN samples.  Degenerate
        columns carry no dependence information, so they are modelled as
        independent: unit diagonal, zero off-diagonal, with ``np.corrcoef``
        run only over the non-degenerate block (warning-free by
        construction).  The marginal inverse transforms still map their
        latents back to the constant value exactly.
        """
        dim = matrix.shape[1]
        corr = np.eye(dim)
        active = np.nonzero(matrix.std(axis=0) > 0.0)[0]
        if active.size >= 2:
            sub = np.atleast_2d(np.corrcoef(matrix[:, active], rowvar=False))
            corr[np.ix_(active, active)] = sub
        # Regularise to keep the covariance positive definite.
        return corr + self.jitter * np.eye(dim)

    # -- sampling --------------------------------------------------------------------
    def _sample_exact(self, n: int, *, seed: SeedLike = None) -> Table:
        # A single multivariate-normal draw plus vectorised marginal
        # inversions — already serving-shaped, so the relaxed mode falls back
        # to this path (see Surrogate._sample_fast).
        self._require_fitted()
        rng = as_rng(seed)
        dim = len(self._columns_)
        latent = rng.multivariate_normal(np.zeros(dim), self._correlation_, size=n, method="cholesky")
        data: Dict[str, np.ndarray] = {}
        for j, name in enumerate(self._columns_):
            col_latent = latent[:, j]
            if name in self._numerical_transforms:
                data[name] = self._numerical_transforms[name].inverse_transform(col_latent)
            else:
                cdf = self._category_cdfs[name]
                codes = self._latent_to_categorical(col_latent, cdf)
                data[name] = self._label_encoders[name].decode_column(codes)
        return Table(data, self.schema_)
