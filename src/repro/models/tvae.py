"""TVAE: variational autoencoder for mixed-type tabular data.

Follows Xu et al. (2019): rows are encoded with the Gaussian quantile
transform (numerical columns) plus one-hot blocks (categorical columns), an
MLP encoder produces the posterior mean/log-variance of a Gaussian latent,
and an MLP decoder reconstructs the row.  The loss is the evidence lower
bound: a Gaussian reconstruction term for numerical features, a categorical
cross-entropy per one-hot block, and the KL divergence between the posterior
and the standard-normal prior.

Sampling draws latents from the prior and decodes; categorical blocks are
sampled from the decoder's softmax so the synthetic data keeps category
diversity instead of collapsing to the arg-max category.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.models.base import Surrogate
from repro.nn import (
    Adam,
    BlockLayout,
    CosineSchedule,
    MLP,
    PackedForward,
    Tensor,
    clip_grad_norm,
    gaussian_kl_from_stats,
    gaussian_reparameterize,
    mixed_reconstruction_loss,
    no_grad,
)
from repro.tabular.mixed import MixedEncoder
from repro.tabular.table import Table
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, as_rng, derive_seed

logger = get_logger(__name__)


@dataclass
class TVAEConfig:
    """Hyper-parameters of the TVAE surrogate.

    ``epochs`` counts passes over the training set; the paper trains for
    30 000 steps at lr 2e-4 with cosine decay — the same optimiser setup is
    used here with a CPU-sized default epoch count.
    """

    latent_dim: int = 32
    hidden_dims: tuple = (128, 128)
    epochs: int = 30
    batch_size: int = 256
    learning_rate: float = 2e-4
    kl_weight: float = 1.0
    grad_clip: float = 5.0

    @classmethod
    def fast(cls) -> "TVAEConfig":
        """A configuration small enough for unit tests."""
        return cls(latent_dim=8, hidden_dims=(32,), epochs=3, batch_size=128)


class TVAESurrogate(Surrogate):
    """Tabular variational autoencoder."""

    name = "TVAE"
    _TRANSIENT_ATTRS = ("_packed_decoder", "_serving_block_sampler")

    def __init__(
        self,
        config: Optional[TVAEConfig] = None,
        *,
        seed: SeedLike = 0,
        numerical_transform_factory=None,
    ) -> None:
        super().__init__()
        self.config = config or TVAEConfig()
        self._seed = seed
        self._numerical_transform_factory = numerical_transform_factory
        self._encoder_data: Optional[MixedEncoder] = None
        self._encoder_net: Optional[MLP] = None
        self._decoder_net: Optional[MLP] = None
        self.loss_history_: Optional[List[float]] = None

    # -- model pieces -------------------------------------------------------------
    def _build(self, n_features: int) -> None:
        cfg = self.config
        net_seed = derive_seed(self._seed if isinstance(self._seed, int) else None, "tvae")
        self._encoder_net = MLP(
            n_features, list(cfg.hidden_dims), 2 * cfg.latent_dim, activation="relu", seed=net_seed
        )
        self._decoder_net = MLP(
            cfg.latent_dim, list(cfg.hidden_dims), n_features, activation="relu", seed=net_seed + 1
        )

    def _reconstruction_loss(self, decoded: Tensor, batch: np.ndarray) -> Tensor:
        """Mixed reconstruction loss: MSE on numerical dims, CE per categorical block.

        Computed through the fused :func:`mixed_reconstruction_loss` op — one
        graph node and one gradient matrix instead of per-block slice nodes —
        with bit-identical values to the per-block composition.
        """
        num_idx = self._numerical_indices
        return mixed_reconstruction_loss(
            decoded, num_idx, batch[:, num_idx], self._categorical_layout, batch
        )

    # -- fitting -------------------------------------------------------------------
    def fit(self, table: Table) -> "TVAESurrogate":
        self._mark_fitted(table)
        cfg = self.config
        # The packed serving decoder snapshots weights and the serving block
        # sampler is derived from the encoder layout; refits rebuild both.
        self._packed_decoder = None
        self._serving_block_sampler = None
        rng = as_rng(derive_seed(self._seed if isinstance(self._seed, int) else None, "fit"))

        self._encoder_data = MixedEncoder(
            numerical_transform_factory=self._numerical_transform_factory
        )
        # Encode once: the whole table becomes one dense float matrix up
        # front, and every training step below only slices shuffled index
        # blocks out of it.
        encoded = self._encoder_data.fit_transform(table)
        X = encoded.values
        self._numerical_indices = encoded.numerical_indices
        self._categorical_layout = BlockLayout(
            (b.start, b.stop) for b in self._encoder_data.blocks_
            if b.kind.value == "categorical"
        )
        self._build(X.shape[1])

        params = self._encoder_net.parameters() + self._decoder_net.parameters()
        optimizer = Adam(params, lr=cfg.learning_rate)
        n_batches_per_epoch = max(1, X.shape[0] // cfg.batch_size)
        schedule = CosineSchedule(optimizer, total_steps=cfg.epochs * n_batches_per_epoch)

        losses: List[float] = []
        for epoch in range(cfg.epochs):
            permutation = rng.permutation(X.shape[0])
            epoch_loss = 0.0
            for b in range(n_batches_per_epoch):
                idx = permutation[b * cfg.batch_size : (b + 1) * cfg.batch_size]
                if idx.size < 2:
                    continue
                batch = X[idx]
                batch_t = Tensor(batch)

                # Fused VAE head: one reparameterisation node and one KL node
                # over the packed [mu | logvar] stats (bit-identical to the
                # slice/clip/exp composition).
                stats = self._encoder_net(batch_t)
                noise = rng.standard_normal((idx.size, cfg.latent_dim))
                z = gaussian_reparameterize(stats, noise, cfg.latent_dim)
                decoded = self._decoder_net(z)

                recon = self._reconstruction_loss(decoded, batch)
                kl = gaussian_kl_from_stats(stats, cfg.latent_dim)
                loss = recon + cfg.kl_weight * kl

                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(params, cfg.grad_clip)
                optimizer.step()
                schedule.step()
                epoch_loss += loss.item()
            losses.append(epoch_loss / n_batches_per_epoch)
            logger.info("TVAE epoch %d/%d loss=%.4f", epoch + 1, cfg.epochs, losses[-1])
        self.loss_history_ = losses
        return self

    # -- sampling --------------------------------------------------------------------
    #: Serving-mode decoder chunk: bounds peak activation memory for large
    #: requests while keeping each forward a single fused matmul stack.
    _FAST_FORWARD_CHUNK = 65_536

    #: Exact-mode decoder chunk.  The latent draws and the decoded logits of
    #: the full request still materialise (the hardening draw stream consumes
    #: them whole), but the float64 graph pass — whose per-layer activations
    #: and graph nodes dominated peak memory for large requests — runs in
    #: bounded row chunks.  Row-chunked affine/activation forwards are
    #: bit-identical to the monolithic pass (each output row is an
    #: independent dot product; asserted at 100k rows in
    #: ``tests/test_serving_modes.py``), so the exact mode's seed-pinned
    #: bytes are unchanged.
    _EXACT_FORWARD_CHUNK = 65_536

    def _harden_categorical_blocks(
        self, decoded: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample one-hot categories from the decoder's softmax per block.

        The historical per-block chain, kept verbatim: the exact mode's draw
        stream and float operations define the bit contract.
        """
        n = decoded.shape[0]
        output = decoded.copy()
        for block in self._encoder_data.blocks_:
            if block.kind.value != "categorical":
                continue
            logits = decoded[:, block.start : block.stop]
            logits = logits - logits.max(axis=1, keepdims=True)
            probs = np.exp(logits)
            probs /= probs.sum(axis=1, keepdims=True)
            # Sample a category per row from the decoder distribution.
            cumulative = np.cumsum(probs, axis=1)
            draws = rng.random((n, 1))
            chosen = (draws < cumulative).argmax(axis=1)
            onehot = np.zeros_like(probs)
            onehot[np.arange(n), chosen] = 1.0
            output[:, block.start : block.stop] = onehot
        return output

    def _sample_exact(self, n: int, *, seed: SeedLike = None) -> Table:
        self._require_fitted()
        cfg = self.config
        rng = as_rng(seed)
        self._decoder_net.eval()
        # One latent draw for the whole request (the historical stream),
        # decoded through the graph in bounded row chunks — each chunk's
        # activations and graph nodes are released before the next chunk
        # exists, so peak memory no longer grows with ``n`` times the hidden
        # width.  Bit-identical to the monolithic forward (see
        # ``_EXACT_FORWARD_CHUNK``).
        z = rng.standard_normal((n, cfg.latent_dim))
        n_features = self._encoder_data.blocks_[-1].stop
        decoded = np.empty((n, n_features), dtype=np.float64)
        with no_grad():
            for r0 in range(0, n, self._EXACT_FORWARD_CHUNK):
                r1 = min(n, r0 + self._EXACT_FORWARD_CHUNK)
                decoded[r0:r1] = self._decoder_net(Tensor(z[r0:r1])).numpy()
        self._decoder_net.train()
        return self._encoder_data.inverse_transform(
            self._harden_categorical_blocks(decoded, rng)
        )

    def _sample_fast(self, n: int, *, seed: SeedLike = None) -> Table:
        """Relaxed serving path: chunked float32 decoder forwards + direct decode.

        The exact mode decodes the whole request in one float64 graph
        forward (peak memory grows with ``n``), hardens every categorical
        block into a one-hot matrix and re-``argmax``es it during decoding.
        The serving path runs the decoder through a
        :class:`~repro.nn.serving.PackedForward` float32 weight cache in
        bounded chunks, draws the block categories straight from the stacked
        raw logits (the width-grouped
        :class:`~repro.models.ctabgan._SoftmaxBlockSampler` — the hardened
        matrix was never observable, only the drawn codes) and assembles the
        table from codes plus the numerical columns, never materialising the
        one-hot matrix.  Distribution-identical (KS / chi-squared tested),
        stream-different.
        """
        self._require_fitted()
        cfg = self.config
        rng = as_rng(seed)
        packed = getattr(self, "_packed_decoder", None)
        if packed is None:
            packed = self._packed_decoder = PackedForward(self._decoder_net, np.float32)
        decoded = np.empty((n, packed.out_features), dtype=np.float32)
        for r0 in range(0, n, self._FAST_FORWARD_CHUNK):
            batch = min(self._FAST_FORWARD_CHUNK, n - r0)
            z = rng.standard_normal((batch, cfg.latent_dim))
            # The forward returns a reused buffer; the store into the request
            # matrix is the consuming copy.
            decoded[r0 : r0 + batch] = packed(z)

        sampler = getattr(self, "_serving_block_sampler", None)
        if sampler is None:
            from repro.models.ctabgan import _SoftmaxBlockSampler

            cat_spans = [
                (b.start, b.stop)
                for b in self._encoder_data.blocks_
                if b.kind.value == "categorical"
            ]
            sampler = self._serving_block_sampler = _SoftmaxBlockSampler(cat_spans)
        codes = sampler.sample_codes_fast(decoded, rng)
        numerical_starts = [
            b.start for b in self._encoder_data.blocks_ if b.kind.value != "categorical"
        ]
        return self._encoder_data.inverse_transform_codes(
            decoded[:, numerical_starts], codes
        )
