"""Generative surrogate models for tabular job records.

The paper compares four surrogates — TVAE, CTABGAN+, SMOTE and TabDDPM — on
PanDA job records.  All of them (plus a Gaussian-copula extra baseline) are
implemented here behind a single :class:`~repro.models.base.Surrogate`
interface: ``fit(table)`` then ``sample(n)`` returns a new
:class:`~repro.tabular.table.Table` with the original schema.

Use :func:`create_surrogate` to instantiate a model by its paper name.
"""

from typing import Dict, List, Type

from repro.models.base import Surrogate
from repro.models.smote import SMOTESurrogate
from repro.models.gaussian_copula import GaussianCopulaSurrogate
from repro.models.tvae import TVAESurrogate
from repro.models.ctabgan import CTABGANPlusSurrogate
from repro.models.tabddpm import TabDDPMSurrogate

#: Registry mapping canonical names (as used in the paper's Table I) to classes.
SURROGATE_REGISTRY: Dict[str, Type[Surrogate]] = {
    "tvae": TVAESurrogate,
    "ctabgan+": CTABGANPlusSurrogate,
    "ctabganplus": CTABGANPlusSurrogate,
    "smote": SMOTESurrogate,
    "tabddpm": TabDDPMSurrogate,
    "copula": GaussianCopulaSurrogate,
    "gaussian_copula": GaussianCopulaSurrogate,
}


def available_surrogates() -> List[str]:
    """Canonical model names accepted by :func:`create_surrogate`."""
    return ["tvae", "ctabgan+", "smote", "tabddpm", "copula"]


def create_surrogate(name: str, **kwargs) -> Surrogate:
    """Instantiate a surrogate model by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in SURROGATE_REGISTRY:
        raise ValueError(
            f"unknown surrogate {name!r}; available: {available_surrogates()}"
        )
    return SURROGATE_REGISTRY[key](**kwargs)


__all__ = [
    "Surrogate",
    "SMOTESurrogate",
    "GaussianCopulaSurrogate",
    "TVAESurrogate",
    "CTABGANPlusSurrogate",
    "TabDDPMSurrogate",
    "SURROGATE_REGISTRY",
    "available_surrogates",
    "create_surrogate",
]
