"""CTABGAN+-style conditional tabular GAN.

Implements the ingredients that define the CTGAN/CTABGAN+ family (Zhao et
al., 2024):

* **mode-specific normalisation** — every numerical column is modelled with a
  Gaussian mixture; a value is represented as a scalar offset within its
  sampled mixture component plus a one-hot component indicator;
* **conditional vector with training-by-sampling** — each training step
  conditions the generator on one (column, category) pair drawn with
  log-frequency weighting, which counteracts category imbalance;
* **generator / discriminator MLPs** trained adversarially, with an auxiliary
  cross-entropy term that forces the generator to respect the condition.

Deviation from the reference implementation: the adversarial objective is the
standard non-saturating GAN loss (binary cross-entropy) rather than WGAN-GP,
because the gradient penalty requires second-order autodiff that the numpy
backend does not provide.  The classifier and information-loss auxiliary
terms of CTABGAN+ are likewise folded into the conditional cross-entropy
term.  The model keeps the same encode/condition/decode structure, so its
qualitative behaviour (and its ranking in Table I) matches the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mixture.gmm import GaussianMixture
from repro.models.base import Surrogate
from repro.nn import (
    Adam,
    BlockLayout,
    MLP,
    Tensor,
    bce_with_logits,
    clip_grad_norm,
    conditional_blocks_loss,
    no_grad,
    tanh_softmax_blocks,
)
from repro.tabular.encoding import OneHotEncoder
from repro.tabular.schema import ColumnKind
from repro.tabular.table import Table
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, as_rng, derive_seed

logger = get_logger(__name__)


@dataclass
class CTABGANConfig:
    """Hyper-parameters of the CTABGAN+ surrogate."""

    noise_dim: int = 64
    generator_dims: tuple = (128, 128)
    discriminator_dims: tuple = (128, 128)
    gmm_components: int = 8
    epochs: int = 30
    batch_size: int = 256
    learning_rate: float = 2e-4
    discriminator_steps: int = 1
    grad_clip: float = 5.0

    @classmethod
    def fast(cls) -> "CTABGANConfig":
        """A configuration small enough for unit tests."""
        return cls(noise_dim=16, generator_dims=(32,), discriminator_dims=(32,), gmm_components=3, epochs=3, batch_size=128)


class _ModeSpecificEncoder:
    """Mode-specific normalisation of numerical columns + one-hot categoricals."""

    def __init__(self, gmm_components: int, seed: Optional[int]) -> None:
        self.gmm_components = gmm_components
        self.seed = seed
        self.numerical_gmms: Dict[str, GaussianMixture] = {}
        self.categorical_encoders: Dict[str, OneHotEncoder] = {}
        self.layout: List[Tuple[str, str, int, int]] = []  # (name, kind, start, width)
        self.n_features = 0

    def fit(self, table: Table) -> "_ModeSpecificEncoder":
        cursor = 0
        for col in table.schema:
            if col.is_numerical:
                gmm = GaussianMixture(
                    n_components=self.gmm_components,
                    seed=derive_seed(self.seed, "gmm", col.name),
                )
                gmm.fit(table[col.name])
                self.numerical_gmms[col.name] = gmm
                width = 1 + gmm.n_active_components
            else:
                enc = OneHotEncoder()
                enc.fit(table[col.name])
                self.categorical_encoders[col.name] = enc
                width = enc.n_categories
            self.layout.append((col.name, col.kind.value, cursor, width))
            cursor += width
        self.n_features = cursor
        return self

    def transform(self, table: Table, rng: np.random.Generator) -> np.ndarray:
        parts: List[np.ndarray] = []
        for name, kind, _start, _width in self.layout:
            if kind == ColumnKind.NUMERICAL.value:
                gmm = self.numerical_gmms[name]
                values = np.asarray(table[name], dtype=np.float64)
                comp = gmm.sample_component(values, rng)
                alpha = gmm.normalize(values, comp)
                onehot = np.zeros((values.shape[0], gmm.n_active_components))
                onehot[np.arange(values.shape[0]), comp] = 1.0
                parts.append(np.concatenate([alpha[:, None], onehot], axis=1))
            else:
                parts.append(self.categorical_encoders[name].transform(table[name]))
        return np.concatenate(parts, axis=1)

    def inverse_transform(self, matrix: np.ndarray, schema, rng: np.random.Generator) -> Table:
        data: Dict[str, np.ndarray] = {}
        for name, kind, start, width in self.layout:
            chunk = matrix[:, start : start + width]
            if kind == ColumnKind.NUMERICAL.value:
                gmm = self.numerical_gmms[name]
                alpha = np.clip(chunk[:, 0], -1.0, 1.0)
                comp = np.argmax(chunk[:, 1:], axis=1)
                data[name] = gmm.denormalize(alpha, comp)
            else:
                data[name] = self.categorical_encoders[name].inverse_transform(chunk)
        return Table(data, schema)

    @property
    def categorical_layout(self) -> List[Tuple[str, int, int]]:
        """(name, start, width) of categorical blocks — used for conditioning."""
        return [
            (name, start, width)
            for name, kind, start, width in self.layout
            if kind == ColumnKind.CATEGORICAL.value
        ]


class _ConditionSampler:
    """Training-by-sampling condition vectors over categorical columns.

    ``sample`` is fully vectorised per conditioned column while drawing the
    exact RNG stream of the historical per-row loop:

    * ``rng.choice(k, size, p=probs)`` consumes one uniform per draw and maps
      it through the probability CDF, so a pre-computed
      ``cdf.searchsorted(rng.random(count), side="right")`` is stream- and
      value-identical;
    * a scalar ``rng.integers(0, high)`` loop consumes the stream exactly
      like one vectorised ``rng.integers(0, highs)`` call over the same
      bounds (numpy applies the bounded-integer rejection per element in
      order).
    """

    def __init__(self, table: Table, layout: List[Tuple[str, int, int]], encoders: Dict[str, OneHotEncoder]):
        self.layout = layout
        self.total_width = sum(width for _, _, width in layout)
        self.offsets = np.cumsum([0] + [width for _, _, width in layout])[:-1]
        # Log-frequency weighting per column (as a sampling CDF), plus flat
        # per-category row pools so the discriminator sees real rows
        # consistent with the condition.
        self._cdfs: List[np.ndarray] = []
        self._pools: List[np.ndarray] = []
        self._pool_starts: List[np.ndarray] = []
        self._pool_sizes: List[np.ndarray] = []
        self._pool_highs: List[np.ndarray] = []
        #: condition-vector column -> offset of its column block (to map a
        #: flat condition column back to the in-column category index)
        self._cond_col_offset = np.repeat(
            self.offsets, [width for _, _, width in layout]
        ).astype(np.int64) if layout else np.empty(0, dtype=np.int64)
        for (name, _start, width) in layout:
            codes = encoders[name].transform_codes(table[name])
            counts = np.bincount(codes, minlength=width).astype(np.float64)
            logfreq = np.log1p(counts)
            probs = logfreq / logfreq.sum() if logfreq.sum() > 0 else np.full(width, 1.0 / width)
            # Rows grouped by category: a stable argsort keeps the ascending
            # row order np.nonzero would produce per category.
            pool = np.argsort(codes, kind="stable")
            sizes = np.bincount(codes, minlength=width)
            starts = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.intp)
            cdf = probs.cumsum()
            cdf /= cdf[-1]
            self._cdfs.append(cdf)
            self._pools.append(pool)
            self._pool_starts.append(starts)
            self._pool_sizes.append(sizes)
            self._pool_highs.append(np.maximum(sizes, 1))
        # All per-column row pools concatenated, so the matching-row lookup
        # after the RNG loop is one gather over a single flat array.
        self._pool_offsets = np.concatenate(
            [[0], np.cumsum([p.size for p in self._pools])[:-1]]
        ).astype(np.intp) if self._pools else np.empty(0, dtype=np.intp)
        self._all_pools = (
            np.concatenate(self._pools) if self._pools else np.empty(0, dtype=np.int64)
        )

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return (condition matrix, column index, category index, matching row index)."""
        n_columns = len(self.layout)
        cond = np.zeros((batch_size, self.total_width))
        col_choice = rng.integers(0, n_columns, size=batch_size)
        # Group the batch rows by conditioned column once (stable sort keeps
        # the ascending row order of the historical per-column masks); the
        # per-column loop below then only performs the RNG draws — which must
        # stay interleaved per column to preserve the seed stream — plus one
        # CDF lookup, with all gather/scatter work batched afterwards.
        rows_by_col = np.argsort(col_choice, kind="stable")
        counts = np.bincount(col_choice, minlength=n_columns)
        cats_parts: List[np.ndarray] = []
        draws_parts: List[np.ndarray] = []
        sizes_parts: List[np.ndarray] = []
        starts_parts: List[np.ndarray] = []
        for j in range(n_columns):
            count = counts[j]
            if count == 0:
                continue
            cats = self._cdfs[j].searchsorted(rng.random(count), side="right")
            sizes = self._pool_sizes[j][cats]
            draws = rng.integers(0, self._pool_highs[j][cats])
            cats_parts.append(self.offsets[j] + cats)
            sizes_parts.append(sizes)
            draws_parts.append(draws)
            starts_parts.append(self._pool_starts[j][cats] + self._pool_offsets[j])
        cat_cols = np.concatenate(cats_parts) if cats_parts else np.empty(0, dtype=np.int64)
        sizes = np.concatenate(sizes_parts) if sizes_parts else np.empty(0, dtype=np.int64)
        draws = np.concatenate(draws_parts) if draws_parts else np.empty(0, dtype=np.int64)
        starts = np.concatenate(starts_parts) if starts_parts else np.empty(0, dtype=np.intp)
        cond[rows_by_col, cat_cols] = 1.0
        cat_choice = np.empty(batch_size, dtype=np.int64)
        cat_choice[rows_by_col] = cat_cols - self._cond_col_offset[cat_cols]
        row_choice = np.empty(batch_size, dtype=np.int64)
        if self._all_pools.size:
            picks = self._all_pools[np.minimum(starts + draws, self._all_pools.size - 1)]
            row_choice[rows_by_col] = np.where(sizes > 0, picks, draws)
        else:
            row_choice[rows_by_col] = draws
        return cond, col_choice, cat_choice, row_choice


class CTABGANPlusSurrogate(Surrogate):
    """Conditional tabular GAN in the CTABGAN+ style."""

    name = "CTABGAN+"

    def __init__(self, config: Optional[CTABGANConfig] = None, *, seed: SeedLike = 0) -> None:
        super().__init__()
        self.config = config or CTABGANConfig()
        self._seed = seed
        self._encoder: Optional[_ModeSpecificEncoder] = None
        self._condition: Optional[_ConditionSampler] = None
        self._generator: Optional[MLP] = None
        self._discriminator: Optional[MLP] = None
        self.loss_history_: Optional[List[Dict[str, float]]] = None

    # -- output shaping ------------------------------------------------------------
    def _output_layout(self) -> Tuple[np.ndarray, BlockLayout]:
        """``(tanh columns, softmax block layout)`` covering the generator output."""
        tanh_cols: List[int] = []
        softmax_spans: List[Tuple[int, int]] = []
        for _name, kind, start, width in self._encoder.layout:
            if kind == ColumnKind.NUMERICAL.value:
                tanh_cols.append(start)
                softmax_spans.append((start + 1, start + width))
            else:
                softmax_spans.append((start, start + width))
        return np.asarray(tanh_cols, dtype=np.intp), BlockLayout(softmax_spans)

    def _activate_generator_output(self, raw: Tensor) -> Tensor:
        """Apply per-block activations: tanh for alphas, softmax for one-hot blocks.

        One fused graph node (bit-identical to the slice/tanh/softmax/concat
        composition) instead of four nodes per encoded column.
        """
        tanh_cols, softmax_spans = self._activation_layout
        return tanh_softmax_blocks(raw, tanh_cols, softmax_spans)

    def _condition_loss(self, raw: Tensor, col_choice: np.ndarray, cat_choice: np.ndarray) -> Tensor:
        """Cross entropy forcing the generated conditioned column to match the condition."""
        return conditional_blocks_loss(raw, self._condition_layout, col_choice, cat_choice)

    # -- fitting ----------------------------------------------------------------------
    def fit(self, table: Table) -> "CTABGANPlusSurrogate":
        self._mark_fitted(table)
        cfg = self.config
        seed_int = self._seed if isinstance(self._seed, int) else None
        rng = as_rng(derive_seed(seed_int, "fit"))

        # Encode once: mode-specific normalisation runs over the full table a
        # single time, and each discriminator step below only gathers rows
        # (``encoded[row_c]``) from the resulting dense matrix.
        self._encoder = _ModeSpecificEncoder(cfg.gmm_components, seed_int).fit(table)
        encoded = self._encoder.transform(table, rng)
        self._activation_layout = self._output_layout()
        cat_layout = self._encoder.categorical_layout
        self._condition_layout = BlockLayout(
            [(start, start + width) for _name, start, width in cat_layout]
        )
        self._condition = _ConditionSampler(table, cat_layout, self._encoder.categorical_encoders)

        data_dim = self._encoder.n_features
        cond_dim = self._condition.total_width
        self._generator = MLP(
            cfg.noise_dim + cond_dim,
            list(cfg.generator_dims),
            data_dim,
            activation="relu",
            seed=derive_seed(seed_int, "generator"),
        )
        self._discriminator = MLP(
            data_dim + cond_dim,
            list(cfg.discriminator_dims),
            1,
            activation="leaky_relu",
            dropout=0.25,
            seed=derive_seed(seed_int, "discriminator"),
        )

        g_params = self._generator.parameters()
        d_params = self._discriminator.parameters()
        g_optimizer = Adam(g_params, lr=cfg.learning_rate, betas=(0.5, 0.9))
        d_optimizer = Adam(d_params, lr=cfg.learning_rate, betas=(0.5, 0.9))

        n = encoded.shape[0]
        steps_per_epoch = max(1, n // cfg.batch_size)
        history: List[Dict[str, float]] = []
        ones = None
        zeros = None
        for epoch in range(cfg.epochs):
            d_loss_value = 0.0
            g_loss_value = 0.0
            for _ in range(steps_per_epoch):
                # -- discriminator update(s) -------------------------------------
                for _ in range(cfg.discriminator_steps):
                    cond, col_c, cat_c, row_c = self._condition.sample(cfg.batch_size, rng)
                    real = encoded[row_c]
                    noise = rng.standard_normal((cfg.batch_size, cfg.noise_dim))
                    with no_grad():
                        fake_raw = self._generator(Tensor(np.concatenate([noise, cond], axis=1)))
                        fake = self._activate_generator_output(fake_raw).numpy()
                    real_in = Tensor(np.concatenate([real, cond], axis=1))
                    fake_in = Tensor(np.concatenate([fake, cond], axis=1))
                    real_logit = self._discriminator(real_in)
                    fake_logit = self._discriminator(fake_in)
                    if ones is None or ones.shape[0] != cfg.batch_size:
                        ones = np.ones((cfg.batch_size, 1))
                        zeros = np.zeros((cfg.batch_size, 1))
                    d_loss = bce_with_logits(real_logit, ones) + bce_with_logits(fake_logit, zeros)
                    d_optimizer.zero_grad()
                    d_loss.backward()
                    clip_grad_norm(d_params, cfg.grad_clip)
                    d_optimizer.step()
                    d_loss_value += d_loss.item()

                # -- generator update ----------------------------------------------
                cond, col_c, cat_c, _rows = self._condition.sample(cfg.batch_size, rng)
                noise = rng.standard_normal((cfg.batch_size, cfg.noise_dim))
                fake_raw = self._generator(Tensor(np.concatenate([noise, cond], axis=1)))
                fake = self._activate_generator_output(fake_raw)
                fake_logit = self._discriminator(Tensor.concat([fake, Tensor(cond)], axis=1))
                adv_loss = bce_with_logits(fake_logit, np.ones((cfg.batch_size, 1)))
                cond_loss = self._condition_loss(fake_raw, col_c, cat_c)
                g_loss = adv_loss + cond_loss
                g_optimizer.zero_grad()
                g_loss.backward()
                clip_grad_norm(g_params, cfg.grad_clip)
                g_optimizer.step()
                g_loss_value += g_loss.item()

            history.append(
                {
                    "epoch": epoch + 1,
                    "d_loss": d_loss_value / (steps_per_epoch * cfg.discriminator_steps),
                    "g_loss": g_loss_value / steps_per_epoch,
                }
            )
            logger.info(
                "CTABGAN+ epoch %d/%d d_loss=%.4f g_loss=%.4f",
                epoch + 1, cfg.epochs, history[-1]["d_loss"], history[-1]["g_loss"],
            )
        self.loss_history_ = history
        return self

    # -- sampling -------------------------------------------------------------------------
    def sample(self, n: int, *, seed: SeedLike = None) -> Table:
        self._require_fitted()
        cfg = self.config
        rng = as_rng(seed)
        self._generator.eval()
        outputs: List[np.ndarray] = []
        remaining = n
        with no_grad():
            while remaining > 0:
                batch = min(cfg.batch_size, remaining)
                cond, _, _, _ = self._condition.sample(batch, rng)
                noise = rng.standard_normal((batch, cfg.noise_dim))
                raw = self._generator(Tensor(np.concatenate([noise, cond], axis=1)))
                activated = self._activate_generator_output(raw).numpy()
                outputs.append(activated)
                remaining -= batch
        self._generator.train()
        matrix = np.concatenate(outputs, axis=0)
        # Harden the one-hot blocks by sampling from the softmax probabilities.
        hardened = matrix.copy()
        for name, kind, start, width in self._encoder.layout:
            block_start = start + 1 if kind == ColumnKind.NUMERICAL.value else start
            block_width = width - 1 if kind == ColumnKind.NUMERICAL.value else width
            if block_width <= 0:
                continue
            probs = matrix[:, block_start : block_start + block_width]
            probs = probs / np.maximum(probs.sum(axis=1, keepdims=True), 1e-12)
            cumulative = np.cumsum(probs, axis=1)
            draws = rng.random((matrix.shape[0], 1))
            chosen = (draws < cumulative).argmax(axis=1)
            onehot = np.zeros_like(probs)
            onehot[np.arange(matrix.shape[0]), chosen] = 1.0
            hardened[:, block_start : block_start + block_width] = onehot
        return self._encoder.inverse_transform(hardened, self.schema_, rng)
