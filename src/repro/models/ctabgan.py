"""CTABGAN+-style conditional tabular GAN.

Implements the ingredients that define the CTGAN/CTABGAN+ family (Zhao et
al., 2024):

* **mode-specific normalisation** — every numerical column is modelled with a
  Gaussian mixture; a value is represented as a scalar offset within its
  sampled mixture component plus a one-hot component indicator;
* **conditional vector with training-by-sampling** — each training step
  conditions the generator on one (column, category) pair drawn with
  log-frequency weighting, which counteracts category imbalance;
* **generator / discriminator MLPs** trained adversarially, with an auxiliary
  cross-entropy term that forces the generator to respect the condition.

Deviation from the reference implementation: the adversarial objective is the
standard non-saturating GAN loss (binary cross-entropy) rather than WGAN-GP,
because the gradient penalty requires second-order autodiff that the numpy
backend does not provide.  The classifier and information-loss auxiliary
terms of CTABGAN+ are likewise folded into the conditional cross-entropy
term.  The model keeps the same encode/condition/decode structure, so its
qualitative behaviour (and its ranking in Table I) matches the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mixture.gmm import GaussianMixture
from repro.models.base import Surrogate
from repro.models.width_buckets import (
    bounded_scratch,
    build_width_bucket_tables,
    even_row_chunks,
)
from repro.nn import (
    Adam,
    BlockLayout,
    MLP,
    PackedForward,
    Tensor,
    bce_with_logits,
    clip_grad_norm,
    conditional_blocks_loss,
    no_grad,
    tanh_softmax_blocks,
)
from repro.tabular.encoding import OneHotEncoder
from repro.tabular.schema import ColumnKind
from repro.tabular.table import Table
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, as_rng, derive_seed, fused_column_draws

logger = get_logger(__name__)


@dataclass
class CTABGANConfig:
    """Hyper-parameters of the CTABGAN+ surrogate.

    ``condition_mode`` selects how training-by-sampling condition vectors are
    drawn: ``"exact"`` (default) replays the historical per-column RNG stream
    draw for draw, keeping training and sampling bit-identical to the seed
    implementation; ``"fast"`` batches all draws into three RNG calls — the
    same distribution over (column, category, matching row) but a different
    stream, so outputs are only statistically (not bitwise) reproducible.
    """

    noise_dim: int = 64
    generator_dims: tuple = (128, 128)
    discriminator_dims: tuple = (128, 128)
    gmm_components: int = 8
    epochs: int = 30
    batch_size: int = 256
    learning_rate: float = 2e-4
    discriminator_steps: int = 1
    grad_clip: float = 5.0
    condition_mode: str = "exact"

    @classmethod
    def fast(cls) -> "CTABGANConfig":
        """A configuration small enough for unit tests."""
        return cls(noise_dim=16, generator_dims=(32,), discriminator_dims=(32,), gmm_components=3, epochs=3, batch_size=128)


def _argmax_codes(matrix: np.ndarray, spans: List[Tuple[int, int]]) -> np.ndarray:
    """Per-block ``argmax`` codes over column ``spans``, shape ``(n, blocks)``.

    Same-width blocks share one gathered ``(n, blocks, width)`` cube, so wide
    matrices need a handful of ``argmax`` calls instead of one per block; each
    lane's argmax (first maximum wins) is identical to the per-block slice.
    """
    n = matrix.shape[0]
    widths = [stop - start for start, stop in spans]
    codes = np.empty((n, len(spans)), dtype=np.int64)
    for width in sorted(set(widths)):
        idx = [i for i, w in enumerate(widths) if w == width]
        cols = np.concatenate([np.arange(*spans[i], dtype=np.intp) for i in idx])
        segment = np.take(matrix, cols, axis=1).reshape(n, len(idx), width)
        codes[:, idx] = np.argmax(segment, axis=2)
    return codes


class _SoftmaxBlockSampler:
    """Softmax + category draw per output block, straight from raw logits.

    The historical sampling path activated every softmax block, wrote the
    probabilities into a dense matrix, re-normalised each block, drew one
    uniform per row against its CDF, scattered a one-hot copy and finally
    took a per-block ``argmax`` to decode — but the hardened matrix never
    leaves ``sample``, so only the drawn *codes* matter.  This class computes
    them directly, bit- and stream-identically to that chain:

    * the blockwise softmax follows the fused activation formula
      (``exp(shifted - log_sum)``, proven bit-identical to the unfused
      per-block ``.softmax()`` composition in PR 2) element for element;
    * ``rng.random((blocks, rows))`` consumes the generator stream in the
      order of the sequential per-block ``rng.random((rows, 1))`` calls;
    * same-width narrow blocks are processed as contiguous lane planes —
      NumPy sums fewer than 8 elements sequentially, so plane accumulation
      matches the per-block ``sum``/``cumsum`` rounding exactly; maxima are
      order-insensitive; blocks of 8+ categories keep the per-block path;
    * softmax outputs are strictly positive, so each block CDF is strictly
      increasing and "count of CDF entries <= draw" equals the first-True
      ``argmax`` of the historical comparison, with the all-False case
      (cumulative mass below the draw) falling back to index 0 the same way;
    * rows are processed in cache-sized chunks (every stage is a pure
      per-row function, so chunking changes no value).
    """

    _LANE_WIDTH_LIMIT = 8

    #: The *relaxed* code draw (:meth:`sample_codes_fast`) has no rounding
    #: contract, so it lane-batches much wider blocks; see
    #: :attr:`repro.models.tabddpm.multinomial.MultinomialBlockDiffusion._FAST_LANE_WIDTH_LIMIT`
    #: for the same trade-off in the diffusion posterior.
    _FAST_LANE_WIDTH_LIMIT = 32

    def __init__(self, spans: List[Tuple[int, int]]):
        self.spans = [(int(a), int(b)) for a, b in spans]
        self.n_blocks = len(self.spans)
        self.widths = np.array([b - a for a, b in self.spans], dtype=np.intp)
        self.starts = np.array([a for a, _ in self.spans], dtype=np.intp)
        self.total_width = int(self.widths.sum())
        self._groups = []
        for w in sorted({int(v) for v in self.widths if v < self._LANE_WIDTH_LIMIT}):
            gidx = np.nonzero(self.widths == w)[0]
            self._groups.append((w, gidx, [self.starts[gidx] + j for j in range(w)]))
        self._wide = [b for b in range(self.n_blocks) if self.widths[b] >= self._LANE_WIDTH_LIMIT]
        self._buffers: Dict[Tuple[int, int, int], Dict[str, np.ndarray]] = {}

    def _scratch(self, w: int, m: int, nc: int, dtype: np.dtype) -> Dict[str, np.ndarray]:
        # Scratch dtype follows the raw logits': float64 on the exact path,
        # float32 on the relaxed serving path (half the bandwidth per pass).
        return bounded_scratch(
            self._buffers,
            (w, m, nc, dtype),
            lambda: {
                "g": np.empty((w, nc, m), dtype=dtype),
                "ex": np.empty((w, nc, m), dtype=dtype),
                "mx": np.empty((nc, m), dtype=dtype),
                "tot": np.empty((nc, m), dtype=dtype),
                "dg": np.empty((nc, m), dtype=dtype),
                "cnt": np.empty((nc, m), dtype=np.intp),
            },
        )

    def sample_codes(self, raw: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw one category per block from the raw logits, shape ``(n, B)``."""
        n = raw.shape[0]
        codes = np.empty((n, self.n_blocks), dtype=np.intp)
        if not self.n_blocks:
            return codes
        draws = rng.random((self.n_blocks, n))
        chunk = even_row_chunks(n, 8 * self.total_width, 1 << 22)
        for r0 in range(0, n, chunk):
            r1 = min(n, r0 + chunk)
            self._codes_chunk(raw[r0:r1], draws[:, r0:r1], codes[r0:r1])
        return codes

    def _codes_chunk(self, raw: np.ndarray, draws: np.ndarray, codes: np.ndarray) -> None:
        n = raw.shape[0]
        for w, gidx, lane_cols in self._groups:
            m = gidx.size
            s = self._scratch(w, m, n, raw.dtype)
            g, ex, mx, tot, dg, cnt = s["g"], s["ex"], s["mx"], s["tot"], s["dg"], s["cnt"]
            for j in range(w):
                np.take(raw, lane_cols[j], axis=1, out=g[j])
            # Blockwise softmax: exp(shifted - log(sum(exp(shifted)))).
            np.copyto(mx, g[0])
            for j in range(1, w):
                np.maximum(mx, g[j], out=mx)
            for j in range(w):
                np.subtract(g[j], mx, out=g[j])
            np.exp(g, out=ex)
            np.copyto(tot, ex[0])
            for j in range(1, w):
                np.add(tot, ex[j], out=tot)
            np.log(tot, out=tot)
            for j in range(w):
                np.subtract(g[j], tot, out=g[j])
            np.exp(g, out=g)
            # Hardening draw: renormalise, build the CDF, count entries <= u.
            np.copyto(tot, g[0])
            for j in range(1, w):
                np.add(tot, g[j], out=tot)
            np.maximum(tot, 1e-12, out=tot)
            for j in range(w):
                np.divide(g[j], tot, out=g[j])
            for j in range(1, w):
                np.add(g[j], g[j - 1], out=g[j])
            np.copyto(dg, draws[gidx].T)
            np.less_equal(g[0], dg, out=cnt, casting="unsafe")
            for j in range(1, w - 1):
                np.add(cnt, g[j] <= dg, out=cnt, casting="unsafe")
            codes[:, gidx] = np.where(g[w - 1] <= dg, 0, cnt)
        self._codes_wide_blocks(raw, draws, codes, self._wide)

    def _codes_wide_blocks(self, raw, draws, codes, blocks) -> None:
        """Verbatim per-block softmax + draw (defines the exact path's bits)."""
        for b in blocks:
            start, stop = self.spans[b]
            logits = raw[:, start:stop]
            shifted = logits - logits.max(axis=1, keepdims=True)
            expv = np.exp(shifted)
            log_sum = np.log(expv.sum(axis=1, keepdims=True))
            np.subtract(shifted, log_sum, out=shifted)
            probs = np.exp(shifted)
            probs /= np.maximum(probs.sum(axis=1, keepdims=True), 1e-12)
            cumulative = np.cumsum(probs, axis=1)
            codes[:, b] = (draws[b][:, None] < cumulative).argmax(axis=1)

    # -- relaxed serving draw ---------------------------------------------------
    def _fast_tables(self):
        """Width-bucketed lane tables for :meth:`sample_codes_fast`.

        Same construction as the diffusion kernel's: one padded cube per
        width bucket ([2, 8) and [8, 32)), each padding to its own bucket
        maximum; blocks at or beyond ``_FAST_LANE_WIDTH_LIMIT`` keep the
        per-block path.  Built lazily (the sampler itself is a lazily-built
        serving cache).
        """
        cached = getattr(self, "_fast_tables_", None)
        if cached is not None:
            return cached
        groups, huge = build_width_bucket_tables(
            self.widths,
            self.starts,
            narrow_limit=self._LANE_WIDTH_LIMIT,
            fast_limit=self._FAST_LANE_WIDTH_LIMIT,
        )
        # Width-1 blocks (a constant category) never enter a bucket: their
        # code is always 0.
        ones = np.nonzero(self.widths == 1)[0]
        tables = (groups, huge, ones)
        self._fast_tables_ = tables
        return tables

    def _fast_scratch(self, gi: int, nb: int, pad: int, nc: int, dtype: np.dtype):
        key = ("fast", gi, nb, pad, nc, dtype)
        scratch = self._buffers.get(key)
        if scratch is None:
            if len(self._buffers) >= 16:
                self._buffers.clear()
            scratch = {
                "cube": np.empty((pad, nc, nb), dtype=dtype),
                "mx": np.empty((nc, nb), dtype=dtype),
                "dg": np.empty((nc, nb), dtype=dtype),
                "cmp": np.empty((nc, nb), dtype=bool),
                "cnt": np.empty((nc, nb), dtype=np.intp),
            }
            self._buffers[key] = scratch
        return scratch

    def sample_codes_fast(self, raw: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Relaxed code draw: same per-block categorical law, contract waived.

        Each block's category still comes from the softmax of its logits,
        but the bit/stream promises of :meth:`sample_codes` are dropped,
        which removes most of the work: blocks up to
        ``_FAST_LANE_WIDTH_LIMIT - 1`` categories wide evaluate as padded
        width-bucket cubes (single whole-cube numpy passes instead of a
        Python loop per wide block), the probabilities stay unnormalised —
        the uniform draw is scaled by the total mass, skipping the exact
        path's log/renormalise passes entirely — and the draws are taken in
        the logits' precision.  Used by ``sampling_mode="fast"``; validated
        distributionally (chi-squared) in ``tests/test_serving_modes.py``.
        """
        n = raw.shape[0]
        codes = np.empty((n, self.n_blocks), dtype=np.intp)
        if not self.n_blocks:
            return codes
        groups, huge, ones = self._fast_tables()
        dtype = np.float32 if raw.dtype == np.float32 else np.float64
        draws = rng.random((self.n_blocks, n), dtype=dtype)
        if ones.size:
            codes[:, ones] = 0
        # Cache budget in *bytes*: float32 logits fit twice the rows of the
        # exact path's float64 chunks, halving the per-chunk call overhead.
        chunk = even_row_chunks(n, raw.dtype.itemsize * self.total_width, 1 << 22)
        for r0 in range(0, n, chunk):
            r1 = min(n, r0 + chunk)
            self._codes_fast_chunk(
                raw[r0:r1], draws[:, r0:r1], codes[r0:r1], groups, huge
            )
        return codes

    def _codes_fast_chunk(self, raw, draws, codes, groups, huge) -> None:
        n = raw.shape[0]
        for gi, (gids, pad, lane_cols, pad_blocks, gwidths) in enumerate(groups):
            s = self._fast_scratch(gi, int(gids.size), pad, n, raw.dtype)
            cube, mx, dg, cnt = s["cube"], s["mx"], s["dg"], s["cnt"]
            for j in range(pad):
                np.take(raw, lane_cols[j], axis=1, out=cube[j])
            # Padded lanes duplicate their block's first logit (never above
            # the block maximum) and are zeroed right after the exp; every
            # pass runs over contiguous (rows, blocks) lane planes.
            np.copyto(mx, cube[0])
            for j in range(1, pad):
                np.maximum(mx, cube[j], out=mx)
            for j in range(pad):
                np.subtract(cube[j], mx, out=cube[j])
            np.exp(cube, out=cube)
            for j in range(2, pad):
                if pad_blocks[j].size:
                    cube[j][:, pad_blocks[j]] = 0.0
            # Unnormalised in-lane CDF; the draw is scaled by the total mass.
            for j in range(1, pad):
                np.add(cube[j], cube[j - 1], out=cube[j])
            draws_group = draws if gids.size == self.n_blocks else draws[gids]
            np.multiply(draws_group.T, cube[pad - 1], out=dg)
            np.less_equal(cube[0], dg, out=cnt, casting="unsafe")
            for j in range(1, pad):
                np.less_equal(cube[j], dg, out=s["cmp"])
                np.add(cnt, s["cmp"], out=cnt, casting="unsafe")
            np.minimum(cnt, gwidths[None, :] - 1, out=cnt)
            codes[:, gids] = cnt
        self._codes_wide_blocks(raw, draws, codes, huge)

    def __getstate__(self):
        # Scratch buffers are request-sized; regrown on first use (the lazy
        # relaxed-path tables likewise rebuild).
        state = dict(self.__dict__)
        state["_buffers"] = {}
        state.pop("_fast_tables_", None)
        return state


class _ModeSpecificEncoder:
    """Mode-specific normalisation of numerical columns + one-hot categoricals."""

    def __init__(self, gmm_components: int, seed: Optional[int]) -> None:
        self.gmm_components = gmm_components
        self.seed = seed
        self.numerical_gmms: Dict[str, GaussianMixture] = {}
        self.categorical_encoders: Dict[str, OneHotEncoder] = {}
        self.layout: List[Tuple[str, str, int, int]] = []  # (name, kind, start, width)
        self.n_features = 0

    def fit(self, table: Table) -> "_ModeSpecificEncoder":
        cursor = 0
        for col in table.schema:
            if col.is_numerical:
                gmm = GaussianMixture(
                    n_components=self.gmm_components,
                    seed=derive_seed(self.seed, "gmm", col.name),
                )
                gmm.fit(table[col.name])
                self.numerical_gmms[col.name] = gmm
                width = 1 + gmm.n_active_components
            else:
                enc = OneHotEncoder()
                enc.fit(table.categorical_column(col.name))
                self.categorical_encoders[col.name] = enc
                width = enc.n_categories
            self.layout.append((col.name, col.kind.value, cursor, width))
            cursor += width
        self.n_features = cursor
        return self

    def _numeric_tables(self):
        """Stacked per-column GMM parameter tables for the numerical blocks.

        Returns ``(blocks, alpha_cols, comp_base, means_pad, stds_pad)`` where
        the padded ``(n_columns, max_components)`` tables let one gather per
        batch replace the per-column mean/std lookups.  Built lazily so
        encoders restored from older fits work unchanged.
        """
        cached = getattr(self, "_numeric_tables_", None)
        if cached is not None:
            return cached
        blocks = [
            (name, start, width)
            for name, kind, start, width in self.layout
            if kind == ColumnKind.NUMERICAL.value
        ]
        alpha_cols = np.array([start for _name, start, _width in blocks], dtype=np.intp)
        comp_base = np.array([start + 1 for _name, start, _width in blocks], dtype=np.intp)
        kmax = max((width - 1 for _name, _start, width in blocks), default=0)
        means_pad = np.zeros((len(blocks), max(kmax, 1)))
        stds_pad = np.ones((len(blocks), max(kmax, 1)))
        for i, (name, _start, _width) in enumerate(blocks):
            params = self.numerical_gmms[name].params_
            means_pad[i, : params.n_components] = params.means
            stds_pad[i, : params.n_components] = params.stds
        self._numeric_tables_ = (blocks, alpha_cols, comp_base, means_pad, stds_pad)
        return self._numeric_tables_

    def transform(self, table: Table, rng: np.random.Generator) -> np.ndarray:
        """Mode-specific encoding with the per-column loop reduced to the RNG
        draws: components are still sampled column by column (keeping the
        draw stream of the historical loop), but the normalisation runs once
        over all continuous columns via stacked mean/std gathers and every
        one-hot block is written by a single scatter — all bit-identical to
        the per-column composition."""
        n = len(table)
        out = np.zeros((n, self.n_features))
        rows = np.arange(n)
        blocks, alpha_cols, comp_base, means_pad, stds_pad = self._numeric_tables()
        if blocks:
            values = np.empty((n, len(blocks)))
            comps = np.empty((n, len(blocks)), dtype=np.int64)
            for i, (name, _start, _width) in enumerate(blocks):
                column = np.asarray(table[name], dtype=np.float64)
                values[:, i] = column
                comps[:, i] = self.numerical_gmms[name].sample_component(column, rng)
            cidx = np.arange(len(blocks))[None, :]
            mu = means_pad[cidx, comps]
            sd = stds_pad[cidx, comps]
            out[:, alpha_cols] = np.clip((values - mu) / (4.0 * sd), -1.0, 1.0)
            out[rows[:, None], comp_base[None, :] + comps] = 1.0
        for name, kind, start, _width in self.layout:
            if kind == ColumnKind.CATEGORICAL.value:
                codes = self.categorical_encoders[name].transform_codes(
                    table.categorical_column(name)
                )
                out[rows, start + codes] = 1.0
        return out

    def inverse_transform(self, matrix: np.ndarray, schema, rng: np.random.Generator) -> Table:
        data: Dict[str, np.ndarray] = {}
        n = matrix.shape[0]
        blocks, alpha_cols, _comp_base, means_pad, stds_pad = self._numeric_tables()
        if blocks:
            comps = _argmax_codes(matrix, [(start + 1, start + width) for _n, start, width in blocks])
            alpha = np.clip(matrix[:, alpha_cols], -1.0, 1.0)
            cidx = np.arange(len(blocks))[None, :]
            recovered = alpha * 4.0 * stds_pad[cidx, comps] + means_pad[cidx, comps]
            for i, (name, _start, _width) in enumerate(blocks):
                data[name] = recovered[:, i]
        cat_blocks = [
            (name, start, width)
            for name, kind, start, width in self.layout
            if kind == ColumnKind.CATEGORICAL.value
        ]
        if cat_blocks:
            codes = _argmax_codes(matrix, [(start, start + width) for _n, start, width in cat_blocks])
            for i, (name, _start, _width) in enumerate(cat_blocks):
                encoder = self.categorical_encoders[name]
                data[name] = encoder.label_encoder.decode_column(codes[:, i])
        return Table(data, schema)

    def decode_sampled(self, alphas: np.ndarray, codes: np.ndarray, schema) -> Table:
        """Decode drawn samples directly from per-block category codes.

        ``alphas`` are the tanh outputs of the numerical alpha columns (one
        per continuous column, in layout order); ``codes`` holds one drawn
        category per layout entry (mixture component for numerical columns,
        category for categorical ones).  Equivalent to scattering the codes
        as one-hot blocks and calling :meth:`inverse_transform` — the argmax
        of a one-hot block is its code — without materialising the matrix.
        """
        data: Dict[str, np.ndarray] = {}
        blocks, _alpha_cols, _comp_base, means_pad, stds_pad = self._numeric_tables()
        numeric_i = 0
        if blocks:
            comp_cols = [i for i, (_n, kind, _s, _w) in enumerate(self.layout)
                         if kind == ColumnKind.NUMERICAL.value]
            comps = codes[:, comp_cols]
            alpha = np.clip(alphas, -1.0, 1.0)
            cidx = np.arange(len(blocks))[None, :]
            recovered = alpha * 4.0 * stds_pad[cidx, comps] + means_pad[cidx, comps]
        for i, (name, kind, _start, _width) in enumerate(self.layout):
            if kind == ColumnKind.NUMERICAL.value:
                data[name] = recovered[:, numeric_i]
                numeric_i += 1
            else:
                encoder = self.categorical_encoders[name]
                data[name] = encoder.label_encoder.decode_column(codes[:, i])
        return Table(data, schema)

    @property
    def categorical_layout(self) -> List[Tuple[str, int, int]]:
        """(name, start, width) of categorical blocks — used for conditioning."""
        return [
            (name, start, width)
            for name, kind, start, width in self.layout
            if kind == ColumnKind.CATEGORICAL.value
        ]


class _ConditionSampler:
    """Training-by-sampling condition vectors over categorical columns.

    ``sample`` is fully vectorised per conditioned column while drawing the
    exact RNG stream of the historical per-row loop:

    * ``rng.choice(k, size, p=probs)`` consumes one uniform per draw and maps
      it through the probability CDF, so a pre-computed
      ``cdf.searchsorted(rng.random(count), side="right")`` is stream- and
      value-identical;
    * a scalar ``rng.integers(0, high)`` loop consumes the stream exactly
      like one vectorised ``rng.integers(0, highs)`` call over the same
      bounds (numpy applies the bounded-integer rejection per element in
      order);
    * the per-column ``rng.random`` + ``rng.integers`` call pairs are fused
      into three batched generator calls by
      :func:`repro.utils.rng.fused_column_draws`, which replays numpy's raw
      word consumption bit-exactly (and falls back to the literal legacy
      calls whenever it cannot).
    """

    def __init__(self, table: Table, layout: List[Tuple[str, int, int]], encoders: Dict[str, OneHotEncoder]):
        self.layout = layout
        self.total_width = sum(width for _, _, width in layout)
        self.offsets = np.cumsum([0] + [width for _, _, width in layout])[:-1]
        # Log-frequency weighting per column (as a sampling CDF), plus flat
        # per-category row pools so the discriminator sees real rows
        # consistent with the condition.
        self._cdfs: List[np.ndarray] = []
        self._pools: List[np.ndarray] = []
        self._pool_starts: List[np.ndarray] = []
        self._pool_sizes: List[np.ndarray] = []
        self._pool_highs: List[np.ndarray] = []
        #: condition-vector column -> offset of its column block (to map a
        #: flat condition column back to the in-column category index)
        self._cond_col_offset = np.repeat(
            self.offsets, [width for _, _, width in layout]
        ).astype(np.int64) if layout else np.empty(0, dtype=np.int64)
        for (name, _start, width) in layout:
            codes = encoders[name].transform_codes(table.categorical_column(name))
            counts = np.bincount(codes, minlength=width).astype(np.float64)
            logfreq = np.log1p(counts)
            probs = logfreq / logfreq.sum() if logfreq.sum() > 0 else np.full(width, 1.0 / width)
            # Rows grouped by category: a stable argsort keeps the ascending
            # row order np.nonzero would produce per category.
            pool = np.argsort(codes, kind="stable")
            sizes = np.bincount(codes, minlength=width)
            starts = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.intp)
            cdf = probs.cumsum()
            cdf /= cdf[-1]
            self._cdfs.append(cdf)
            self._pools.append(pool)
            self._pool_starts.append(starts)
            self._pool_sizes.append(sizes)
            self._pool_highs.append(np.maximum(sizes, 1))
        # All per-column row pools concatenated, so the matching-row lookup
        # after the RNG loop is one gather over a single flat array.
        self._pool_offsets = np.concatenate(
            [[0], np.cumsum([p.size for p in self._pools])[:-1]]
        ).astype(np.intp) if self._pools else np.empty(0, dtype=np.intp)
        self._all_pools = (
            np.concatenate(self._pools) if self._pools else np.empty(0, dtype=np.int64)
        )
        # Width-padded per-column tables for the relaxed "fast" mode: one
        # gather per batch replaces every per-column lookup.  CDF padding is
        # +inf so padded entries never count as "<= draw".
        max_width = max((width for _, _, width in layout), default=0)
        self._cdf_pad = np.full((len(layout), max(max_width, 1)), np.inf)
        self._sizes_pad = np.zeros((len(layout), max(max_width, 1)), dtype=np.int64)
        self._highs_pad = np.ones((len(layout), max(max_width, 1)), dtype=np.int64)
        self._starts_pad = np.zeros((len(layout), max(max_width, 1)), dtype=np.intp)
        for j, (_name, _start, width) in enumerate(layout):
            self._cdf_pad[j, :width] = self._cdfs[j]
            self._sizes_pad[j, :width] = self._pool_sizes[j]
            self._highs_pad[j, :width] = self._pool_highs[j]
            self._starts_pad[j, :width] = self._pool_starts[j]
        # Fit-time screen for the fused exact-mode draw path: fusing needs
        # every pool bounded-draw-capable (high > 1) and 32-bit.  Pools are
        # fit-time constants, so checking here keeps the per-batch screen
        # out of the sampling hot path entirely.
        self._fused_ok = all(
            int(h.min()) > 1 and int(h.max()) < 2**32 for h in self._pool_highs
        )

    def sample(
        self,
        batch_size: int,
        rng: np.random.Generator,
        mode: str = "exact",
        need_rows: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Return (condition matrix, column index, category index, matching row index).

        ``mode="exact"`` (default) draws the historical per-column RNG stream;
        ``mode="fast"`` is the documented relaxed mode: the same distribution
        from three batched RNG calls (column choice, one uniform per row
        mapped through the padded per-column CDFs, one bounded integer per
        row), so streams — and therefore exact outputs — differ from the
        seed while condition frequencies match (chi-squared-tested in
        ``tests/test_sampling_equivalence.py``).

        ``need_rows=False`` skips the matching-row gather (``row_choice`` is
        returned as ``None``) for callers that only consume the condition
        matrix (generation).  Every RNG draw still happens — the bounded
        integer draws are part of the pinned stream — so outputs are
        byte-identical either way.
        """
        if mode not in ("exact", "fast"):
            raise ValueError(f"unknown condition sampling mode {mode!r}; use 'exact' or 'fast'")
        n_columns = len(self.layout)
        cond = np.zeros((batch_size, self.total_width))
        col_choice = rng.integers(0, n_columns, size=batch_size)
        if mode == "fast":
            uniforms = rng.random(batch_size)
            cats = (self._cdf_pad[col_choice] <= uniforms[:, None]).sum(axis=1)
            draws = rng.integers(0, self._highs_pad[col_choice, cats])
            cond[np.arange(batch_size), self.offsets[col_choice] + cats] = 1.0
            if not need_rows:
                return cond, col_choice, cats.astype(np.int64), None
            sizes = self._sizes_pad[col_choice, cats]
            starts = self._starts_pad[col_choice, cats] + self._pool_offsets[col_choice]
            if self._all_pools.size:
                picks = self._all_pools[np.minimum(starts + draws, self._all_pools.size - 1)]
                row_choice = np.where(sizes > 0, picks, draws)
            else:
                row_choice = draws
            return cond, col_choice, cats.astype(np.int64), row_choice
        # Group the batch rows by conditioned column once (stable sort keeps
        # the ascending row order of the historical per-column masks).  The
        # per-column uniform + bounded-integer draw pairs — which must stay
        # interleaved per column to preserve the seed stream — are fused into
        # one raw block draw plus one stream advance by ``fused_column_draws``
        # (pools screened at fit time; non-PCG64 generators, singleton or
        # 64-bit pools, and a detected bounded-integer rejection all fall
        # back to the literal legacy calls), with all gather/scatter work
        # batched afterwards.
        rows_by_col = np.argsort(col_choice, kind="stable")
        counts = np.bincount(col_choice, minlength=n_columns)
        active_cols = [j for j in range(n_columns) if counts[j]]
        fused = None
        if self._fused_ok:
            plans = [(int(counts[j]), self._cdfs[j], self._pool_highs[j]) for j in active_cols]
            fused = fused_column_draws(rng, plans, prescreened=True)
        if fused is None:
            fused = []
            for j in active_cols:
                cats = self._cdfs[j].searchsorted(rng.random(int(counts[j])), side="right")
                fused.append((cats, rng.integers(0, self._pool_highs[j][cats])))
        cats_parts: List[np.ndarray] = []
        draws_parts: List[np.ndarray] = []
        sizes_parts: List[np.ndarray] = []
        starts_parts: List[np.ndarray] = []
        for j, (cats, column_draws) in zip(active_cols, fused):
            cats_parts.append(self.offsets[j] + cats)
            draws_parts.append(column_draws)
            if need_rows:
                sizes_parts.append(self._pool_sizes[j][cats])
                starts_parts.append(self._pool_starts[j][cats] + self._pool_offsets[j])
        cat_cols = np.concatenate(cats_parts) if cats_parts else np.empty(0, dtype=np.int64)
        cond[rows_by_col, cat_cols] = 1.0
        cat_choice = np.empty(batch_size, dtype=np.int64)
        cat_choice[rows_by_col] = cat_cols - self._cond_col_offset[cat_cols]
        if not need_rows:
            return cond, col_choice, cat_choice, None
        draws = np.concatenate(draws_parts) if draws_parts else np.empty(0, dtype=np.int64)
        sizes = np.concatenate(sizes_parts) if sizes_parts else np.empty(0, dtype=np.int64)
        starts = np.concatenate(starts_parts) if starts_parts else np.empty(0, dtype=np.intp)
        row_choice = np.empty(batch_size, dtype=np.int64)
        if self._all_pools.size:
            picks = self._all_pools[np.minimum(starts + draws, self._all_pools.size - 1)]
            row_choice[rows_by_col] = np.where(sizes > 0, picks, draws)
        else:
            row_choice[rows_by_col] = draws
        return cond, col_choice, cat_choice, row_choice


class CTABGANPlusSurrogate(Surrogate):
    """Conditional tabular GAN in the CTABGAN+ style."""

    name = "CTABGAN+"
    _TRANSIENT_ATTRS = ("_packed_generator", "_block_sampler")

    def __init__(self, config: Optional[CTABGANConfig] = None, *, seed: SeedLike = 0) -> None:
        super().__init__()
        self.config = config or CTABGANConfig()
        self._seed = seed
        self._encoder: Optional[_ModeSpecificEncoder] = None
        self._condition: Optional[_ConditionSampler] = None
        self._generator: Optional[MLP] = None
        self._discriminator: Optional[MLP] = None
        self.loss_history_: Optional[List[Dict[str, float]]] = None

    # -- output shaping ------------------------------------------------------------
    def _output_layout(self) -> Tuple[np.ndarray, BlockLayout]:
        """``(tanh columns, softmax block layout)`` covering the generator output."""
        tanh_cols: List[int] = []
        softmax_spans: List[Tuple[int, int]] = []
        for _name, kind, start, width in self._encoder.layout:
            if kind == ColumnKind.NUMERICAL.value:
                tanh_cols.append(start)
                softmax_spans.append((start + 1, start + width))
            else:
                softmax_spans.append((start, start + width))
        return np.asarray(tanh_cols, dtype=np.intp), BlockLayout(softmax_spans)

    def _activate_generator_output(self, raw: Tensor) -> Tensor:
        """Apply per-block activations: tanh for alphas, softmax for one-hot blocks.

        One fused graph node (bit-identical to the slice/tanh/softmax/concat
        composition) instead of four nodes per encoded column.
        """
        tanh_cols, softmax_spans = self._activation_layout
        return tanh_softmax_blocks(raw, tanh_cols, softmax_spans)

    def _condition_loss(self, raw: Tensor, col_choice: np.ndarray, cat_choice: np.ndarray) -> Tensor:
        """Cross entropy forcing the generated conditioned column to match the condition."""
        return conditional_blocks_loss(raw, self._condition_layout, col_choice, cat_choice)

    # -- fitting ----------------------------------------------------------------------
    def fit(self, table: Table) -> "CTABGANPlusSurrogate":
        self._mark_fitted(table)
        cfg = self.config
        seed_int = self._seed if isinstance(self._seed, int) else None
        rng = as_rng(derive_seed(seed_int, "fit"))

        # Encode once: mode-specific normalisation runs over the full table a
        # single time, and each discriminator step below only gathers rows
        # (``encoded[row_c]``) from the resulting dense matrix.
        self._encoder = _ModeSpecificEncoder(cfg.gmm_components, seed_int).fit(table)
        encoded = self._encoder.transform(table, rng)
        self._activation_layout = self._output_layout()
        # The sampler is derived from the encoder layout and the packed
        # serving forward snapshots the generator weights; a refit must not
        # keep either built against the previous fit.
        self._block_sampler = None
        self._packed_generator = None
        cat_layout = self._encoder.categorical_layout
        self._condition_layout = BlockLayout(
            [(start, start + width) for _name, start, width in cat_layout]
        )
        self._condition = _ConditionSampler(table, cat_layout, self._encoder.categorical_encoders)

        data_dim = self._encoder.n_features
        cond_dim = self._condition.total_width
        self._generator = MLP(
            cfg.noise_dim + cond_dim,
            list(cfg.generator_dims),
            data_dim,
            activation="relu",
            seed=derive_seed(seed_int, "generator"),
        )
        self._discriminator = MLP(
            data_dim + cond_dim,
            list(cfg.discriminator_dims),
            1,
            activation="leaky_relu",
            dropout=0.25,
            seed=derive_seed(seed_int, "discriminator"),
        )

        g_params = self._generator.parameters()
        d_params = self._discriminator.parameters()
        g_optimizer = Adam(g_params, lr=cfg.learning_rate, betas=(0.5, 0.9))
        d_optimizer = Adam(d_params, lr=cfg.learning_rate, betas=(0.5, 0.9))

        n = encoded.shape[0]
        steps_per_epoch = max(1, n // cfg.batch_size)
        condition_mode = getattr(cfg, "condition_mode", "exact")
        history: List[Dict[str, float]] = []
        ones = None
        zeros = None
        for epoch in range(cfg.epochs):
            d_loss_value = 0.0
            g_loss_value = 0.0
            for _ in range(steps_per_epoch):
                # -- discriminator update(s) -------------------------------------
                for _ in range(cfg.discriminator_steps):
                    cond, col_c, cat_c, row_c = self._condition.sample(
                        cfg.batch_size, rng, mode=condition_mode
                    )
                    real = encoded[row_c]
                    noise = rng.standard_normal((cfg.batch_size, cfg.noise_dim))
                    with no_grad():
                        fake_raw = self._generator(Tensor(np.concatenate([noise, cond], axis=1)))
                        fake = self._activate_generator_output(fake_raw).numpy()
                    real_in = Tensor(np.concatenate([real, cond], axis=1))
                    fake_in = Tensor(np.concatenate([fake, cond], axis=1))
                    real_logit = self._discriminator(real_in)
                    fake_logit = self._discriminator(fake_in)
                    if ones is None or ones.shape[0] != cfg.batch_size:
                        ones = np.ones((cfg.batch_size, 1))
                        zeros = np.zeros((cfg.batch_size, 1))
                    d_loss = bce_with_logits(real_logit, ones) + bce_with_logits(fake_logit, zeros)
                    d_optimizer.zero_grad()
                    d_loss.backward()
                    clip_grad_norm(d_params, cfg.grad_clip)
                    d_optimizer.step()
                    d_loss_value += d_loss.item()

                # -- generator update ----------------------------------------------
                cond, col_c, cat_c, _rows = self._condition.sample(
                    cfg.batch_size, rng, mode=condition_mode
                )
                noise = rng.standard_normal((cfg.batch_size, cfg.noise_dim))
                fake_raw = self._generator(Tensor(np.concatenate([noise, cond], axis=1)))
                fake = self._activate_generator_output(fake_raw)
                fake_logit = self._discriminator(Tensor.concat([fake, Tensor(cond)], axis=1))
                adv_loss = bce_with_logits(fake_logit, np.ones((cfg.batch_size, 1)))
                cond_loss = self._condition_loss(fake_raw, col_c, cat_c)
                g_loss = adv_loss + cond_loss
                g_optimizer.zero_grad()
                g_loss.backward()
                clip_grad_norm(g_params, cfg.grad_clip)
                g_optimizer.step()
                g_loss_value += g_loss.item()

            history.append(
                {
                    "epoch": epoch + 1,
                    "d_loss": d_loss_value / (steps_per_epoch * cfg.discriminator_steps),
                    "g_loss": g_loss_value / steps_per_epoch,
                }
            )
            logger.info(
                "CTABGAN+ epoch %d/%d d_loss=%.4f g_loss=%.4f",
                epoch + 1, cfg.epochs, history[-1]["d_loss"], history[-1]["g_loss"],
            )
        self.loss_history_ = history
        return self

    # -- sampling -------------------------------------------------------------------------
    #: Serving-mode forward chunk: bounds peak activation memory while keeping
    #: the generator matmuls fused over request-sized batches.
    _FAST_FORWARD_CHUNK = 65_536

    def _ensure_block_sampler(self) -> _SoftmaxBlockSampler:
        sampler = getattr(self, "_block_sampler", None)
        if sampler is None:
            spans = []
            for _name, kind, start, width in self._encoder.layout:
                if kind == ColumnKind.NUMERICAL.value:
                    spans.append((start + 1, start + width))
                else:
                    spans.append((start, start + width))
            sampler = self._block_sampler = _SoftmaxBlockSampler(spans)
        return sampler

    def _decode_raw(
        self, raw_matrix: np.ndarray, rng: np.random.Generator, *, relaxed: bool = False
    ) -> Table:
        """Decode a stacked raw-logit matrix into a table (shared by both modes).

        ``relaxed=True`` (the fast serving path) draws the block codes
        through the contract-free width-bucketed kernel.
        """
        sampler = self._ensure_block_sampler()
        if relaxed:
            codes = sampler.sample_codes_fast(raw_matrix, rng)
        else:
            codes = sampler.sample_codes(raw_matrix, rng)
        tanh_cols, _softmax_layout = self._activation_layout
        alphas = np.tanh(raw_matrix[:, tanh_cols])
        return self._encoder.decode_sampled(alphas, codes, self.schema_)

    def _sample_exact(self, n: int, *, seed: SeedLike = None) -> Table:
        """Generate ``n`` rows, bit-identical to the historical sampling loop.

        In the default (``"exact"``) condition mode the generator still runs
        per batch — its matmul shapes, and the condition/noise draw stream,
        define the bits — but everything after the raw logits collapses: the
        historical activate → harden → argmax-decode chain only ever exposed
        the drawn categories and the tanh'd alpha columns, so the blocks'
        category codes are drawn straight from the stacked raw logits
        (:class:`_SoftmaxBlockSampler`, bit- and stream-identical) and the
        table is decoded from codes plus alphas without materialising the
        activated or hardened matrices.  When the model was *trained* with
        the relaxed ``condition_mode="fast"`` the stream contract is already
        waived, so the whole batch additionally runs through one generator
        forward pass.
        """
        self._require_fitted()
        cfg = self.config
        rng = as_rng(seed)
        self._generator.eval()
        outputs: List[np.ndarray] = []
        remaining = n
        condition_mode = getattr(cfg, "condition_mode", "exact")
        # The relaxed condition mode has no stream contract, so it generates
        # in a few maximal forward passes (capped to bound peak activation
        # memory); the exact mode keeps the per-``batch_size`` loop that
        # defines the historical bits.
        with no_grad():
            while remaining > 0:
                batch = (
                    min(self._FAST_FORWARD_CHUNK, remaining)
                    if condition_mode == "fast"
                    else min(cfg.batch_size, remaining)
                )
                cond, _, _, _ = self._condition.sample(
                    batch, rng, mode=condition_mode, need_rows=False
                )
                noise = rng.standard_normal((batch, cfg.noise_dim))
                raw = self._generator(Tensor(np.concatenate([noise, cond], axis=1)))
                outputs.append(raw.numpy())
                remaining -= batch
        self._generator.train()
        raw_matrix = (
            outputs[0] if len(outputs) == 1
            else np.concatenate(outputs, axis=0) if outputs
            else np.empty((0, self._encoder.n_features))
        )
        return self._decode_raw(raw_matrix, rng)

    def _sample_fast(self, n: int, *, seed: SeedLike = None) -> Table:
        """Relaxed serving path: fused forwards freed from the training batch.

        The condition vectors come from the batched ``condition_mode="fast"``
        sampler regardless of how the model was trained, and each
        request-sized chunk runs through a single pre-packed float32
        generator forward (:class:`~repro.nn.serving.PackedForward`) instead
        of the per-``batch_size`` float64 graph loop.  Distribution-identical
        to the exact mode (KS / chi-squared tested), stream-different.
        """
        self._require_fitted()
        cfg = self.config
        rng = as_rng(seed)
        packed = getattr(self, "_packed_generator", None)
        if packed is None:
            packed = self._packed_generator = PackedForward(self._generator, np.float32)
        # The request matrix stays float32 end to end: the block sampler's
        # scratch and the decode follow the logits' dtype.
        raw_matrix = np.empty((n, self._encoder.n_features), dtype=np.float32)
        for r0 in range(0, n, self._FAST_FORWARD_CHUNK):
            batch = min(self._FAST_FORWARD_CHUNK, n - r0)
            cond, _, _, _ = self._condition.sample(batch, rng, mode="fast", need_rows=False)
            noise = rng.standard_normal((batch, cfg.noise_dim))
            # The forward returns a reused buffer; the store into the request
            # matrix is the consuming copy.
            raw_matrix[r0 : r0 + batch] = packed(np.concatenate([noise, cond], axis=1))
        return self._decode_raw(raw_matrix, rng, relaxed=True)
