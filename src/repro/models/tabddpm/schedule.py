"""Noise schedules shared by the Gaussian and multinomial diffusion processes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def linear_beta_schedule(n_steps: int, beta_start: float = 1e-4, beta_end: float = 0.02) -> np.ndarray:
    """Linearly increasing betas (Ho et al., 2020)."""
    if n_steps < 1:
        raise ValueError("n_steps must be at least 1")
    return np.linspace(beta_start, beta_end, n_steps)


def cosine_beta_schedule(n_steps: int, s: float = 0.008, max_beta: float = 0.999) -> np.ndarray:
    """Cosine schedule (Nichol & Dhariwal, 2021) — the TabDDPM default."""
    if n_steps < 1:
        raise ValueError("n_steps must be at least 1")
    steps = np.arange(n_steps + 1, dtype=np.float64)
    alphas_bar = np.cos(((steps / n_steps) + s) / (1.0 + s) * np.pi / 2.0) ** 2
    alphas_bar /= alphas_bar[0]
    betas = 1.0 - alphas_bar[1:] / alphas_bar[:-1]
    return np.clip(betas, 0.0, max_beta)


@dataclass
class DiffusionSchedule:
    """Pre-computed per-timestep quantities used by both diffusion processes."""

    betas: np.ndarray

    def __post_init__(self) -> None:
        betas = np.asarray(self.betas, dtype=np.float64)
        if betas.ndim != 1 or betas.size < 1:
            raise ValueError("betas must be a non-empty 1-D array")
        if (betas <= 0).any() or (betas >= 1).any():
            raise ValueError("betas must lie strictly inside (0, 1)")
        self.betas = betas
        self.alphas = 1.0 - betas
        self.alphas_bar = np.cumprod(self.alphas)
        self.alphas_bar_prev = np.concatenate([[1.0], self.alphas_bar[:-1]])
        self.sqrt_alphas_bar = np.sqrt(self.alphas_bar)
        self.sqrt_one_minus_alphas_bar = np.sqrt(1.0 - self.alphas_bar)
        # Posterior q(x_{t-1} | x_t, x_0) variance for the Gaussian process.
        self.posterior_variance = (
            betas * (1.0 - self.alphas_bar_prev) / (1.0 - self.alphas_bar)
        )
        # Posterior mean coefficients, precomputed for every timestep so the
        # reverse process is a pure gather instead of per-step arithmetic.
        # The expressions (and their evaluation order) match the per-call
        # formulas previously computed in GaussianDiffusion.posterior_mean,
        # so gathered values are bit-identical.
        self.posterior_mean_coef_x0 = (
            betas * np.sqrt(self.alphas_bar_prev) / (1.0 - self.alphas_bar)
        )
        self.posterior_mean_coef_xt = (
            (1.0 - self.alphas_bar_prev) * np.sqrt(self.alphas) / (1.0 - self.alphas_bar)
        )

    @property
    def n_steps(self) -> int:
        return int(self.betas.size)

    @classmethod
    def cosine(cls, n_steps: int) -> "DiffusionSchedule":
        return cls(cosine_beta_schedule(n_steps))

    @classmethod
    def linear(cls, n_steps: int) -> "DiffusionSchedule":
        return cls(linear_beta_schedule(n_steps))
