"""The TabDDPM surrogate: joint Gaussian + multinomial diffusion over a table.

Numerical columns are quantile-transformed to a standard normal and handled
by :class:`~repro.models.tabddpm.gaussian.GaussianDiffusion` (epsilon
prediction); each categorical column becomes a one-hot block handled by its
own :class:`~repro.models.tabddpm.multinomial.MultinomialDiffusion`.  A single
timestep-conditioned MLP predicts everything at once: the noise for the
numerical block and the x0 logits for every categorical block.  The training
loss is the sum of the numerical MSE and the per-column categorical
cross-entropy, as in the reference implementation's simplified objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.models.base import Surrogate
from repro.models.tabddpm.denoiser import MLPDenoiser
from repro.models.tabddpm.gaussian import GaussianDiffusion
from repro.models.tabddpm.multinomial import MultinomialBlockDiffusion, MultinomialDiffusion
from repro.models.tabddpm.schedule import DiffusionSchedule
from repro.nn import (
    Adam,
    BlockLayout,
    CosineSchedule,
    Tensor,
    clip_grad_norm,
    mixed_reconstruction_loss,
    no_grad,
)
from repro.tabular.mixed import ColumnBlock, MixedEncoder
from repro.tabular.table import Table
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, as_rng, derive_seed

logger = get_logger(__name__)


@dataclass
class TabDDPMConfig:
    """Hyper-parameters of the TabDDPM surrogate."""

    n_timesteps: int = 100
    hidden_dims: tuple = (256, 256)
    time_embedding_dim: int = 64
    epochs: int = 30
    batch_size: int = 256
    learning_rate: float = 2e-4
    grad_clip: float = 5.0
    schedule: str = "cosine"

    @classmethod
    def fast(cls) -> "TabDDPMConfig":
        """A configuration small enough for unit tests."""
        return cls(n_timesteps=16, hidden_dims=(48,), time_embedding_dim=16, epochs=4, batch_size=128)


class TabDDPMSurrogate(Surrogate):
    """Denoising diffusion surrogate for mixed-type tables."""

    name = "TabDDPM"
    _TRANSIENT_ATTRS = ("_packed_serving",)

    def __init__(self, config: Optional[TabDDPMConfig] = None, *, seed: SeedLike = 0) -> None:
        super().__init__()
        self.config = config or TabDDPMConfig()
        self._seed = seed
        self._encoder: Optional[MixedEncoder] = None
        self._denoiser: Optional[MLPDenoiser] = None
        self._gaussian: Optional[GaussianDiffusion] = None
        self._multinomials: Optional[List[Tuple[ColumnBlock, MultinomialDiffusion]]] = None
        self._numerical_indices: Optional[np.ndarray] = None
        self.loss_history_: Optional[List[float]] = None

    # -- setup ---------------------------------------------------------------------
    def _build(self, n_features: int) -> None:
        cfg = self.config
        if cfg.schedule == "cosine":
            schedule = DiffusionSchedule.cosine(cfg.n_timesteps)
        elif cfg.schedule == "linear":
            schedule = DiffusionSchedule.linear(cfg.n_timesteps)
        else:
            raise ValueError(f"unknown schedule {cfg.schedule!r}; use 'cosine' or 'linear'")
        self._gaussian = GaussianDiffusion(schedule)
        # Single-category columns encode as width-1 one-hot blocks that are
        # identically 1.0: there is nothing to diffuse (and the uniform-kernel
        # diffusion requires at least 2 categories), so they are carried
        # through training/sampling as constants instead.
        self._multinomials = [
            (block, MultinomialDiffusion(block.width, schedule))
            for block in self._encoder.blocks_
            if block.kind.value == "categorical" and block.width >= 2
        ]
        self._constant_onehot_indices = np.asarray(
            [
                block.start
                for block in self._encoder.blocks_
                if block.kind.value == "categorical" and block.width == 1
            ],
            dtype=np.intp,
        )
        # Training diffuses every categorical block in one vectorised shot;
        # the per-block diffusions above drive the (sequential) reverse chain.
        spans = [(block.start, block.stop) for block, _ in self._multinomials]
        self._categorical_layout = BlockLayout(spans)
        self._block_diffusion = MultinomialBlockDiffusion(spans, schedule)
        self._denoiser = MLPDenoiser(
            n_features,
            hidden_dims=list(cfg.hidden_dims),
            time_embedding_dim=cfg.time_embedding_dim,
            seed=derive_seed(self._seed if isinstance(self._seed, int) else None, "denoiser"),
        )

    # -- training -------------------------------------------------------------------
    def fit(self, table: Table) -> "TabDDPMSurrogate":
        self._mark_fitted(table)
        cfg = self.config
        # The packed serving cache snapshots the denoiser weights; a refit
        # must not serve through stale ones.
        self._packed_serving = None
        rng = as_rng(derive_seed(self._seed if isinstance(self._seed, int) else None, "fit"))

        # Encode once; training steps only slice shuffled index blocks.
        self._encoder = MixedEncoder()
        encoded = self._encoder.fit_transform(table)
        X = encoded.values
        self._numerical_indices = encoded.numerical_indices
        self._build(X.shape[1])

        params = self._denoiser.parameters()
        optimizer = Adam(params, lr=cfg.learning_rate)
        steps_per_epoch = max(1, X.shape[0] // cfg.batch_size)
        lr_schedule = CosineSchedule(optimizer, total_steps=cfg.epochs * steps_per_epoch)

        num_idx = self._numerical_indices
        losses: List[float] = []
        for epoch in range(cfg.epochs):
            permutation = rng.permutation(X.shape[0])
            epoch_loss = 0.0
            for b in range(steps_per_epoch):
                idx = permutation[b * cfg.batch_size : (b + 1) * cfg.batch_size]
                if idx.size < 2:
                    continue
                batch = X[idx]
                t = rng.integers(0, cfg.n_timesteps, size=idx.size)

                # Diffuse the whole batch in two vectorised shots: the
                # Gaussian block in one call, every categorical block jointly
                # through the padded-cube sampler — no per-feature Python loop.
                noisy = np.empty_like(batch)
                noise = rng.standard_normal((idx.size, num_idx.size)) if num_idx.size else None
                if num_idx.size:
                    noisy[:, num_idx] = self._gaussian.q_sample(batch[:, num_idx], t, noise)
                self._block_diffusion.q_sample_into(noisy, batch, t, rng)
                if self._constant_onehot_indices.size:
                    # Width-1 blocks are not diffused: carry their constant
                    # 1.0 into the denoiser input instead of leaving the
                    # `empty_like` garbage in place.
                    noisy[:, self._constant_onehot_indices] = batch[
                        :, self._constant_onehot_indices
                    ]

                prediction = self._denoiser(Tensor(noisy), t)
                loss = mixed_reconstruction_loss(
                    prediction, num_idx, noise, self._categorical_layout, batch
                )

                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(params, cfg.grad_clip)
                optimizer.step()
                lr_schedule.step()
                epoch_loss += loss.item()
            losses.append(epoch_loss / steps_per_epoch)
            logger.info("TabDDPM epoch %d/%d loss=%.4f", epoch + 1, cfg.epochs, losses[-1])
        self.loss_history_ = losses
        return self

    # -- sampling --------------------------------------------------------------------
    def _denoise_batch(self, state: np.ndarray, t_vector: np.ndarray) -> np.ndarray:
        with no_grad():
            return self._denoiser(Tensor(state), t_vector).numpy()

    def _init_constant_blocks(self, state: np.ndarray) -> None:
        const_idx = getattr(self, "_constant_onehot_indices", None)
        if const_idx is not None and const_idx.size:
            state[:, const_idx] = 1.0

    def _sample_exact(self, n: int, *, seed: SeedLike = None) -> Table:
        """Ancestral sampling with every categorical block denoised in one shot.

        Each reverse step runs one batched cube pass
        (:meth:`MultinomialBlockDiffusion.p_sample_into`) instead of a
        per-block Python loop; the draw stream and every floating-point value
        are bit-identical to the sequential per-block chain
        (``tests/test_train_equivalence.py`` asserts the samples).
        """
        self._require_fitted()
        cfg = self.config
        rng = as_rng(seed)
        self._denoiser.eval()

        num_idx = self._numerical_indices
        # The state lives inside the denoiser's inference buffer, so each
        # denoising call reads it in place instead of staging a copy.
        state = self._denoiser.serving_state(n)
        if num_idx.size:
            state[:, num_idx] = rng.standard_normal((n, num_idx.size))
        chosen = self._block_diffusion.prior_sample_into(state, rng)
        self._init_constant_blocks(state)

        for t in reversed(range(cfg.n_timesteps)):
            t_vector = np.full(n, t, dtype=np.int64)
            prediction = self._denoise_batch(state, t_vector)
            if num_idx.size:
                eps = prediction[:, num_idx]
                state[:, num_idx] = self._gaussian.p_sample_step(state[:, num_idx], t, eps, rng)
            chosen = self._block_diffusion.p_sample_into(
                state, prediction, t, rng, prev_chosen=chosen
            )

        self._denoiser.train()
        return self._encoder.inverse_transform(state)

    def _sample_fast(self, n: int, *, seed: SeedLike = None) -> Table:
        """Relaxed serving chain: the float32 pre-packed denoiser forward.

        Same fitted model and the same reverse-diffusion structure as the
        exact chain, but the denoiser matmuls run in float32 through a
        :class:`~repro.models.tabddpm.denoiser.PackedDenoiser` weight cache,
        the whole sampler state stays float32, and each categorical reverse
        step uses the relaxed padded-cube kernel
        (:meth:`MultinomialBlockDiffusion.p_sample_fast_into` — same
        posterior, unnormalised-CDF draws, whole-cube reductions) — so
        outputs match the exact mode in distribution (KS / chi-squared
        tested in ``tests/test_serving_modes.py``) but not bit for bit.
        """
        self._require_fitted()
        cfg = self.config
        rng = as_rng(seed)

        packed = getattr(self, "_packed_serving", None)
        if packed is None:
            packed = self._packed_serving = self._denoiser.packed(np.float32)
        num_idx = self._numerical_indices
        state = packed.serving_state(n)
        if num_idx.size:
            state[:, num_idx] = rng.standard_normal((n, num_idx.size))
        chosen = self._block_diffusion.prior_sample_into(state, rng)
        self._init_constant_blocks(state)

        for t in reversed(range(cfg.n_timesteps)):
            prediction = packed(state, t)
            if num_idx.size:
                eps = prediction[:, num_idx]
                state[:, num_idx] = self._gaussian.p_sample_step(state[:, num_idx], t, eps, rng)
            chosen = self._block_diffusion.p_sample_fast_into(
                state, prediction, t, rng, prev_chosen=chosen
            )

        return self._encoder.inverse_transform(state)
