"""Multinomial diffusion for one-hot categorical features.

Hoogeboom et al. (2021) define a categorical forward process with uniform
transition kernels: at step ``t`` a category keeps its value with probability
``1 - beta_t`` and is resampled uniformly otherwise.  The closed-form
marginal and posterior are both simple mixtures of the one-hot vector and the
uniform distribution, which keeps every operation a dense numpy expression.

TabDDPM trains the denoiser to predict the distribution of ``x_0`` from
``x_t`` (via a cross-entropy loss, handled by the caller) and samples the
reverse chain through the posterior evaluated at the predicted ``x_0``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.models.tabddpm.schedule import DiffusionSchedule


class MultinomialDiffusion:
    """Uniform-kernel categorical diffusion over ``n_categories`` classes."""

    def __init__(self, n_categories: int, schedule: DiffusionSchedule):
        if n_categories < 2:
            raise ValueError("n_categories must be at least 2")
        self.n_categories = int(n_categories)
        self.schedule = schedule

    @property
    def n_steps(self) -> int:
        return self.schedule.n_steps

    # -- forward process -------------------------------------------------------------
    def q_probs(self, x0_onehot: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Marginal ``q(x_t | x_0)`` as a probability matrix, shape ``(n, K)``."""
        x0 = np.asarray(x0_onehot, dtype=np.float64)
        t = np.asarray(t, dtype=np.int64)
        keep = self.schedule.alphas_bar[t][:, None]
        return keep * x0 + (1.0 - keep) / self.n_categories

    def q_sample(self, x0_onehot: np.ndarray, t: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw one-hot ``x_t`` from the forward marginal."""
        probs = self.q_probs(x0_onehot, t)
        return self._sample_onehot(probs, rng)

    # -- reverse process --------------------------------------------------------------
    def posterior_probs(
        self, x_t_onehot: np.ndarray, x0_probs: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        """``q(x_{t-1} | x_t, x_0)`` with ``x_0`` given as a probability vector.

        Both factors of the (unnormalised) posterior are mixtures of a one-hot
        vector and the uniform distribution:
        ``q(x_{t-1}|x_t) ∝ alpha_t x_t + (1-alpha_t)/K`` and
        ``q(x_{t-1}|x_0) ∝ alpha_bar_{t-1} x_0 + (1-alpha_bar_{t-1})/K``.
        """
        x_t = np.asarray(x_t_onehot, dtype=np.float64)
        x0 = np.asarray(x0_probs, dtype=np.float64)
        t = np.asarray(t, dtype=np.int64)
        sched = self.schedule
        alpha_t = sched.alphas[t][:, None]
        alpha_bar_prev = sched.alphas_bar_prev[t][:, None]
        factor_xt = alpha_t * x_t + (1.0 - alpha_t) / self.n_categories
        factor_x0 = alpha_bar_prev * x0 + (1.0 - alpha_bar_prev) / self.n_categories
        unnormalised = factor_xt * factor_x0
        return unnormalised / np.maximum(unnormalised.sum(axis=1, keepdims=True), 1e-12)

    def p_sample_step(
        self,
        x_t_onehot: np.ndarray,
        t: int,
        x0_probs: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One reverse step: sample ``x_{t-1}`` from the posterior at predicted x0."""
        n = x_t_onehot.shape[0]
        t_vector = np.full(n, t, dtype=np.int64)
        if t == 0:
            probs = np.asarray(x0_probs, dtype=np.float64)
            probs = probs / np.maximum(probs.sum(axis=1, keepdims=True), 1e-12)
        else:
            probs = self.posterior_probs(x_t_onehot, x0_probs, t_vector)
        return self._sample_onehot(probs, rng)

    def sample(
        self,
        n: int,
        x0_model: Callable[[np.ndarray, np.ndarray], np.ndarray],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Full reverse chain from the uniform distribution.

        ``x0_model(x_t_onehot, t_vector)`` must return x0 probability vectors.
        """
        uniform = np.full((n, self.n_categories), 1.0 / self.n_categories)
        x = self._sample_onehot(uniform, rng)
        for t in reversed(range(self.n_steps)):
            t_vector = np.full(n, t, dtype=np.int64)
            x0_probs = x0_model(x, t_vector)
            x = self.p_sample_step(x, t, x0_probs, rng)
        return x

    # -- helpers -------------------------------------------------------------------------
    @staticmethod
    def _sample_onehot(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorised categorical sampling returning one-hot rows."""
        cumulative = np.cumsum(probs, axis=1)
        cumulative /= np.maximum(cumulative[:, -1:], 1e-12)
        draws = rng.random((probs.shape[0], 1))
        chosen = (draws < cumulative).argmax(axis=1)
        onehot = np.zeros_like(probs)
        onehot[np.arange(probs.shape[0]), chosen] = 1.0
        return onehot
